//! The adaptive label-collection stopping rule of Abraham et al. \[38\],
//! cited by the paper (§V, Equation (36)):
//!
//! stop collecting labels for a task once
//! `|V_Y(t) − V_N(t)| > C·√t − ε·t`,
//! where `V_Y, V_N` are the Yes/No vote counts after `t` answers and
//! `C, ε` are chosen in advance. The final label is the majority.
//!
//! Implemented as an extra budget policy for the simulator: instead of a
//! fixed per-item answer count, a vote stream is consumed until the rule
//! fires (or a hard cap is reached).

use hc_core::Answer;

/// Parameters of the Equation (36) stopping rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoppingRule {
    /// Confidence-width coefficient `C`.
    pub c: f64,
    /// Linear drift allowance `ε`.
    pub epsilon: f64,
    /// Hard cap on answers per task (the rule may otherwise run long on
    /// perfectly balanced streams).
    pub max_answers: usize,
}

impl StoppingRule {
    /// A rule with the given `C` and `ε`, capped at `max_answers`.
    pub fn new(c: f64, epsilon: f64, max_answers: usize) -> Self {
        StoppingRule {
            c,
            epsilon,
            max_answers,
        }
    }

    /// Whether to stop after observing `yes` Yes-votes and `no` No-votes.
    pub fn should_stop(&self, yes: usize, no: usize) -> bool {
        let t = (yes + no) as f64;
        if yes + no >= self.max_answers {
            return true;
        }
        let margin = (yes as f64 - no as f64).abs();
        margin > self.c * t.sqrt() - self.epsilon * t
    }

    /// Consumes answers from the stream until the rule fires; returns the
    /// majority label and the number of answers consumed.
    pub fn run(&self, mut stream: impl FnMut() -> Answer) -> (bool, usize) {
        let mut yes = 0usize;
        let mut no = 0usize;
        loop {
            match stream() {
                Answer::Yes => yes += 1,
                Answer::No => no += 1,
            }
            if self.should_stop(yes, no) {
                return (yes >= no, yes + no);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_streams_stop_early() {
        let rule = StoppingRule::new(2.0, 0.05, 100);
        let (label, used) = rule.run(|| Answer::Yes);
        assert!(label);
        assert!(used <= 6, "unanimous stream used {used} answers");
    }

    #[test]
    fn balanced_streams_hit_the_cap() {
        let rule = StoppingRule::new(3.0, 0.0, 40);
        let mut flip = false;
        let (_, used) = rule.run(|| {
            flip = !flip;
            if flip {
                Answer::Yes
            } else {
                Answer::No
            }
        });
        assert_eq!(used, 40);
    }

    #[test]
    fn harder_rules_need_more_votes() {
        let easy = StoppingRule::new(1.0, 0.1, 1000);
        let hard = StoppingRule::new(4.0, 0.0, 1000);
        // A 2:1 biased deterministic stream.
        let make_stream = || {
            let mut i = 0usize;
            move || {
                i += 1;
                if i.is_multiple_of(3) {
                    Answer::No
                } else {
                    Answer::Yes
                }
            }
        };
        let (_, easy_used) = easy.run(make_stream());
        let (label, hard_used) = hard.run(make_stream());
        assert!(label, "majority is Yes");
        assert!(hard_used > easy_used);
    }

    #[test]
    fn epsilon_forces_termination_linearly() {
        // With ε > 0 the threshold C√t − εt eventually goes negative, so
        // even a perfectly balanced stream stops before a large cap.
        let rule = StoppingRule::new(2.0, 0.2, 10_000);
        let mut flip = false;
        let (_, used) = rule.run(|| {
            flip = !flip;
            if flip {
                Answer::Yes
            } else {
                Answer::No
            }
        });
        assert!(used < 200, "ε-drift should terminate, used {used}");
    }
}
