//! Crash-injection chaos harness: seeded kill points, torn-write
//! corruption, and checkpoint/resume drivers for differential testing.
//!
//! The harness reproduces the failure modes a real deployment hits when
//! the process dies mid-run:
//!
//! - **Kill at a step boundary** — the trace ends exactly at an embedded
//!   checkpoint line ([`TornWrite::None`]).
//! - **Torn event line** — the first event of the next step was half
//!   flushed when the process died ([`TornWrite::TornEventLine`]).
//! - **Torn checkpoint line** — a whole step's events landed but the
//!   checkpoint written after them was cut mid-line
//!   ([`TornWrite::TornCheckpointLine`]); recovery must fall back to the
//!   previous valid checkpoint and *re-emit* those events byte-for-byte.
//! - **Garbage tail** — non-JSON bytes after the last durable line
//!   ([`TornWrite::GarbageTail`]).
//!
//! [`SessionFixture`] assembles the full simulated stack — sampling
//! oracle → fault layer (dropouts, timeouts, burst outages) → metered
//! platform with retries — on fixed seeds, so an uninterrupted
//! [`SessionFixture::reference`] run and a
//! [`SessionFixture::crash_and_resume`] run under any [`CrashPlan`] can
//! be compared for *byte* equality: stitched event stream, posterior bit
//! patterns, and the final serialized session state.

use crate::faults::{FaultPlan, FaultyOracle, RetryPolicy};
use crate::oracle::SamplingOracle;
use crate::platform::SimulatedPlatform;
use hc_core::hc::UnitCost;
use hc_core::selection::GreedySelector;
use hc_core::session::{HcSession, ResumableOracle, SessionEnv, SessionStatus};
use hc_core::telemetry::checkpoint::{is_checkpoint_line, latest_in_jsonl, CheckpointFrame};
use hc_core::telemetry::{RecordingSink, StopReason};
use hc_core::{
    Belief, ExpertPanel, HcConfig, HcError, MultiBelief, Parallelism, Result, RoundRecord,
};
use hc_data::markov_joint;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Fixed seeds of the standard chaos fixture. Every layer gets its own
/// stream so a cursor bug in one layer cannot be masked by another.
const ORACLE_SEED: u64 = 0xFA11;
const FAULT_SEED: u64 = 0xD0_0D;
const PLATFORM_SEED: u64 = 0x51ED;
const LOOP_SEED: u64 = 0xC0DE;

/// What the dying process leaves at the tail of the JSONL trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornWrite {
    /// Clean kill exactly at a step boundary: the trace ends with the
    /// checkpoint line.
    None,
    /// The first event line of the *next* step was torn mid-write.
    TornEventLine,
    /// The next step's events all landed, but the checkpoint line
    /// written after them was torn — recovery resumes from the previous
    /// checkpoint and must re-emit those events identically.
    TornCheckpointLine,
    /// Arbitrary non-JSON bytes trail the trace.
    GarbageTail,
}

/// A seeded description of one injected crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Completed session steps before the process dies. Zero means the
    /// crash hit before anything durable was written (cold restart).
    pub kill_after_steps: usize,
    /// Tail corruption left behind by the kill.
    pub torn: TornWrite,
    /// Seed for the torn-write cut position.
    pub seed: u64,
}

impl CrashPlan {
    /// A plan killing after `kill_after_steps` steps with tail `torn`.
    pub fn new(kill_after_steps: usize, torn: TornWrite, seed: u64) -> Self {
        CrashPlan {
            kill_after_steps,
            torn,
            seed,
        }
    }
}

/// Everything a finished run leaves behind, in comparable (bit-exact)
/// form.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArtifacts {
    /// Event JSON lines, in emission order (checkpoint lines excluded).
    pub event_lines: Vec<String>,
    /// IEEE-754 bit patterns of every posterior cell, per task.
    pub posterior_bits: Vec<Vec<u64>>,
    /// The final session state payload (oracle cursor cleared).
    pub final_payload: String,
    /// Session steps executed by this process (a resumed run counts only
    /// its own steps).
    pub steps: usize,
    /// Why the run stopped.
    pub stop: StopReason,
}

/// The posterior of every task as raw IEEE-754 bit patterns — the
/// strictest possible equality for differential assertions.
pub fn posterior_bits(beliefs: &MultiBelief) -> Vec<Vec<u64>> {
    beliefs
        .tasks()
        .iter()
        .map(|t| t.probs().iter().map(|p| p.to_bits()).collect())
        .collect()
}

/// The deterministic simulated-crowd stack the chaos suite runs against.
///
/// Two correlated tasks (Markov-chain joints over 6 and 5 facts), a
/// three-expert panel, and an unreliable crowd: 25% dropout, 10%
/// timeouts, a 2-attempt burst outage every 7 attempts, answered through
/// a platform that retries with reassignment. Small enough to sweep
/// every step boundary, messy enough that every oracle cursor field is
/// load-bearing.
pub struct SessionFixture {
    truths: Vec<Vec<bool>>,
    beliefs: MultiBelief,
    panel: ExpertPanel,
    config: HcConfig,
    selector: GreedySelector,
    fault_plan: FaultPlan,
}

/// The concrete oracle stack of the fixture.
pub type FixtureStack<'a> = SimulatedPlatform<FaultyOracle<SamplingOracle<'a, StdRng>>>;

impl SessionFixture {
    /// The standard fixture under the given thread policy. Runs are
    /// bit-identical across policies (see `hc_core::parallel`), which is
    /// exactly what the differential suite asserts.
    pub fn standard(parallelism: Parallelism) -> Self {
        let beliefs = MultiBelief::new(vec![
            Belief::from_probs(markov_joint(6, 0.6, 0.65)).expect("fixture joint (6 facts)"),
            Belief::from_probs(markov_joint(5, 0.45, 0.8)).expect("fixture joint (5 facts)"),
        ]);
        let truths = vec![
            vec![true, false, true, true, false, false],
            vec![false, true, false, true, true],
        ];
        let panel = ExpertPanel::from_accuracies(&[0.95, 0.9, 0.85]).expect("fixture panel");
        let mut config = HcConfig::new(3, 30);
        config.parallelism = parallelism;
        SessionFixture {
            truths,
            beliefs,
            panel,
            config,
            selector: GreedySelector::new(),
            fault_plan: FaultPlan::uniform(0.25, FAULT_SEED)
                .with_timeouts(0.1)
                .with_burst(7, 2),
        }
    }

    /// Replaces the fixture's fault plan — the chaos properties sweep
    /// arbitrary unreliability profiles through the same differential
    /// machinery.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// The fixture's loop RNG, freshly seeded — drivers outside this
    /// module must use this exact stream for selector randomness or a
    /// resumed run will diverge from the original.
    pub fn loop_rng() -> StdRng {
        StdRng::seed_from_u64(LOOP_SEED)
    }

    /// Clones of the inputs `resume_state_from_trace` needs to fold a
    /// recorded trace of this fixture back into session state.
    pub fn fold_inputs(&self) -> (MultiBelief, ExpertPanel, HcConfig) {
        (self.beliefs.clone(), self.panel.clone(), self.config.clone())
    }

    /// A freshly seeded copy of the full oracle stack. Restore a saved
    /// cursor onto it to continue a checkpointed run.
    pub fn stack(&self) -> FixtureStack<'_> {
        let sampling = SamplingOracle::new(&self.truths, StdRng::seed_from_u64(ORACLE_SEED));
        let faulty = FaultyOracle::new(sampling, self.fault_plan.clone());
        SimulatedPlatform::new(faulty, PLATFORM_SEED)
            .with_retry_policy(RetryPolicy::standard())
            .with_reassignment_panel(&self.panel)
    }

    /// A fresh session over the fixture's beliefs, panel, and config.
    pub fn session(&self) -> HcSession<'_> {
        HcSession::start(
            self.beliefs.clone(),
            self.panel.clone(),
            self.config.clone(),
            &self.selector,
            &UnitCost,
        )
        .expect("fixture session")
    }

    /// Runs the fixture start to finish with no interference — the
    /// ground truth every crashed-and-resumed run must match byte for
    /// byte.
    pub fn reference(&self) -> RunArtifacts {
        let mut session = self.session();
        let mut oracle = self.stack();
        let mut rng = StdRng::seed_from_u64(LOOP_SEED);
        let mut sink = RecordingSink::new();
        let mut obs = |_: &MultiBelief, _: &RoundRecord| {};
        let mut steps = 0usize;
        let stop = loop {
            let mut env = SessionEnv {
                oracle: &mut oracle,
                rng: &mut rng,
                sink: &mut sink,
                observer: &mut obs,
            };
            let status = session.step(&mut env).expect("reference step");
            steps += 1;
            if let SessionStatus::Finished(reason) = status {
                break reason;
            }
        };
        RunArtifacts {
            event_lines: sink.events().iter().map(|e| e.to_json_line()).collect(),
            posterior_bits: posterior_bits(&session.state().beliefs),
            final_payload: session.state().to_payload(),
            steps,
            stop,
        }
    }

    /// Runs until the plan's kill point, checkpointing after every step
    /// (the `--checkpoint-every 1` discipline), corrupts the trace tail
    /// per the plan, then recovers exactly as a restarted process would:
    /// latest valid embedded checkpoint, truncate the trace to it,
    /// rebuild the stack from seeds, restore cursors, run to completion.
    ///
    /// The returned artifacts carry the *stitched* event stream (durable
    /// prefix + resumed tail).
    ///
    /// # Errors
    ///
    /// Any [`HcError`] surfaced by resume validation — a harness whose
    /// corruption was too aggressive for recovery reports it instead of
    /// producing partial state.
    pub fn crash_and_resume(&self, plan: &CrashPlan) -> Result<RunArtifacts> {
        // ---- Phase 1: the doomed process ----------------------------
        let mut session = self.session();
        let mut oracle = self.stack();
        let mut rng = StdRng::seed_from_u64(LOOP_SEED);
        let mut sink = RecordingSink::new();
        let mut trace = String::new();
        let mut emitted = 0usize;
        let mut finished = false;
        for seq in 1..=plan.kill_after_steps {
            if finished {
                break;
            }
            let mut obs = |_: &MultiBelief, _: &RoundRecord| {};
            let mut env = SessionEnv {
                oracle: &mut oracle,
                rng: &mut rng,
                sink: &mut sink,
                observer: &mut obs,
            };
            finished = matches!(session.step(&mut env)?, SessionStatus::Finished(_));
            for event in &sink.events()[emitted..] {
                trace.push_str(&event.to_json_line());
                trace.push('\n');
            }
            emitted = sink.events().len();
            session.set_oracle_cursor(Some(oracle.save_cursor()));
            trace.push_str(&session.checkpoint_frame(seq as u64).to_json_line());
            trace.push('\n');
        }
        self.corrupt_tail(plan, &mut trace, &mut session, &mut oracle, &mut rng, &mut sink, emitted);

        // ---- Phase 2: recovery in a fresh process -------------------
        let frame = latest_in_jsonl(&trace);
        let durable_events = durable_event_lines(&trace);
        let mut resumed = match &frame {
            Some(frame) => HcSession::from_frame(frame, &self.selector, &UnitCost)?,
            // Nothing durable: cold restart from scratch.
            None => self.session(),
        };
        let mut oracle = self.stack();
        if let Some(cursor) = resumed.state().oracle_cursor.clone() {
            oracle.restore_cursor(&cursor)?;
        }
        let mut rng = StdRng::seed_from_u64(LOOP_SEED);
        let mut sink = RecordingSink::new();
        let mut steps = 0usize;
        let stop = loop {
            let mut obs = |_: &MultiBelief, _: &RoundRecord| {};
            let mut env = SessionEnv {
                oracle: &mut oracle,
                rng: &mut rng,
                sink: &mut sink,
                observer: &mut obs,
            };
            let status = resumed.step(&mut env)?;
            steps += 1;
            if let SessionStatus::Finished(reason) = status {
                break reason;
            }
        };
        let mut event_lines = durable_events;
        event_lines.extend(sink.events().iter().map(|e| e.to_json_line()));
        resumed.set_oracle_cursor(None);
        Ok(RunArtifacts {
            event_lines,
            posterior_bits: posterior_bits(&resumed.state().beliefs),
            final_payload: resumed.state().to_payload(),
            steps,
            stop,
        })
    }

    /// Applies the plan's tail corruption, possibly running the doomed
    /// session one step further to obtain realistic half-written bytes.
    #[allow(clippy::too_many_arguments)]
    fn corrupt_tail(
        &self,
        plan: &CrashPlan,
        trace: &mut String,
        session: &mut HcSession<'_>,
        oracle: &mut FixtureStack<'_>,
        rng: &mut StdRng,
        sink: &mut RecordingSink,
        emitted: usize,
    ) {
        match plan.torn {
            TornWrite::None => {}
            TornWrite::TornEventLine => {
                let mut obs = |_: &MultiBelief, _: &RoundRecord| {};
                let mut env = SessionEnv {
                    oracle,
                    rng,
                    sink,
                    observer: &mut obs,
                };
                let _ = session.step(&mut env);
                if let Some(event) = sink.events().get(emitted) {
                    trace.push_str(&torn_prefix(&event.to_json_line(), plan.seed));
                }
            }
            TornWrite::TornCheckpointLine => {
                let mut obs = |_: &MultiBelief, _: &RoundRecord| {};
                let mut env = SessionEnv {
                    oracle,
                    rng,
                    sink,
                    observer: &mut obs,
                };
                let _ = session.step(&mut env);
                for event in &sink.events()[emitted..] {
                    trace.push_str(&event.to_json_line());
                    trace.push('\n');
                }
                session.set_oracle_cursor(Some(oracle.save_cursor()));
                let frame = session.checkpoint_frame(plan.kill_after_steps as u64 + 1);
                trace.push_str(&torn_prefix(&frame.to_json_line(), plan.seed));
            }
            TornWrite::GarbageTail => {
                trace.push_str("{\"type\":\"qu\u{1}\u{2}%%%garbage");
            }
        }
    }
}

/// The event lines a restarted process trusts: everything up to and
/// including the last *valid* checkpoint line, with checkpoint lines
/// themselves filtered out. Anything after that point — torn or intact
/// — is dropped; the resumed session re-emits it.
pub fn durable_event_lines(trace: &str) -> Vec<String> {
    let lines: Vec<&str> = trace.lines().collect();
    let last_valid = lines
        .iter()
        .rposition(|l| is_checkpoint_line(l) && CheckpointFrame::from_json_line(l).is_ok());
    match last_valid {
        Some(idx) => lines[..=idx]
            .iter()
            .filter(|l| !is_checkpoint_line(l))
            .map(|l| l.to_string())
            .collect(),
        None => Vec::new(),
    }
}

/// A strict prefix of `line` (never the whole line, never empty for
/// multi-byte lines), cut at a seeded position — the shape an
/// interrupted buffered write leaves on disk.
pub(crate) fn torn_prefix(line: &str, seed: u64) -> String {
    if line.len() < 2 {
        return String::new();
    }
    let cut = 1 + (StdRng::seed_from_u64(seed).next_u64() as usize) % (line.len() - 1);
    let mut cut = cut.min(line.len() - 1);
    while !line.is_char_boundary(cut) {
        cut -= 1;
    }
    line[..cut].to_string()
}

/// Convenience: asserts (by returning the mismatch as an error) that a
/// crashed-and-resumed run reproduced the reference bit-for-bit.
pub fn diff_artifacts(reference: &RunArtifacts, resumed: &RunArtifacts) -> Result<()> {
    if resumed.event_lines != reference.event_lines {
        let n = reference
            .event_lines
            .iter()
            .zip(&resumed.event_lines)
            .take_while(|(a, b)| a == b)
            .count();
        return Err(HcError::InvalidCheckpoint {
            reason: format!(
                "stitched event stream diverges at line {n} \
                 (reference {} lines, resumed {} lines)",
                reference.event_lines.len(),
                resumed.event_lines.len()
            ),
        });
    }
    if resumed.posterior_bits != reference.posterior_bits {
        return Err(HcError::InvalidCheckpoint {
            reason: "posterior bit patterns diverge".to_string(),
        });
    }
    if resumed.final_payload != reference.final_payload {
        return Err(HcError::InvalidCheckpoint {
            reason: "final session payloads diverge".to_string(),
        });
    }
    if resumed.stop != reference.stop {
        return Err(HcError::InvalidCheckpoint {
            reason: format!(
                "stop reasons diverge: reference {:?}, resumed {:?}",
                reference.stop, resumed.stop
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_run_is_reproducible_and_nontrivial() {
        let fixture = SessionFixture::standard(Parallelism::Serial);
        let a = fixture.reference();
        let b = fixture.reference();
        assert_eq!(a, b, "two reference runs must be bit-identical");
        assert!(a.steps > 6, "fixture should run several rounds: {}", a.steps);
        assert!(!a.event_lines.is_empty());
    }

    #[test]
    fn clean_kill_at_a_mid_run_boundary_resumes_byte_identically() {
        let fixture = SessionFixture::standard(Parallelism::Serial);
        let reference = fixture.reference();
        let resumed = fixture
            .crash_and_resume(&CrashPlan::new(3, TornWrite::None, 1))
            .expect("resume");
        diff_artifacts(&reference, &resumed).expect("byte-identical resume");
        assert_eq!(resumed.steps, reference.steps - 3, "no step is repeated");
    }

    #[test]
    fn kill_before_anything_durable_is_a_cold_restart() {
        let fixture = SessionFixture::standard(Parallelism::Serial);
        let reference = fixture.reference();
        let resumed = fixture
            .crash_and_resume(&CrashPlan::new(0, TornWrite::GarbageTail, 2))
            .expect("cold restart");
        diff_artifacts(&reference, &resumed).expect("cold restart equals reference");
        assert_eq!(resumed.steps, reference.steps);
    }

    #[test]
    fn torn_checkpoint_falls_back_and_reemits_the_lost_step() {
        let fixture = SessionFixture::standard(Parallelism::Serial);
        let reference = fixture.reference();
        let resumed = fixture
            .crash_and_resume(&CrashPlan::new(2, TornWrite::TornCheckpointLine, 3))
            .expect("resume");
        diff_artifacts(&reference, &resumed).expect("re-emitted events are identical");
        // The step whose checkpoint tore is executed again.
        assert_eq!(resumed.steps, reference.steps - 2);
    }

    #[test]
    fn torn_prefix_is_a_strict_prefix() {
        for seed in 0..32 {
            let line = "{\"type\":\"checkpoint\",\"seq\":1}";
            let torn = torn_prefix(line, seed);
            assert!(!torn.is_empty());
            assert!(torn.len() < line.len());
            assert!(line.starts_with(&torn));
        }
    }

    #[test]
    fn durable_lines_stop_at_the_last_valid_checkpoint() {
        let frame = CheckpointFrame::new("hc-session", 1, "p".to_string());
        let trace = format!(
            "{{\"e\":1}}\n{}\n{{\"e\":2}}\n{}",
            frame.to_json_line(),
            &frame.to_json_line()[..25]
        );
        let lines = durable_event_lines(&trace);
        assert_eq!(lines, vec!["{\"e\":1}".to_string()]);
        assert!(durable_event_lines("{\"e\":1}\n").is_empty());
    }
}
