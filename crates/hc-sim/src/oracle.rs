//! Answer oracles: where expert answers come from during simulated
//! checking.
//!
//! §IV-A: "for those datasets with complete labels from all workers, the
//! label checking is done offline and does not involve human
//! interaction" — the [`ReplayOracle`] reproduces that exactly, returning
//! each expert's *recorded* answer for the queried fact. Because a fact
//! re-selected in a later round replays the same answer, repeated
//! selection of a wrong expert answer degrades quality — the phenomenon
//! the paper observes for large budgets at θ = 0.9 (§IV-C(2)).
//!
//! The [`SamplingOracle`] instead draws a fresh answer from the §II-A
//! error model on every query (correct with probability `Pr_cr`), which
//! models a live crowd that can be asked again.

use crate::cursor;
use hc_core::hc::AnswerOracle;
use hc_core::selection::GlobalFact;
use hc_core::session::ResumableOracle;
use hc_core::{Answer, AnswerOutcome, Result, Worker};
use hc_data::{CrowdDataset, TaskGrouping};
use rand::RngCore;

/// Samples answers from the worker error model against a hidden ground
/// truth: correct with probability `Pr_cr`, independently per query.
pub struct SamplingOracle<'a, R: RngCore> {
    truths: &'a [Vec<bool>],
    rng: R,
    /// Answers served so far — equivalently, `next_u64` draws consumed.
    /// This *is* the oracle's checkpoint cursor: restoring replays this
    /// many draws on a freshly seeded clone.
    served: u64,
}

impl<'a, R: RngCore> SamplingOracle<'a, R> {
    /// Creates a sampling oracle over per-task ground truths.
    pub fn new(truths: &'a [Vec<bool>], rng: R) -> Self {
        SamplingOracle {
            truths,
            rng,
            served: 0,
        }
    }

    /// Answers served so far (one RNG draw each).
    pub fn served(&self) -> u64 {
        self.served
    }
}

impl<R: RngCore> AnswerOracle for SamplingOracle<'_, R> {
    fn answer(&mut self, worker: &Worker, fact: GlobalFact) -> AnswerOutcome {
        let truth = self.truths[fact.task][fact.fact.index()];
        // gen_bool without the Rng extension trait to stay object-safe
        // over RngCore: draw a uniform u64.
        let threshold = (worker.accuracy.rate() * u64::MAX as f64) as u64;
        let correct = self.rng.next_u64() <= threshold;
        self.served += 1;
        Answer::from_bool(if correct { truth } else { !truth }).into()
    }
}

impl<R: RngCore> ResumableOracle for SamplingOracle<'_, R> {
    fn save_cursor(&self) -> String {
        cursor::obj(vec![("served", cursor::num(self.served))]).to_string()
    }

    fn restore_cursor(&mut self, cursor_str: &str) -> Result<()> {
        let v = cursor::parse(cursor_str)?;
        let served = cursor::get_u64(&v, "served")?;
        if served < self.served {
            return Err(hc_core::HcError::InvalidCheckpoint {
                reason: format!(
                    "sampling-oracle cursor rewinds the RNG ({} draws behind)",
                    self.served - served
                ),
            });
        }
        // Fast-forward the freshly seeded RNG to the recorded position:
        // one draw per served answer, mirroring `answer` exactly.
        for _ in self.served..served {
            let _ = self.rng.next_u64();
        }
        self.served = served;
        Ok(())
    }
}

/// Replays recorded answers from a collected dataset (the paper's
/// offline evaluation mode). Asking the same worker about the same fact
/// twice returns the same answer.
pub struct ReplayOracle {
    /// `answers[worker][item]` — dense recorded answer table.
    answers: Vec<Vec<bool>>,
    grouping: TaskGrouping,
}

impl ReplayOracle {
    /// Builds a replay oracle for the experts of a complete binary
    /// corpus.
    ///
    /// # Errors
    ///
    /// [`hc_data::DataError::InvalidConfig`] when the corpus is not
    /// binary or some `(worker, item)` pair that could be queried has no
    /// recorded answer.
    pub fn new(dataset: &CrowdDataset, grouping: TaskGrouping) -> hc_data::Result<Self> {
        if dataset.matrix.n_classes() != 2 {
            return Err(hc_data::DataError::InvalidConfig(
                "replay oracle needs a binary corpus".into(),
            ));
        }
        let n_items = dataset.matrix.n_items();
        let n_workers = dataset.matrix.n_workers();
        let mut answers = vec![vec![false; n_items]; n_workers];
        let mut seen = vec![vec![false; n_items]; n_workers];
        for e in dataset.matrix.entries() {
            answers[e.worker as usize][e.item as usize] = e.label == 1;
            seen[e.worker as usize][e.item as usize] = true;
        }
        // Completeness check: every worker must have answered every item
        // (the §IV-A replay setting). Incomplete corpora should use the
        // SamplingOracle instead.
        for (w, row) in seen.iter().enumerate() {
            if let Some(item) = row.iter().position(|&s| !s) {
                return Err(hc_data::DataError::InvalidConfig(format!(
                    "worker {w} has no recorded answer for item {item}; replay needs a complete matrix"
                )));
            }
        }
        Ok(ReplayOracle { answers, grouping })
    }
}

impl AnswerOracle for ReplayOracle {
    fn answer(&mut self, worker: &Worker, fact: GlobalFact) -> AnswerOutcome {
        let item = self.grouping.item_of(fact);
        Answer::from_bool(self.answers[worker.id.index()][item]).into()
    }
}

impl ResumableOracle for ReplayOracle {
    /// The replay oracle is a pure lookup table — it has no mutable
    /// progress, so its cursor is the empty object.
    fn save_cursor(&self) -> String {
        "{}".into()
    }

    fn restore_cursor(&mut self, cursor_str: &str) -> Result<()> {
        cursor::parse(cursor_str)?;
        Ok(())
    }
}

/// Wraps another oracle and counts the answers served — used to verify
/// budget accounting in tests and experiments.
pub struct CountingOracle<O> {
    inner: O,
    count: u64,
    attempts: u64,
}

impl<O> CountingOracle<O> {
    /// Wraps `inner`.
    pub fn new(inner: O) -> Self {
        CountingOracle {
            inner,
            count: 0,
            attempts: 0,
        }
    }

    /// Answers actually delivered so far (attempts minus failures).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Attempts made so far, including dropped and timed-out ones.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Unwraps the inner oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: AnswerOracle> AnswerOracle for CountingOracle<O> {
    fn begin_dispatch(&mut self, query_id: u64) {
        self.inner.begin_dispatch(query_id);
    }

    fn answer(&mut self, worker: &Worker, fact: GlobalFact) -> AnswerOutcome {
        self.attempts += 1;
        let outcome = self.inner.answer(worker, fact);
        if outcome.is_answered() {
            self.count += 1;
        }
        outcome
    }
}

impl<O: ResumableOracle> ResumableOracle for CountingOracle<O> {
    fn save_cursor(&self) -> String {
        cursor::obj(vec![
            ("attempts", cursor::num(self.attempts)),
            ("count", cursor::num(self.count)),
            (
                "inner",
                hc_core::telemetry::json::Json::Str(self.inner.save_cursor()),
            ),
        ])
        .to_string()
    }

    fn restore_cursor(&mut self, cursor_str: &str) -> Result<()> {
        let v = cursor::parse(cursor_str)?;
        let attempts = cursor::get_u64(&v, "attempts")?;
        let count = cursor::get_u64(&v, "count")?;
        // Everything parsed; restore the inner oracle (itself
        // all-or-nothing) before committing our own counters.
        self.inner.restore_cursor(cursor::get_str(&v, "inner")?)?;
        self.attempts = attempts;
        self.count = count;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_core::FactId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn worker(acc: f64) -> Worker {
        Worker::new(0, acc).unwrap()
    }

    #[test]
    fn perfect_worker_always_truthful_in_sampling() {
        let truths = vec![vec![true, false]];
        let mut oracle = SamplingOracle::new(&truths, StdRng::seed_from_u64(1));
        let w = worker(1.0);
        for _ in 0..50 {
            assert_eq!(
                oracle.answer(&w, GlobalFact::new(0, 0)),
                AnswerOutcome::Answered(Answer::Yes)
            );
            assert_eq!(
                oracle.answer(&w, GlobalFact::new(0, 1)),
                AnswerOutcome::Answered(Answer::No)
            );
        }
    }

    #[test]
    fn sampling_oracle_error_rate_matches_accuracy() {
        let truths = vec![vec![true]];
        let mut oracle = SamplingOracle::new(&truths, StdRng::seed_from_u64(2));
        let w = worker(0.8);
        let n = 20_000;
        let correct = (0..n)
            .filter(|_| oracle.answer(&w, GlobalFact::new(0, 0)).answer() == Some(Answer::Yes))
            .count();
        let rate = correct as f64 / n as f64;
        assert!((rate - 0.8).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn replay_returns_recorded_answers_stably() {
        use hc_data::{AnswerEntry, AnswerMatrix};
        let entries = vec![
            AnswerEntry { item: 0, worker: 0, label: 1 },
            AnswerEntry { item: 1, worker: 0, label: 0 },
        ];
        let matrix = AnswerMatrix::new(2, 1, 2, entries).unwrap();
        let ds = CrowdDataset::new(matrix, vec![1, 0], vec![0.9]).unwrap();
        let grouping = TaskGrouping::new(2, 2).unwrap();
        let mut oracle = ReplayOracle::new(&ds, grouping).unwrap();
        let w = Worker::new(0, 0.9).unwrap();
        for _ in 0..3 {
            assert_eq!(
                oracle.answer(&w, GlobalFact { task: 0, fact: FactId(0) }),
                AnswerOutcome::Answered(Answer::Yes)
            );
            assert_eq!(
                oracle.answer(&w, GlobalFact { task: 0, fact: FactId(1) }),
                AnswerOutcome::Answered(Answer::No)
            );
        }
    }

    #[test]
    fn replay_rejects_incomplete_matrices() {
        use hc_data::{AnswerEntry, AnswerMatrix};
        let matrix = AnswerMatrix::new(
            2,
            1,
            2,
            vec![AnswerEntry { item: 0, worker: 0, label: 1 }],
        )
        .unwrap();
        let ds = CrowdDataset::new(matrix, vec![1, 0], vec![0.9]).unwrap();
        let grouping = TaskGrouping::new(2, 2).unwrap();
        assert!(ReplayOracle::new(&ds, grouping).is_err());
    }

    #[test]
    fn counting_oracle_counts() {
        let truths = vec![vec![true]];
        let inner = SamplingOracle::new(&truths, StdRng::seed_from_u64(3));
        let mut oracle = CountingOracle::new(inner);
        let w = worker(0.9);
        for _ in 0..7 {
            oracle.answer(&w, GlobalFact::new(0, 0));
        }
        assert_eq!(oracle.count(), 7);
        assert_eq!(oracle.attempts(), 7);
    }

    #[test]
    fn counting_oracle_separates_attempts_from_deliveries() {
        struct DeadOracle;
        impl AnswerOracle for DeadOracle {
            fn answer(&mut self, _worker: &Worker, _fact: GlobalFact) -> AnswerOutcome {
                AnswerOutcome::Dropped
            }
        }
        let mut oracle = CountingOracle::new(DeadOracle);
        let w = worker(0.9);
        for _ in 0..5 {
            assert_eq!(oracle.answer(&w, GlobalFact::new(0, 0)), AnswerOutcome::Dropped);
        }
        assert_eq!(oracle.attempts(), 5);
        assert_eq!(oracle.count(), 0);
    }
}
