//! Deterministic fault injection for simulated crowds.
//!
//! Real crowd workers are unreliable: they drop assignments, time out,
//! disappear for a burst (platform outage) or forever (churn). The
//! [`FaultyOracle`] wraps any [`AnswerOracle`] and converts a seeded
//! [`FaultPlan`] into per-attempt [`AnswerOutcome`] failures, while the
//! [`RetryPolicy`] tells the platform layer how to respond — how many
//! attempts to make, how long each failure costs on the simulated
//! clock, and whether to reassign the query to the next-best expert.
//!
//! Determinism contract: the fault layer owns its *own* RNG (seeded from
//! [`FaultPlan::seed`]) and draws exactly the same number of variates
//! per attempt regardless of which fault fires, so (a) a given plan
//! produces a bit-for-bit reproducible failure sequence, and (b) a plan
//! with all probabilities at zero leaves the wrapped oracle's answer
//! stream untouched — wrapped and unwrapped runs are identical.

use crate::cursor;
use hc_core::hc::AnswerOracle;
use hc_core::selection::GlobalFact;
use hc_core::session::ResumableOracle;
use hc_core::telemetry::json::Json;
use hc_core::telemetry::{FaultKind, TelemetryEvent, TelemetrySink};
use hc_core::{AnswerOutcome, HcError, Result, Worker, WorkerId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A seeded, declarative description of how a crowd misbehaves.
///
/// All probabilities are per-attempt and clamped to `[0, 1]` at
/// construction, so arbitrary (e.g. property-test generated) values are
/// safe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability that any single attempt is dropped (no answer, the
    /// worker abandoned the assignment).
    pub base_dropout: f64,
    /// Per-worker dropout overrides `(worker id, probability)`; workers
    /// listed here ignore `base_dropout`.
    pub worker_dropout: Vec<(u32, f64)>,
    /// Probability that an attempt times out instead of answering.
    pub timeout_prob: f64,
    /// Burst outages: every `burst_every` attempts, the next
    /// `burst_len` attempts all time out (platform-wide). `0` disables.
    pub burst_every: u64,
    /// Length of each burst outage window, in attempts.
    pub burst_len: u64,
    /// Per-attempt probability that the attempting worker churns —
    /// permanently leaves the crowd; every later attempt by that worker
    /// is dropped.
    pub churn_prob: f64,
    /// Mid-run accuracy decay, for drift-detection scenarios. `None`
    /// (the default, and what plans serialized before this field
    /// existed deserialize to) disables decay.
    #[serde(default)]
    pub accuracy_decay: Option<AccuracyDecay>,
    /// Seed of the fault layer's private RNG.
    pub seed: u64,
}

/// Mid-run worker degradation: after the fault layer has seen
/// `after_attempts` attempts (its global 0-based counter), the listed
/// workers answer as if their accuracy had dropped to `floor`.
///
/// The substitution happens *between* the fault layer and its inner
/// oracle — the degraded [`Worker`] is handed to the inner oracle's
/// sampling — so it consumes no extra RNG draws and leaves the fault
/// sequence, the retry behaviour, and the resume cursor untouched.
/// Decay never *raises* accuracy: the effective rate is
/// `min(worker rate, clamp(floor, 0.5, 1.0))`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyDecay {
    /// Fault-layer attempt index (0-based) at which the decay sets in.
    pub after_attempts: u64,
    /// Worker ids that degrade. Workers not listed are unaffected.
    pub workers: Vec<u32>,
    /// Post-onset accuracy, clamped to `[0.5, 1.0]` when applied.
    pub floor: f64,
}

fn clamp01(p: f64) -> f64 {
    if p.is_nan() {
        0.0
    } else {
        p.clamp(0.0, 1.0)
    }
}

impl FaultPlan {
    /// A plan that never fails: wrapping with it is a no-op on the
    /// answer stream.
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            base_dropout: 0.0,
            worker_dropout: Vec::new(),
            timeout_prob: 0.0,
            burst_every: 0,
            burst_len: 0,
            churn_prob: 0.0,
            accuracy_decay: None,
            seed,
        }
    }

    /// Uniform per-attempt dropout at rate `dropout`, no other faults.
    pub fn uniform(dropout: f64, seed: u64) -> Self {
        FaultPlan {
            base_dropout: clamp01(dropout),
            ..FaultPlan::none(seed)
        }
    }

    /// Adds a per-attempt timeout probability.
    pub fn with_timeouts(mut self, prob: f64) -> Self {
        self.timeout_prob = clamp01(prob);
        self
    }

    /// Adds periodic burst outages: after every `every` attempts the
    /// next `len` attempts time out.
    pub fn with_burst(mut self, every: u64, len: u64) -> Self {
        self.burst_every = every;
        self.burst_len = len;
        self
    }

    /// Adds permanent-churn probability per attempt.
    pub fn with_churn(mut self, prob: f64) -> Self {
        self.churn_prob = clamp01(prob);
        self
    }

    /// Adds mid-run accuracy decay: after `after_attempts` attempts the
    /// listed workers answer at accuracy `floor` (see [`AccuracyDecay`]).
    pub fn with_accuracy_decay(mut self, after_attempts: u64, workers: Vec<u32>, floor: f64) -> Self {
        self.accuracy_decay = Some(AccuracyDecay {
            after_attempts,
            workers,
            floor,
        });
        self
    }

    /// Overrides the dropout rate for one worker.
    pub fn with_worker_dropout(mut self, worker: WorkerId, prob: f64) -> Self {
        let prob = clamp01(prob);
        match self.worker_dropout.iter_mut().find(|(id, _)| *id == worker.0) {
            Some((_, p)) => *p = prob,
            None => self.worker_dropout.push((worker.0, prob)),
        }
        self
    }

    /// The effective dropout rate for `worker`.
    pub fn dropout_for(&self, worker: WorkerId) -> f64 {
        self.worker_dropout
            .iter()
            .find(|(id, _)| *id == worker.0)
            .map(|&(_, p)| clamp01(p))
            .unwrap_or(clamp01(self.base_dropout))
    }

    /// Whether attempt number `attempt` (0-based) falls inside a burst
    /// outage window.
    fn in_burst(&self, attempt: u64) -> bool {
        self.burst_every > 0 && attempt % self.burst_every < self.burst_len.min(self.burst_every)
    }
}

/// Counters the fault layer keeps while injecting failures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Attempts seen (delegated or failed).
    pub attempts: u64,
    /// Attempts that produced an answer.
    pub answered: u64,
    /// Attempts dropped (including by churned workers).
    pub dropped: u64,
    /// Attempts that timed out (including burst outages).
    pub timed_out: u64,
    /// Workers that permanently churned out of the crowd.
    pub churned_workers: u64,
}

/// Wraps an oracle with a [`FaultPlan`], turning some attempts into
/// [`AnswerOutcome::Dropped`] / [`AnswerOutcome::TimedOut`].
pub struct FaultyOracle<O> {
    inner: O,
    plan: FaultPlan,
    rng: StdRng,
    attempt: u64,
    churned: Vec<u32>,
    stats: FaultStats,
    /// Optional telemetry sink; every injected failure is emitted as a
    /// `FaultInjected` event with its [`FaultKind`].
    sink: Option<Box<dyn TelemetrySink>>,
    /// Causal id of the dispatch currently being answered (from
    /// [`AnswerOracle::begin_dispatch`]); stamped onto `FaultInjected`
    /// events. Zero before the first dispatch.
    current_query_id: u64,
}

impl<O> FaultyOracle<O> {
    /// Wraps `inner` under `plan`; the fault RNG is seeded from
    /// [`FaultPlan::seed`].
    pub fn new(inner: O, plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultyOracle {
            inner,
            plan,
            rng,
            attempt: 0,
            churned: Vec::new(),
            stats: FaultStats::default(),
            sink: None,
            current_query_id: 0,
        }
    }

    /// Attaches a telemetry sink; injected faults appear in the event
    /// stream as `FaultInjected` events. The sink does not perturb the
    /// fault RNG, so instrumented and bare runs fail identically.
    pub fn with_telemetry(mut self, sink: Box<dyn TelemetrySink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Emits a `FaultInjected` event when a sink is attached.
    fn emit_fault(&mut self, worker: &Worker, fact: GlobalFact, kind: FaultKind) {
        if let Some(sink) = self.sink.as_mut() {
            if sink.enabled() {
                sink.record(&TelemetryEvent::FaultInjected {
                    task: fact.task,
                    fact: fact.fact.0,
                    worker: worker.id.0,
                    kind,
                    query_id: self.current_query_id,
                });
            }
        }
    }

    /// The fault counters so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// The plan this oracle injects.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Workers that have permanently churned.
    pub fn churned(&self) -> &[u32] {
        &self.churned
    }

    /// Unwraps, returning the inner oracle and the fault counters.
    pub fn into_parts(self) -> (O, FaultStats) {
        (self.inner, self.stats)
    }
}

impl<O: AnswerOracle> AnswerOracle for FaultyOracle<O> {
    fn begin_dispatch(&mut self, query_id: u64) {
        self.current_query_id = query_id;
        self.inner.begin_dispatch(query_id);
    }

    fn answer(&mut self, worker: &Worker, fact: GlobalFact) -> AnswerOutcome {
        let attempt = self.attempt;
        self.attempt += 1;
        self.stats.attempts += 1;
        // Always draw the same number of variates per attempt so the
        // failure sequence is a pure function of (plan, attempt index),
        // independent of which branch fires.
        let churn_draw = self.rng.gen::<f64>();
        let timeout_draw = self.rng.gen::<f64>();
        let dropout_draw = self.rng.gen::<f64>();

        if self.churned.contains(&worker.id.0) {
            self.stats.dropped += 1;
            self.emit_fault(worker, fact, FaultKind::Churn);
            return AnswerOutcome::Dropped;
        }
        if self.plan.in_burst(attempt) {
            self.stats.timed_out += 1;
            self.emit_fault(worker, fact, FaultKind::Burst);
            return AnswerOutcome::TimedOut;
        }
        if churn_draw < self.plan.churn_prob {
            self.churned.push(worker.id.0);
            self.stats.churned_workers += 1;
            self.stats.dropped += 1;
            self.emit_fault(worker, fact, FaultKind::Churn);
            return AnswerOutcome::Dropped;
        }
        if timeout_draw < self.plan.timeout_prob {
            self.stats.timed_out += 1;
            self.emit_fault(worker, fact, FaultKind::Timeout);
            return AnswerOutcome::TimedOut;
        }
        if dropout_draw < self.plan.dropout_for(worker.id) {
            self.stats.dropped += 1;
            self.emit_fault(worker, fact, FaultKind::Dropout);
            return AnswerOutcome::Dropped;
        }
        let outcome = match self.degraded(worker, attempt) {
            Some(degraded) => self.inner.answer(&degraded, fact),
            None => self.inner.answer(worker, fact),
        };
        match outcome {
            AnswerOutcome::Answered(_) => self.stats.answered += 1,
            AnswerOutcome::TimedOut => self.stats.timed_out += 1,
            AnswerOutcome::Dropped => self.stats.dropped += 1,
        }
        outcome
    }
}

impl<O> FaultyOracle<O> {
    /// The decayed stand-in for `worker` at fault-layer attempt index
    /// `attempt`, when the plan's [`AccuracyDecay`] applies — keyed on
    /// the attempt counter alone, so it is a pure function of the plan
    /// and perturbs neither the fault RNG nor the resume cursor.
    fn degraded(&self, worker: &Worker, attempt: u64) -> Option<Worker> {
        let decay = self.plan.accuracy_decay.as_ref()?;
        if attempt < decay.after_attempts || !decay.workers.contains(&worker.id.0) {
            return None;
        }
        let floor = if decay.floor.is_nan() {
            0.5
        } else {
            decay.floor.clamp(0.5, 1.0)
        };
        let rate = floor.min(worker.accuracy.rate());
        if rate >= worker.accuracy.rate() {
            return None;
        }
        Some(Worker::new(worker.id.0, rate).expect("clamped decay rate is a valid accuracy"))
    }
}

impl<O: ResumableOracle> ResumableOracle for FaultyOracle<O> {
    fn save_cursor(&self) -> String {
        cursor::obj(vec![
            ("attempt", cursor::num(self.attempt)),
            ("churned", cursor::u32_arr(&self.churned)),
            (
                "stats",
                cursor::obj(vec![
                    ("attempts", cursor::num(self.stats.attempts)),
                    ("answered", cursor::num(self.stats.answered)),
                    ("dropped", cursor::num(self.stats.dropped)),
                    ("timed_out", cursor::num(self.stats.timed_out)),
                    ("churned_workers", cursor::num(self.stats.churned_workers)),
                ]),
            ),
            ("inner", Json::Str(self.inner.save_cursor())),
        ])
        .to_string()
    }

    fn restore_cursor(&mut self, cursor_str: &str) -> Result<()> {
        let v = cursor::parse(cursor_str)?;
        let attempt = cursor::get_u64(&v, "attempt")?;
        if attempt < self.attempt {
            return Err(HcError::InvalidCheckpoint {
                reason: format!(
                    "fault-layer cursor rewinds the fault RNG ({} attempts behind)",
                    self.attempt - attempt
                ),
            });
        }
        let churned = cursor::get_u32_arr(&v, "churned")?;
        let s = v.get("stats").ok_or_else(|| cursor::bad("stats"))?;
        let stats = FaultStats {
            attempts: cursor::get_u64(s, "attempts")?,
            answered: cursor::get_u64(s, "answered")?,
            dropped: cursor::get_u64(s, "dropped")?,
            timed_out: cursor::get_u64(s, "timed_out")?,
            churned_workers: cursor::get_u64(s, "churned_workers")?,
        };
        self.inner.restore_cursor(cursor::get_str(&v, "inner")?)?;
        // Fast-forward the fault RNG: `answer` draws exactly three
        // variates per attempt regardless of which branch fires.
        for _ in self.attempt..attempt {
            let _ = self.rng.gen::<f64>();
            let _ = self.rng.gen::<f64>();
            let _ = self.rng.gen::<f64>();
        }
        self.attempt = attempt;
        self.churned = churned;
        self.stats = stats;
        Ok(())
    }
}

/// How the platform reacts to a failed attempt (see
/// [`SimulatedPlatform`](crate::platform::SimulatedPlatform)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per query (1 = no retry).
    pub max_attempts: u32,
    /// Simulated seconds lost waiting for an attempt that never
    /// answers, charged per failed attempt.
    pub timeout_wait_secs: f64,
    /// Backoff before the first retry, in simulated seconds.
    pub backoff_base_secs: f64,
    /// Multiplier applied to the backoff before each further retry.
    pub backoff_multiplier: f64,
    /// Whether retries go to the next-best *different* expert (when the
    /// platform knows the panel) instead of re-asking the same worker.
    pub reassign: bool,
    /// Whether failed attempts are still charged under the cost model
    /// (some platforms pay for accepted assignments, answered or not).
    pub charge_failed_attempts: bool,
}

impl RetryPolicy {
    /// One attempt, no retries, failures cost only the timeout wait.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            timeout_wait_secs: 60.0,
            backoff_base_secs: 0.0,
            backoff_multiplier: 1.0,
            reassign: false,
            charge_failed_attempts: false,
        }
    }

    /// A sensible production-like policy: three attempts with
    /// exponential backoff (30 s, then 60 s) and reassignment to the
    /// next-best expert.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 3,
            timeout_wait_secs: 60.0,
            backoff_base_secs: 30.0,
            backoff_multiplier: 2.0,
            reassign: true,
            charge_failed_attempts: false,
        }
    }

    /// The backoff charged before retry number `retry` (1-based).
    pub fn backoff_secs(&self, retry: u32) -> f64 {
        if retry == 0 {
            0.0
        } else {
            self.backoff_base_secs * self.backoff_multiplier.powi(retry as i32 - 1)
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SamplingOracle;
    use rand::rngs::StdRng;

    fn worker(id: u32, acc: f64) -> Worker {
        Worker::new(id, acc).unwrap()
    }

    fn sampling(truths: &[Vec<bool>], seed: u64) -> SamplingOracle<'_, StdRng> {
        SamplingOracle::new(truths, StdRng::seed_from_u64(seed))
    }

    #[test]
    fn none_plan_is_transparent() {
        let truths = vec![vec![true, false, true]];
        let mut plain = sampling(&truths, 7);
        let mut faulty = FaultyOracle::new(sampling(&truths, 7), FaultPlan::none(99));
        let w = worker(0, 0.8);
        for i in 0..60 {
            let gf = GlobalFact::new(0, i % 3);
            assert_eq!(
                plain.answer(&w, gf),
                faulty.answer(&w, gf),
                "fault RNG must not perturb the inner stream"
            );
        }
        assert_eq!(faulty.stats().answered, 60);
        assert_eq!(faulty.stats().dropped + faulty.stats().timed_out, 0);
    }

    #[test]
    fn full_dropout_never_answers() {
        let truths = vec![vec![true]];
        let mut faulty = FaultyOracle::new(sampling(&truths, 1), FaultPlan::uniform(1.0, 5));
        let w = worker(0, 0.9);
        for _ in 0..20 {
            assert_eq!(faulty.answer(&w, GlobalFact::new(0, 0)), AnswerOutcome::Dropped);
        }
        assert_eq!(faulty.stats().dropped, 20);
        assert_eq!(faulty.stats().answered, 0);
    }

    #[test]
    fn seeded_plan_reproduces_bit_for_bit() {
        let truths = vec![vec![true, false]];
        let plan = FaultPlan::uniform(0.35, 42).with_timeouts(0.2).with_churn(0.01);
        let run = || {
            let mut faulty = FaultyOracle::new(sampling(&truths, 3), plan.clone());
            let w0 = worker(0, 0.9);
            let w1 = worker(1, 0.8);
            (0..200)
                .map(|i| {
                    let w = if i % 2 == 0 { &w0 } else { &w1 };
                    faulty.answer(w, GlobalFact::new(0, i % 2))
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn burst_outage_times_out_inside_the_window() {
        let truths = vec![vec![true]];
        let plan = FaultPlan::none(9).with_burst(10, 3);
        let mut faulty = FaultyOracle::new(sampling(&truths, 2), plan);
        let w = worker(0, 1.0);
        let outcomes: Vec<AnswerOutcome> = (0..20)
            .map(|_| faulty.answer(&w, GlobalFact::new(0, 0)))
            .collect();
        for (i, o) in outcomes.iter().enumerate() {
            if i % 10 < 3 {
                assert_eq!(*o, AnswerOutcome::TimedOut, "attempt {i} is in a burst");
            } else {
                assert!(o.is_answered(), "attempt {i} is outside the burst");
            }
        }
        assert_eq!(faulty.stats().timed_out, 6);
    }

    #[test]
    fn churned_worker_stays_gone() {
        let truths = vec![vec![true]];
        let plan = FaultPlan::none(11).with_churn(1.0);
        let mut faulty = FaultyOracle::new(sampling(&truths, 2), plan);
        let w = worker(4, 0.9);
        for _ in 0..10 {
            assert_eq!(faulty.answer(&w, GlobalFact::new(0, 0)), AnswerOutcome::Dropped);
        }
        assert_eq!(faulty.stats().churned_workers, 1, "churn fires once per worker");
        assert_eq!(faulty.churned(), &[4]);
    }

    #[test]
    fn per_worker_dropout_overrides_base() {
        let truths = vec![vec![true]];
        let plan = FaultPlan::uniform(0.0, 13).with_worker_dropout(WorkerId(1), 1.0);
        let mut faulty = FaultyOracle::new(sampling(&truths, 2), plan);
        let reliable = worker(0, 0.9);
        let flaky = worker(1, 0.9);
        for _ in 0..10 {
            assert!(faulty.answer(&reliable, GlobalFact::new(0, 0)).is_answered());
            assert_eq!(
                faulty.answer(&flaky, GlobalFact::new(0, 0)),
                AnswerOutcome::Dropped
            );
        }
    }

    #[test]
    fn injected_faults_land_in_the_event_stream() {
        use hc_core::telemetry::SharedRecorder;
        let truths = vec![vec![true]];
        let plan = FaultPlan::uniform(1.0, 17);
        let recorder = SharedRecorder::new();
        let mut faulty = FaultyOracle::new(sampling(&truths, 2), plan)
            .with_telemetry(Box::new(recorder.clone()));
        let w = worker(2, 0.9);
        for i in 0..5 {
            faulty.begin_dispatch(i + 1);
            faulty.answer(&w, GlobalFact::new(0, 0));
        }
        let events = recorder.snapshot();
        assert_eq!(events.len(), 5);
        for (i, event) in events.iter().enumerate() {
            match event {
                TelemetryEvent::FaultInjected {
                    task,
                    fact,
                    worker,
                    kind,
                    query_id,
                } => {
                    assert_eq!((*task, *fact, *worker), (0, 0, 2));
                    assert_eq!(*kind, FaultKind::Dropout);
                    assert_eq!(*query_id, i as u64 + 1, "fault carries the dispatch id");
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert_eq!(faulty.stats().dropped, 5);
    }

    #[test]
    fn telemetry_sink_does_not_perturb_the_fault_sequence() {
        use hc_core::telemetry::SharedRecorder;
        let truths = vec![vec![true, false]];
        let plan = FaultPlan::uniform(0.4, 23).with_timeouts(0.2);
        let run = |instrument: bool| {
            let mut faulty = FaultyOracle::new(sampling(&truths, 3), plan.clone());
            if instrument {
                faulty = faulty.with_telemetry(Box::new(SharedRecorder::new()));
            }
            let w = worker(0, 0.9);
            (0..100)
                .map(|i| faulty.answer(&w, GlobalFact::new(0, i % 2)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn accuracy_decay_degrades_only_listed_workers_after_onset() {
        // One fact whose truth is `true`; a perfect worker answers Yes
        // until the decay kicks in, after which it samples at 0.5.
        let truths = vec![vec![true]];
        let plan = FaultPlan::none(31).with_accuracy_decay(10, vec![0], 0.5);
        let mut faulty = FaultyOracle::new(sampling(&truths, 8), plan);
        let decaying = worker(0, 1.0);
        let steady = worker(1, 1.0);
        let mut wrong_before = 0;
        let mut wrong_after = 0;
        for i in 0..100 {
            let w = if i % 2 == 0 { &decaying } else { &steady };
            let outcome = faulty.answer(w, GlobalFact::new(0, 0));
            let wrong = outcome != AnswerOutcome::Answered(hc_core::Answer::Yes);
            if w.id.0 == 1 {
                assert!(!wrong, "unlisted worker must stay perfect (attempt {i})");
            } else if i < 10 {
                assert!(!wrong, "decay must not fire before onset (attempt {i})");
            } else {
                wrong_after += usize::from(wrong);
            }
            wrong_before += usize::from(wrong && i < 10);
        }
        assert_eq!(wrong_before, 0);
        assert!(
            wrong_after > 5,
            "a 0.5-accuracy coin should err often, got {wrong_after}/45"
        );
    }

    #[test]
    fn accuracy_decay_never_raises_accuracy_or_perturbs_rng() {
        let truths = vec![vec![true, false]];
        // Floor above the worker's own rate: the substitution is a
        // no-op and the stream matches the undecayed run bit-for-bit.
        let base = FaultPlan::uniform(0.2, 47).with_timeouts(0.1);
        let decayed = base.clone().with_accuracy_decay(0, vec![0], 0.95);
        let run = |plan: FaultPlan| {
            let mut faulty = FaultyOracle::new(sampling(&truths, 5), plan);
            let w = worker(0, 0.7);
            (0..200)
                .map(|i| faulty.answer(&w, GlobalFact::new(0, i % 2)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(base), run(decayed));
    }

    #[test]
    fn accuracy_decay_survives_serde_and_old_plans_default_to_none() {
        let plan = FaultPlan::uniform(0.1, 3).with_accuracy_decay(50, vec![2, 7], 0.6);
        let Ok(json) = serde_json::to_string(&plan) else {
            // Offline stub toolchain: serde is non-functional; the
            // round-trip is exercised by CI's real serde.
            return;
        };
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        // A plan serialized before the field existed still parses.
        let old = json
            .replace(",\"accuracy_decay\":{\"after_attempts\":50,\"workers\":[2,7],\"floor\":0.6}", "")
            .replace("\"accuracy_decay\":{\"after_attempts\":50,\"workers\":[2,7],\"floor\":0.6},", "");
        assert!(!old.contains("accuracy_decay"), "{old}");
        let legacy: FaultPlan = serde_json::from_str(&old).unwrap();
        assert_eq!(legacy.accuracy_decay, None);
        assert_eq!(legacy.base_dropout, plan.base_dropout);
    }

    #[test]
    fn accuracy_decay_leaves_the_resume_cursor_untouched() {
        let truths = vec![vec![true]];
        let plan = FaultPlan::none(19).with_accuracy_decay(5, vec![0], 0.5);
        let mut faulty = FaultyOracle::new(sampling(&truths, 2), plan.clone());
        let w = worker(0, 0.95);
        for _ in 0..12 {
            faulty.answer(&w, GlobalFact::new(0, 0));
        }
        let cursor_str = faulty.save_cursor();
        // A fresh oracle under the same plan restores and continues
        // identically to the uninterrupted one.
        let mut resumed = FaultyOracle::new(sampling(&truths, 2), plan);
        for _ in 0..12 {
            resumed.answer(&w, GlobalFact::new(0, 0));
        }
        resumed.restore_cursor(&cursor_str).unwrap();
        for _ in 0..12 {
            assert_eq!(
                faulty.answer(&w, GlobalFact::new(0, 0)),
                resumed.answer(&w, GlobalFact::new(0, 0))
            );
        }
    }

    #[test]
    fn probabilities_are_clamped() {
        let plan = FaultPlan::uniform(7.0, 0)
            .with_timeouts(-3.0)
            .with_churn(f64::NAN);
        assert_eq!(plan.base_dropout, 1.0);
        assert_eq!(plan.timeout_prob, 0.0);
        assert_eq!(plan.churn_prob, 0.0);
    }

    #[test]
    fn retry_backoff_grows_exponentially() {
        let policy = RetryPolicy::standard();
        assert_eq!(policy.backoff_secs(0), 0.0);
        assert_eq!(policy.backoff_secs(1), 30.0);
        assert_eq!(policy.backoff_secs(2), 60.0);
        let none = RetryPolicy::none();
        assert_eq!(none.max_attempts, 1);
        assert_eq!(none.backoff_secs(1), 0.0);
    }
}
