//! End-to-end pipeline glue: from a collected corpus to the HC loop's
//! inputs (beliefs, expert panel, grouped truths).
//!
//! This is the plumbing every experiment and example shares: split the
//! crowd at θ, group items into multi-fact tasks, initialise per-task
//! beliefs from the chosen method, and expose the grouped ground truth
//! for evaluation.

use hc_core::belief::{Belief, MultiBelief};
use hc_core::init;
use hc_core::worker::{ExpertPanel, Worker};
use hc_data::{CrowdDataset, DataError, TaskGrouping};
use std::collections::HashSet;

/// How the initial belief state is built (Figure 6's axis).
#[derive(Debug, Clone, PartialEq)]
pub enum InitMethod {
    /// Equation (15): per-fact Yes-vote fractions of the preliminary
    /// workers, as a product distribution.
    CpVotes,
    /// Uniform over all observations — the NO-HC ablation of §IV-C(5).
    Uniform,
    /// Externally supplied per-item truth marginals (one per item), e.g.
    /// an aggregator's posteriors (`EBCC` in the paper's main setup).
    Marginals(Vec<f64>),
}

/// Static pipeline parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Accuracy threshold θ splitting experts from preliminary workers.
    pub theta: f64,
    /// Facts per task (5 in §IV-A).
    pub group_size: usize,
}

impl PipelineConfig {
    /// The paper's setting: θ = 0.9, 5 facts per task.
    pub fn paper_default() -> Self {
        PipelineConfig {
            theta: 0.9,
            group_size: 5,
        }
    }
}

/// Everything the HC loop needs, derived from a corpus.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// Initial per-task beliefs.
    pub beliefs: MultiBelief,
    /// The expert panel `CE`.
    pub panel: ExpertPanel,
    /// The preliminary workers `CP`.
    pub preliminary: Vec<Worker>,
    /// Per-task ground truths (evaluation only).
    pub truths: Vec<Vec<bool>>,
    /// The item ↔ (task, fact) mapping.
    pub grouping: TaskGrouping,
}

impl Prepared {
    /// Fraction of facts whose MAP label matches the ground truth —
    /// recomputed from any belief state that shares this grouping.
    pub fn accuracy(&self, beliefs: &MultiBelief) -> f64 {
        dataset_accuracy(beliefs, &self.truths)
    }

    /// The expert panel ordered best-first — the reassignment roster a
    /// [`SimulatedPlatform`](crate::platform::SimulatedPlatform) uses
    /// when its retry policy moves failed queries to the next-best
    /// expert.
    pub fn reassignment_roster(&self) -> Vec<Worker> {
        self.panel.by_accuracy_desc()
    }
}

/// Fraction of facts labeled correctly by the MAP observation of each
/// task.
pub fn dataset_accuracy(beliefs: &MultiBelief, truths: &[Vec<bool>]) -> f64 {
    debug_assert_eq!(beliefs.len(), truths.len());
    let mut correct = 0usize;
    let mut total = 0usize;
    for (belief, truth) in beliefs.tasks().iter().zip(truths) {
        let labels = belief.map_labels();
        total += truth.len();
        correct += labels.iter().zip(truth).filter(|(a, b)| a == b).count();
    }
    correct as f64 / total.max(1) as f64
}

/// Builds the HC loop inputs from a corpus.
///
/// # Errors
///
/// Fails when the θ-split leaves no experts, the corpus is not binary,
/// or the init method's marginals disagree with the item count.
pub fn prepare(
    dataset: &CrowdDataset,
    config: &PipelineConfig,
    init_method: &InitMethod,
) -> hc_data::Result<Prepared> {
    let crowd = dataset.crowd()?;
    let split = crowd.split(config.theta);
    if split.experts.is_empty() {
        return Err(DataError::InvalidConfig(format!(
            "no workers reach θ = {}",
            config.theta
        )));
    }
    let grouping = TaskGrouping::new(dataset.n_items(), config.group_size)?;
    let truths = grouping.grouped_truth(dataset)?;

    let beliefs = match init_method {
        InitMethod::CpVotes => {
            let cp_ids: HashSet<u32> = split.preliminary.iter().map(|w| w.id.0).collect();
            if cp_ids.is_empty() {
                return Err(DataError::InvalidConfig(
                    "CpVotes init needs at least one preliminary worker".into(),
                ));
            }
            let tables = grouping.vote_tables(dataset, |w| cp_ids.contains(&w))?;
            let beliefs = tables
                .iter()
                .map(init::init_from_votes)
                .collect::<hc_core::Result<Vec<Belief>>>()?;
            MultiBelief::new(beliefs)
        }
        InitMethod::Uniform => {
            // `init_uniform` (not `Belief::uniform`) so groups past the
            // dense cap auto-select the sparse representation.
            let beliefs = (0..grouping.n_tasks())
                .map(|t| init::init_uniform(grouping.task_len(t)))
                .collect::<hc_core::Result<Vec<Belief>>>()?;
            MultiBelief::new(beliefs)
        }
        InitMethod::Marginals(marginals) => {
            if marginals.len() != dataset.n_items() {
                return Err(DataError::ShapeMismatch {
                    expected: dataset.n_items(),
                    actual: marginals.len(),
                });
            }
            let beliefs = (0..grouping.n_tasks())
                .map(|t| {
                    let range = grouping.task_items(t);
                    init::init_from_marginals(&marginals[range])
                })
                .collect::<hc_core::Result<Vec<Belief>>>()?;
            MultiBelief::new(beliefs)
        }
    };

    Ok(Prepared {
        beliefs,
        panel: split.experts,
        preliminary: split.preliminary,
        truths,
        grouping,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_data::synth::{generate, SynthConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn corpus() -> CrowdDataset {
        let mut config = SynthConfig::paper_default();
        config.n_tasks = 20;
        generate(&config, &mut StdRng::seed_from_u64(1)).unwrap()
    }

    #[test]
    fn prepare_splits_crowd_and_groups_tasks() {
        let ds = corpus();
        let prepared = prepare(&ds, &PipelineConfig::paper_default(), &InitMethod::CpVotes).unwrap();
        assert_eq!(prepared.panel.len(), 2, "paper crowd has 2 experts");
        assert_eq!(prepared.preliminary.len(), 6);
        assert_eq!(prepared.beliefs.len(), 20);
        assert_eq!(prepared.truths.len(), 20);
        assert!(prepared
            .beliefs
            .tasks()
            .iter()
            .all(|b| b.num_facts() == 5));
    }

    #[test]
    fn cp_votes_init_beats_uniform_on_accuracy() {
        let ds = corpus();
        let config = PipelineConfig::paper_default();
        let voted = prepare(&ds, &config, &InitMethod::CpVotes).unwrap();
        let uniform = prepare(&ds, &config, &InitMethod::Uniform).unwrap();
        let acc_voted = voted.accuracy(&voted.beliefs);
        let acc_uniform = uniform.accuracy(&uniform.beliefs);
        assert!(
            acc_voted > acc_uniform,
            "votes {acc_voted} vs uniform {acc_uniform}"
        );
        // Uniform beliefs tie-break all labels to `false`.
        assert!(acc_voted > 0.7);
    }

    #[test]
    fn marginals_init_uses_external_posteriors() {
        let ds = corpus();
        let config = PipelineConfig::paper_default();
        // Perfect marginals -> perfect initial accuracy.
        let perfect: Vec<f64> = ds.ground_truth.iter().map(|&t| f64::from(t)).collect();
        let prepared = prepare(&ds, &config, &InitMethod::Marginals(perfect)).unwrap();
        assert_eq!(prepared.accuracy(&prepared.beliefs), 1.0);
    }

    #[test]
    fn marginal_shape_is_validated() {
        let ds = corpus();
        let config = PipelineConfig::paper_default();
        let err = prepare(&ds, &config, &InitMethod::Marginals(vec![0.5; 3]));
        assert!(err.is_err());
    }

    #[test]
    fn theta_too_high_leaves_no_experts() {
        let ds = corpus();
        let config = PipelineConfig {
            theta: 0.999,
            group_size: 5,
        };
        assert!(prepare(&ds, &config, &InitMethod::CpVotes).is_err());
    }

    #[test]
    fn theta_too_low_leaves_no_preliminary_workers() {
        let ds = corpus();
        let config = PipelineConfig {
            theta: 0.5,
            group_size: 5,
        };
        // All workers become experts; CpVotes must fail cleanly,
        // Uniform still works (the NO-HC configuration).
        assert!(prepare(&ds, &config, &InitMethod::CpVotes).is_err());
        assert!(prepare(&ds, &config, &InitMethod::Uniform).is_ok());
    }
}
