//! # hc-sim — simulated crowdsourcing platform
//!
//! The pieces that stand in for live humans in the paper's offline
//! evaluation (§IV-A): answer [`oracle`]s (recorded-answer replay and
//! error-model sampling), a deterministic [`faults`] layer that makes
//! any oracle unreliable (dropout, timeouts, burst outages, churn) plus
//! the retry policy the platform answers them with, a thread-safe
//! [`budget`] ledger for sweep harnesses, the Abraham et al.
//! [`stopping`] rule the paper cites, and the end-to-end [`pipeline`]
//! glue from a corpus to HC-loop inputs.

#![warn(missing_docs)]

pub mod budget;
pub mod crash;
pub mod corpus;
mod cursor;
pub mod estimation;
pub mod faults;
pub mod latency;
pub mod oracle;
pub mod platform;
pub mod pipeline;
pub mod stopping;

pub use budget::BudgetLedger;
pub use corpus::{diff_corpus_artifacts, CorpusArtifacts, CorpusFixture};
pub use crash::{CrashPlan, RunArtifacts, SessionFixture, TornWrite};
pub use estimation::{
    estimate_accuracies, estimate_accuracies_with_intervals, sample_gold_items, wilson_interval,
    AccuracyEstimate,
};
pub use faults::{AccuracyDecay, FaultPlan, FaultStats, FaultyOracle, RetryPolicy};
pub use latency::{LatencyModel, WallClock};
pub use oracle::{CountingOracle, ReplayOracle, SamplingOracle};
pub use platform::{PlatformStats, SimulatedPlatform};
pub use pipeline::{dataset_accuracy, prepare, InitMethod, PipelineConfig, Prepared};
pub use stopping::StoppingRule;
