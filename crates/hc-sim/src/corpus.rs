//! Multi-group corpus fixtures: a deterministic sharded corpus for the
//! cross-group scheduler's differential suites.
//!
//! Mirrors [`crate::crash::SessionFixture`] one level up: where that
//! fixture locks a single session's crash/resume behaviour to the bit,
//! [`CorpusFixture`] assembles several independent fact groups with
//! per-group sampling oracles and drives
//! [`hc_core::corpus::CorpusScheduler`] over them, producing
//! [`CorpusArtifacts`] comparable for byte equality — the stitched
//! corpus trace, the allocation schedule, every group's posterior bit
//! patterns, and the final corpus checkpoint payload.
//!
//! The chaos driver [`CorpusFixture::crash_and_resume`] reuses the
//! [`crate::crash`] machinery (embedded checkpoint frames,
//! [`TornWrite`] tail corruption, durable-prefix recovery) with the
//! corpus checkpoint kind: the process dies after a whole scheduler
//! step — a *group boundary*, where every session stands at a round
//! boundary or is finished — and a fresh process must reproduce the
//! uninterrupted run exactly.

use crate::crash::{durable_event_lines, posterior_bits, torn_prefix, CrashPlan, TornWrite};
use crate::oracle::SamplingOracle;
use hc_core::corpus::{CorpusBudget, CorpusEnv, CorpusScheduler};
use hc_core::hc::{AnswerOracle, UnitCost};
use hc_core::selection::GreedySelector;
use hc_core::session::{HcSession, ResumableOracle};
use hc_core::telemetry::checkpoint::latest_in_jsonl;
use hc_core::telemetry::{RecordingSink, TelemetryEvent};
use hc_core::{
    Belief, ExpertPanel, HcConfig, HcError, MultiBelief, Parallelism, Result, RoundRecord,
};
use hc_data::markov_joint;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-group seeds: each group's oracle and loop RNG get their own
/// stream so a cross-wired group index cannot be masked.
const ORACLE_SEED: u64 = 0xC0_FA11;
const LOOP_SEED: u64 = 0xC0_C0DE;

/// Everything a finished corpus run leaves behind, in comparable
/// (bit-exact) form.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusArtifacts {
    /// Event JSON lines in emission order (checkpoint lines excluded);
    /// for a crashed run, the durable prefix stitched to the resumed
    /// tail.
    pub event_lines: Vec<String>,
    /// The allocation order: the group index of every `GroupScheduled`
    /// event.
    pub schedule: Vec<usize>,
    /// IEEE-754 bit patterns of every posterior cell, per group per
    /// task.
    pub posterior_bits: Vec<Vec<Vec<u64>>>,
    /// The final corpus checkpoint payload (oracle cursors cleared).
    pub final_payload: String,
    /// Total scheduler steps of the corpus run.
    pub steps: u64,
    /// Total budget spent across all groups.
    pub spent: u64,
    /// Scheduler steps executed by *this* process (a resumed run counts
    /// only its own).
    pub process_steps: u64,
}

/// A deterministic four-group corpus: single- and multi-task groups of
/// different sizes and correlations competing for one pooled budget
/// through a two-expert panel. Small enough to sweep every group
/// boundary, uneven enough that the allocation order is non-trivial.
pub struct CorpusFixture {
    truths: Vec<Vec<Vec<bool>>>,
    groups: Vec<MultiBelief>,
    panel: ExpertPanel,
    config: HcConfig,
    selector: GreedySelector,
    budget: CorpusBudget,
}

impl CorpusFixture {
    /// The standard fixture under the given thread policy. Corpus runs
    /// are bit-identical across policies — exactly what
    /// `tests/corpus_determinism.rs` asserts.
    pub fn standard(parallelism: Parallelism) -> Self {
        let groups = vec![
            MultiBelief::new(vec![
                Belief::from_probs(markov_joint(5, 0.6, 0.65)).expect("group 0 joint"),
            ]),
            MultiBelief::new(vec![
                Belief::from_probs(markov_joint(4, 0.45, 0.8)).expect("group 1 joint"),
            ]),
            MultiBelief::new(vec![
                Belief::from_probs(markov_joint(3, 0.5, 0.7)).expect("group 2 joint a"),
                Belief::from_probs(markov_joint(3, 0.55, 0.6)).expect("group 2 joint b"),
            ]),
            MultiBelief::new(vec![
                Belief::from_probs(markov_joint(6, 0.52, 0.75)).expect("group 3 joint"),
            ]),
        ];
        let truths = vec![
            vec![vec![true, false, true, true, false]],
            vec![vec![false, true, false, true]],
            vec![vec![true, true, false], vec![false, false, true]],
            vec![vec![true, false, false, true, false, true]],
        ];
        let panel = ExpertPanel::from_accuracies(&[0.92, 0.88]).expect("fixture panel");
        let mut config = HcConfig::new(2, 40);
        config.parallelism = parallelism;
        CorpusFixture {
            truths,
            groups,
            panel,
            config,
            selector: GreedySelector::new(),
            budget: CorpusBudget::Pooled(26),
        }
    }

    /// Replaces the budget mode (the standard fixture pools 26 units).
    pub fn with_budget(mut self, budget: CorpusBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when the fixture holds no groups (never, for the standard
    /// fixture).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// A fresh scheduler over freshly started sessions.
    pub fn scheduler(&self) -> CorpusScheduler<'_> {
        let sessions: Vec<HcSession<'_>> = self
            .groups
            .iter()
            .map(|beliefs| {
                HcSession::start(
                    beliefs.clone(),
                    self.panel.clone(),
                    self.config.clone(),
                    &self.selector,
                    &UnitCost,
                )
                .expect("fixture session")
            })
            .collect();
        CorpusScheduler::new(sessions, self.budget)
    }

    /// Freshly seeded per-group oracles. Restore saved cursors onto
    /// them to continue a checkpointed corpus.
    pub fn oracles(&self) -> Vec<SamplingOracle<'_, StdRng>> {
        self.truths
            .iter()
            .enumerate()
            .map(|(g, truths)| {
                SamplingOracle::new(truths, StdRng::seed_from_u64(ORACLE_SEED ^ g as u64))
            })
            .collect()
    }

    /// Freshly seeded per-group loop RNGs — resumed sessions replay
    /// their logged draws against these exact streams.
    pub fn loop_rngs(&self) -> Vec<StdRng> {
        (0..self.groups.len())
            .map(|g| StdRng::seed_from_u64(LOOP_SEED ^ g as u64))
            .collect()
    }

    /// Runs the corpus start to finish with no interference — the
    /// ground truth every crashed-and-resumed run must match byte for
    /// byte.
    pub fn reference(&self) -> CorpusArtifacts {
        let mut scheduler = self.scheduler();
        let mut oracles = self.oracles();
        let mut rngs = self.loop_rngs();
        let mut sink = RecordingSink::new();
        let mut steps = 0u64;
        loop {
            let mut obs = |_: usize, _: &MultiBelief, _: &RoundRecord| {};
            let mut env = CorpusEnv {
                oracles: oracles.iter_mut().map(|o| o as &mut dyn AnswerOracle).collect(),
                rngs: rngs.iter_mut().map(|r| r as &mut dyn RngCore).collect(),
                sink: &mut sink,
                observer: &mut obs,
            };
            match scheduler.step_once(&mut env).expect("reference step") {
                Some(_) => steps += 1,
                None => break,
            }
        }
        let event_lines: Vec<String> = sink.events().iter().map(|e| e.to_json_line()).collect();
        artifacts(scheduler, event_lines, steps)
    }

    /// Runs until the plan's kill point — `kill_after_steps` whole
    /// scheduler steps, i.e. group boundaries — checkpointing the
    /// *corpus* after every step, corrupts the trace tail per the plan,
    /// then recovers exactly as a restarted process would: latest valid
    /// embedded corpus frame, truncate the trace to it, rebuild oracles
    /// and RNGs from seeds, restore every group's cursor, run to
    /// completion. Artifacts carry the stitched event stream.
    ///
    /// # Errors
    ///
    /// Any [`HcError`] surfaced by resume validation.
    pub fn crash_and_resume(&self, plan: &CrashPlan) -> Result<CorpusArtifacts> {
        // ---- Phase 1: the doomed process ----------------------------
        let mut scheduler = self.scheduler();
        let mut oracles = self.oracles();
        let mut rngs = self.loop_rngs();
        let mut sink = RecordingSink::new();
        let mut trace = String::new();
        let mut emitted = 0usize;
        let mut complete = false;
        for seq in 1..=plan.kill_after_steps {
            if complete {
                break;
            }
            complete = step_corpus(&mut scheduler, &mut oracles, &mut rngs, &mut sink)?.is_none();
            for event in &sink.events()[emitted..] {
                trace.push_str(&event.to_json_line());
                trace.push('\n');
            }
            emitted = sink.events().len();
            for (g, oracle) in oracles.iter().enumerate() {
                scheduler.set_oracle_cursor(g, Some(oracle.save_cursor()));
            }
            trace.push_str(&scheduler.checkpoint_frame(seq as u64).to_json_line());
            trace.push('\n');
        }
        self.corrupt_tail(
            plan,
            &mut trace,
            &mut scheduler,
            &mut oracles,
            &mut rngs,
            &mut sink,
            emitted,
        )?;

        // ---- Phase 2: recovery in a fresh process -------------------
        let frame = latest_in_jsonl(&trace);
        let durable_events = durable_event_lines(&trace);
        let mut scheduler = match &frame {
            Some(frame) => CorpusScheduler::from_frame(frame, &self.selector, &UnitCost)?,
            // Nothing durable: cold restart from scratch.
            None => self.scheduler(),
        };
        let mut oracles = self.oracles();
        for (g, oracle) in oracles.iter_mut().enumerate() {
            if let Some(cursor) = scheduler.session(g).state().oracle_cursor.clone() {
                oracle.restore_cursor(&cursor)?;
            }
        }
        let mut rngs = self.loop_rngs();
        let mut sink = RecordingSink::new();
        let mut steps = 0u64;
        while step_corpus(&mut scheduler, &mut oracles, &mut rngs, &mut sink)?.is_some() {
            steps += 1;
        }
        let mut event_lines = durable_events;
        event_lines.extend(sink.events().iter().map(|e| e.to_json_line()));
        Ok(artifacts(scheduler, event_lines, steps))
    }

    /// Applies the plan's tail corruption, possibly running the doomed
    /// scheduler one step further for realistic half-written bytes.
    #[allow(clippy::too_many_arguments)]
    fn corrupt_tail(
        &self,
        plan: &CrashPlan,
        trace: &mut String,
        scheduler: &mut CorpusScheduler<'_>,
        oracles: &mut [SamplingOracle<'_, StdRng>],
        rngs: &mut [StdRng],
        sink: &mut RecordingSink,
        emitted: usize,
    ) -> Result<()> {
        match plan.torn {
            TornWrite::None => {}
            TornWrite::TornEventLine => {
                let _ = step_corpus(scheduler, oracles, rngs, sink)?;
                if let Some(event) = sink.events().get(emitted) {
                    trace.push_str(&torn_prefix(&event.to_json_line(), plan.seed));
                }
            }
            TornWrite::TornCheckpointLine => {
                let _ = step_corpus(scheduler, oracles, rngs, sink)?;
                for event in &sink.events()[emitted..] {
                    trace.push_str(&event.to_json_line());
                    trace.push('\n');
                }
                for (g, oracle) in oracles.iter().enumerate() {
                    scheduler.set_oracle_cursor(g, Some(oracle.save_cursor()));
                }
                let frame = scheduler.checkpoint_frame(plan.kill_after_steps as u64 + 1);
                trace.push_str(&torn_prefix(&frame.to_json_line(), plan.seed));
            }
            TornWrite::GarbageTail => {
                trace.push_str("{\"type\":\"co\u{1}\u{2}%%%garbage");
            }
        }
        Ok(())
    }
}

/// One scheduler step with the fixture's per-group collaborators.
fn step_corpus(
    scheduler: &mut CorpusScheduler<'_>,
    oracles: &mut [SamplingOracle<'_, StdRng>],
    rngs: &mut [StdRng],
    sink: &mut RecordingSink,
) -> Result<Option<usize>> {
    let mut obs = |_: usize, _: &MultiBelief, _: &RoundRecord| {};
    let mut env = CorpusEnv {
        oracles: oracles.iter_mut().map(|o| o as &mut dyn AnswerOracle).collect(),
        rngs: rngs.iter_mut().map(|r| r as &mut dyn RngCore).collect(),
        sink,
        observer: &mut obs,
    };
    scheduler.step_once(&mut env)
}

/// Packs a completed scheduler and its event lines into comparable
/// artifacts.
fn artifacts(
    mut scheduler: CorpusScheduler<'_>,
    event_lines: Vec<String>,
    process_steps: u64,
) -> CorpusArtifacts {
    let schedule: Vec<usize> = event_lines
        .iter()
        .filter_map(|line| match TelemetryEvent::from_json_line(line) {
            Ok(TelemetryEvent::GroupScheduled { group, .. }) => Some(group),
            _ => None,
        })
        .collect();
    for g in 0..scheduler.len() {
        scheduler.set_oracle_cursor(g, None);
    }
    let posterior = (0..scheduler.len())
        .map(|g| posterior_bits(&scheduler.session(g).state().beliefs))
        .collect();
    CorpusArtifacts {
        schedule,
        posterior_bits: posterior,
        final_payload: scheduler.checkpoint_frame(0).payload,
        steps: scheduler.steps(),
        spent: scheduler.spent(),
        process_steps,
        event_lines,
    }
}

/// Convenience: asserts (by returning the mismatch as an error) that a
/// crashed-and-resumed corpus reproduced the reference bit-for-bit.
pub fn diff_corpus_artifacts(
    reference: &CorpusArtifacts,
    resumed: &CorpusArtifacts,
) -> Result<()> {
    if resumed.event_lines != reference.event_lines {
        let n = reference
            .event_lines
            .iter()
            .zip(&resumed.event_lines)
            .take_while(|(a, b)| a == b)
            .count();
        return Err(HcError::InvalidCheckpoint {
            reason: format!(
                "stitched corpus trace diverges at line {n} \
                 (reference {} lines, resumed {} lines)",
                reference.event_lines.len(),
                resumed.event_lines.len()
            ),
        });
    }
    if resumed.schedule != reference.schedule {
        return Err(HcError::InvalidCheckpoint {
            reason: format!(
                "allocation schedules diverge: reference {:?}, resumed {:?}",
                reference.schedule, resumed.schedule
            ),
        });
    }
    if resumed.posterior_bits != reference.posterior_bits {
        return Err(HcError::InvalidCheckpoint {
            reason: "posterior bit patterns diverge".to_string(),
        });
    }
    if resumed.final_payload != reference.final_payload {
        return Err(HcError::InvalidCheckpoint {
            reason: "final corpus payloads diverge".to_string(),
        });
    }
    if resumed.spent != reference.spent || resumed.steps != reference.steps {
        return Err(HcError::InvalidCheckpoint {
            reason: format!(
                "totals diverge: reference {} steps / {} spent, resumed {} / {}",
                reference.steps, reference.spent, resumed.steps, resumed.spent
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_corpus_is_reproducible_and_nontrivial() {
        let fixture = CorpusFixture::standard(Parallelism::Serial);
        let a = fixture.reference();
        let b = fixture.reference();
        assert_eq!(a, b, "two reference runs must be bit-identical");
        assert!(a.steps > 8, "fixture should schedule many steps: {}", a.steps);
        assert!(
            a.schedule.iter().collect::<std::collections::BTreeSet<_>>().len() == 4,
            "every group is scheduled at least once: {:?}",
            a.schedule
        );
        assert!(a.spent <= 26, "pooled budget respected: {}", a.spent);
    }

    #[test]
    fn reference_trace_passes_the_corpus_audit() {
        let fixture = CorpusFixture::standard(Parallelism::Serial);
        let reference = fixture.reference();
        let events: Vec<TelemetryEvent> = reference
            .event_lines
            .iter()
            .map(|l| TelemetryEvent::from_json_line(l).expect("fixture lines parse"))
            .collect();
        let report = hc_core::telemetry::audit(&events);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn clean_kill_at_a_group_boundary_resumes_byte_identically() {
        let fixture = CorpusFixture::standard(Parallelism::Serial);
        let reference = fixture.reference();
        let resumed = fixture
            .crash_and_resume(&CrashPlan::new(3, TornWrite::None, 1))
            .expect("resume");
        diff_corpus_artifacts(&reference, &resumed).expect("byte-identical resume");
        assert_eq!(
            resumed.process_steps,
            reference.steps - 3,
            "no scheduler step is repeated"
        );
    }

    #[test]
    fn kill_before_anything_durable_is_a_cold_restart() {
        let fixture = CorpusFixture::standard(Parallelism::Serial);
        let reference = fixture.reference();
        let resumed = fixture
            .crash_and_resume(&CrashPlan::new(0, TornWrite::GarbageTail, 2))
            .expect("cold restart");
        diff_corpus_artifacts(&reference, &resumed).expect("cold restart equals reference");
    }

    #[test]
    fn torn_corpus_checkpoint_falls_back_and_reemits_the_lost_step() {
        let fixture = CorpusFixture::standard(Parallelism::Serial);
        let reference = fixture.reference();
        let resumed = fixture
            .crash_and_resume(&CrashPlan::new(2, TornWrite::TornCheckpointLine, 3))
            .expect("resume");
        diff_corpus_artifacts(&reference, &resumed).expect("re-emitted events are identical");
        assert_eq!(resumed.process_steps, reference.steps - 2);
    }
}
