//! A complete simulated crowdsourcing platform: answers, latency, spend
//! and fault handling in one [`AnswerOracle`] implementation.
//!
//! Wraps any answer source with the [`LatencyModel`](crate::latency), a
//! spend meter and a [`RetryPolicy`], so an HC run against it yields not
//! just labels but the operational telemetry a real deployment would
//! report: total simulated wall-clock, per-worker answer counts, retry
//! counts, and money spent under a [`CostModel`].
//!
//! Failure handling: when the inner oracle returns
//! [`AnswerOutcome::TimedOut`] or [`AnswerOutcome::Dropped`], the
//! platform charges the retry policy's timeout wait to the simulated
//! clock and — if the policy allows — retries, paying an exponential
//! backoff per retry and optionally reassigning the query to the
//! next-best expert of a registered panel. Retries therefore cost
//! simulated wall-clock always, and money only when the policy charges
//! failed attempts.

use crate::cursor;
use crate::faults::RetryPolicy;
use crate::latency::{LatencyModel, WallClock};
use hc_core::hc::{AnswerOracle, CostModel, UnitCost};
use hc_core::selection::GlobalFact;
use hc_core::session::ResumableOracle;
use hc_core::telemetry::json::Json;
use hc_core::telemetry::{TelemetryEvent, TelemetrySink};
use hc_core::worker::ExpertPanel;
use hc_core::{AnswerOutcome, Result, Worker};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Telemetry collected by the platform during a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlatformStats {
    /// Simulated wall-clock accounting (answers only; round overheads
    /// are added by [`SimulatedPlatform::end_round`]).
    pub clock: WallClock,
    /// Answers actually delivered.
    pub answers: u64,
    /// Attempts made, including failed ones and retries.
    pub attempts: u64,
    /// Retries performed (attempts beyond the first per query).
    pub retries: u64,
    /// Attempts that timed out.
    pub timeouts: u64,
    /// Attempts that were dropped.
    pub dropouts: u64,
    /// Total cost charged under the platform's cost model.
    pub spend: u64,
    /// Delivered answers per worker id. Private so every read goes
    /// through [`Self::per_worker_count`] / [`Self::per_worker_counts`]
    /// and every write through `bump_worker` — poking the table
    /// directly is how double counting crept in.
    per_worker: Vec<u64>,
}

impl PlatformStats {
    /// Delivered answers for `worker_id`, growing the table on demand —
    /// out-of-range ids read as zero instead of panicking.
    pub fn per_worker_count(&self, worker_id: usize) -> u64 {
        self.per_worker.get(worker_id).copied().unwrap_or(0)
    }

    /// Delivered answers per worker id, indexed by id. Ids beyond the
    /// highest bumped worker are absent (read them via
    /// [`Self::per_worker_count`], which returns zero).
    pub fn per_worker_counts(&self) -> &[u64] {
        &self.per_worker
    }

    /// Clears every counter and the simulated clock so the stats block
    /// can be reused across runs on the same platform.
    pub fn reset(&mut self) {
        *self = PlatformStats::default();
    }

    /// Increments the per-worker counter, growing the table as needed.
    fn bump_worker(&mut self, worker_id: usize) {
        if self.per_worker.len() <= worker_id {
            self.per_worker.resize(worker_id + 1, 0);
        }
        self.per_worker[worker_id] += 1;
    }
}

/// An [`AnswerOracle`] that wraps another oracle and meters latency,
/// spend and retries.
pub struct SimulatedPlatform<O, C = UnitCost> {
    inner: O,
    latency: LatencyModel,
    costs: C,
    retry: RetryPolicy,
    /// Experts ordered best-first, used for reassignment retries.
    roster: Option<Vec<Worker>>,
    latency_rng: StdRng,
    stats: PlatformStats,
    /// Per-worker serial time accumulated in the current round; workers
    /// run in parallel, so the round's critical path is the slowest
    /// lane.
    worker_secs: Vec<f64>,
    /// Optional telemetry sink; retries scheduled by the platform are
    /// emitted here as `RetryScheduled` events.
    sink: Option<Box<dyn TelemetrySink>>,
    /// Causal id of the dispatch currently being answered, announced by
    /// the HC loop via [`AnswerOracle::begin_dispatch`]; stamped onto
    /// the platform's own events. Zero before the first dispatch.
    current_query_id: u64,
}

impl<O: AnswerOracle> SimulatedPlatform<O, UnitCost> {
    /// A platform around `inner` with default latency, unit pricing and
    /// no retries.
    pub fn new(inner: O, seed: u64) -> Self {
        Self::with_models(inner, LatencyModel::default(), UnitCost, seed)
    }
}

impl<O: AnswerOracle, C: CostModel> SimulatedPlatform<O, C> {
    /// A platform with explicit latency and cost models.
    pub fn with_models(inner: O, latency: LatencyModel, costs: C, seed: u64) -> Self {
        SimulatedPlatform {
            inner,
            latency,
            costs,
            retry: RetryPolicy::none(),
            roster: None,
            latency_rng: StdRng::seed_from_u64(seed),
            stats: PlatformStats::default(),
            worker_secs: Vec::new(),
            sink: None,
            current_query_id: 0,
        }
    }

    /// Sets the retry policy for failed attempts.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attaches a telemetry sink; the platform emits a `RetryScheduled`
    /// event for every retry it performs. Pass a clone of the same
    /// `SharedRecorder` the HC loop uses to interleave platform events
    /// with the loop's dispatch/delivery stream.
    pub fn with_telemetry(mut self, sink: Box<dyn TelemetrySink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Registers the expert panel reassignment retries draw from (used
    /// only when the retry policy has `reassign` set): on failure the
    /// query moves to the most accurate panel worker not yet tried.
    pub fn with_reassignment_panel(mut self, panel: &ExpertPanel) -> Self {
        self.roster = Some(panel.by_accuracy_desc());
        self
    }

    /// Closes the current round: charges the round dispatch overhead
    /// plus the round's critical path and resets the per-worker lanes.
    /// Call once per HC round (e.g. from the loop observer).
    ///
    /// Workers answer in parallel but each answers its own queries
    /// serially, so the critical path is the *maximum* over per-worker
    /// accumulated time — not an average.
    pub fn end_round(&mut self) {
        let critical_path = self.worker_secs.iter().copied().fold(0.0, f64::max);
        self.stats
            .clock
            .record_round(self.latency.round_overhead + critical_path);
        self.worker_secs.iter_mut().for_each(|s| *s = 0.0);
    }

    /// The collected telemetry.
    pub fn stats(&self) -> &PlatformStats {
        &self.stats
    }

    /// Resets the collected stats (see [`PlatformStats::reset`]) and
    /// the current round's lanes so the platform can be reused for a
    /// fresh run without rebuilding its models.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.worker_secs.clear();
    }

    /// Unwraps the platform, returning the inner oracle and final stats.
    pub fn into_parts(self) -> (O, PlatformStats) {
        (self.inner, self.stats)
    }

    /// Adds `secs` to `worker`'s lane in the current round.
    fn charge_lane(&mut self, worker_id: usize, secs: f64) {
        if self.worker_secs.len() <= worker_id {
            self.worker_secs.resize(worker_id + 1, 0.0);
        }
        self.worker_secs[worker_id] += secs;
    }

    /// The next reassignment target after `tried`, best expert first.
    fn next_target(&self, tried: &[u32]) -> Option<Worker> {
        let roster = self.roster.as_ref()?;
        roster
            .iter()
            .find(|w| !tried.contains(&w.id.0))
            .copied()
    }
}

impl<O: AnswerOracle, C: CostModel> AnswerOracle for SimulatedPlatform<O, C> {
    fn begin_dispatch(&mut self, query_id: u64) {
        self.current_query_id = query_id;
        self.inner.begin_dispatch(query_id);
    }

    fn answer(&mut self, worker: &Worker, fact: GlobalFact) -> AnswerOutcome {
        let max_attempts = self.retry.max_attempts.max(1);
        let mut target = *worker;
        let mut tried: Vec<u32> = Vec::new();
        let mut last = AnswerOutcome::Dropped;
        for attempt in 0..max_attempts {
            if attempt > 0 {
                // Backoff before each retry is dead time on the lane of
                // the worker about to be re-asked.
                self.stats.retries += 1;
                let backoff = self.retry.backoff_secs(attempt);
                self.charge_lane(target.id.index(), backoff);
                if let Some(sink) = self.sink.as_mut() {
                    if sink.enabled() {
                        sink.record(&TelemetryEvent::RetryScheduled {
                            task: fact.task,
                            fact: fact.fact.0,
                            worker: target.id.0,
                            attempt,
                            backoff_secs: backoff,
                            query_id: self.current_query_id,
                        });
                    }
                }
            }
            self.stats.attempts += 1;
            tried.push(target.id.0);
            let outcome = self.inner.answer(&target, fact);
            match outcome {
                AnswerOutcome::Answered(_) => {
                    self.stats.answers += 1;
                    self.stats.spend += self.costs.cost(&target);
                    self.stats.bump_worker(target.id.index());
                    let secs = self.latency.answer_secs(&target, &mut self.latency_rng);
                    self.charge_lane(target.id.index(), secs);
                    // Metering metadata for the crowd ledger: attributed
                    // to the worker that actually answered (under
                    // reassignment that may differ from the dispatch
                    // key the loop will stamp on AnswerDelivered).
                    if let Some(sink) = self.sink.as_mut() {
                        if sink.enabled() {
                            sink.record(&TelemetryEvent::AnswerLatency {
                                task: fact.task,
                                fact: fact.fact.0,
                                worker: target.id.0,
                                latency_secs: secs,
                                query_id: self.current_query_id,
                            });
                        }
                    }
                    return outcome;
                }
                AnswerOutcome::TimedOut => self.stats.timeouts += 1,
                AnswerOutcome::Dropped => self.stats.dropouts += 1,
            }
            // A failed attempt still blocks its lane for the wait
            // window, and costs money on platforms that pay for
            // accepted assignments.
            self.charge_lane(target.id.index(), self.retry.timeout_wait_secs);
            if self.retry.charge_failed_attempts {
                self.stats.spend += self.costs.cost(&target);
            }
            last = outcome;
            if self.retry.reassign {
                if let Some(next) = self.next_target(&tried) {
                    target = next;
                }
            }
        }
        last
    }
}

impl<O: ResumableOracle, C: CostModel> ResumableOracle for SimulatedPlatform<O, C> {
    fn save_cursor(&self) -> String {
        cursor::obj(vec![
            ("answers", cursor::num(self.stats.answers)),
            ("attempts", cursor::num(self.stats.attempts)),
            ("retries", cursor::num(self.stats.retries)),
            ("timeouts", cursor::num(self.stats.timeouts)),
            ("dropouts", cursor::num(self.stats.dropouts)),
            ("spend", cursor::num(self.stats.spend)),
            ("per_worker", cursor::u64_arr(&self.stats.per_worker)),
            ("clock_secs", cursor::bits_json(self.stats.clock.total_secs)),
            ("clock_rounds", cursor::num(self.stats.clock.rounds as u64)),
            ("worker_secs", cursor::f64_bits_arr(&self.worker_secs)),
            ("query_id", cursor::num(self.current_query_id)),
            ("inner", Json::Str(self.inner.save_cursor())),
        ])
        .to_string()
    }

    fn restore_cursor(&mut self, cursor_str: &str) -> Result<()> {
        let v = cursor::parse(cursor_str)?;
        let answers = cursor::get_u64(&v, "answers")?;
        if answers < self.stats.answers {
            return Err(hc_core::HcError::InvalidCheckpoint {
                reason: format!(
                    "platform cursor rewinds the latency RNG ({} answers behind)",
                    self.stats.answers - answers
                ),
            });
        }
        let stats = PlatformStats {
            clock: WallClock {
                total_secs: cursor::get_bits_f64(&v, "clock_secs")?,
                rounds: cursor::get_usize(&v, "clock_rounds")?,
            },
            answers,
            attempts: cursor::get_u64(&v, "attempts")?,
            retries: cursor::get_u64(&v, "retries")?,
            timeouts: cursor::get_u64(&v, "timeouts")?,
            dropouts: cursor::get_u64(&v, "dropouts")?,
            spend: cursor::get_u64(&v, "spend")?,
            per_worker: cursor::get_u64_arr(&v, "per_worker")?,
        };
        let worker_secs = cursor::get_f64_bits_arr(&v, "worker_secs")?;
        let query_id = cursor::get_u64(&v, "query_id")?;
        self.inner.restore_cursor(cursor::get_str(&v, "inner")?)?;
        // Fast-forward the latency RNG: `answer` consumes exactly one
        // jitter draw per *delivered* answer (none when jitter is zero).
        self.latency
            .skip_jitter_draws(&mut self.latency_rng, answers - self.stats.answers);
        self.stats = stats;
        self.worker_secs = worker_secs;
        self.current_query_id = query_id;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultPlan, FaultyOracle};
    use crate::oracle::SamplingOracle;
    use hc_core::hc::AccuracyCost;
    use hc_core::Answer;

    fn worker(id: u32, acc: f64) -> Worker {
        Worker::new(id, acc).unwrap()
    }

    #[test]
    fn meters_answers_spend_and_per_worker_counts() {
        let truths = vec![vec![true, false]];
        let inner = SamplingOracle::new(&truths, StdRng::seed_from_u64(1));
        let mut platform = SimulatedPlatform::with_models(
            inner,
            LatencyModel::default(),
            AccuracyCost { base: 1, scale: 2 },
            7,
        );
        let w0 = worker(0, 0.9);
        let w1 = worker(1, 0.6);
        for _ in 0..3 {
            platform.answer(&w0, GlobalFact::new(0, 0));
        }
        platform.answer(&w1, GlobalFact::new(0, 1));
        let stats = platform.stats();
        assert_eq!(stats.answers, 4);
        assert_eq!(stats.attempts, 4);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.per_worker_counts(), &[3, 1]);
        assert_eq!(stats.per_worker_count(0), 3);
        // w0 costs 1 + round(2*0.8) = 3; w1 costs 1 + round(2*0.2) = 1.
        assert_eq!(stats.spend, 3 * 3 + 1);
    }

    #[test]
    fn reset_clears_stats_for_reuse() {
        let truths = vec![vec![true]];
        let inner = SamplingOracle::new(&truths, StdRng::seed_from_u64(14));
        let mut platform = SimulatedPlatform::new(inner, 15);
        let w = worker(0, 0.9);
        platform.answer(&w, GlobalFact::new(0, 0));
        platform.end_round();
        assert!(platform.stats().answers > 0);
        platform.reset_stats();
        let stats = platform.stats();
        assert_eq!(stats, &PlatformStats::default());
        assert_eq!(stats.per_worker_counts(), &[] as &[u64]);
        assert_eq!(stats.clock.rounds, 0);
        // The platform still works after a reset.
        platform.answer(&w, GlobalFact::new(0, 0));
        assert_eq!(platform.stats().answers, 1);
    }

    #[test]
    fn platform_emits_retry_scheduled_events() {
        use hc_core::telemetry::SharedRecorder;
        struct AlwaysDead;
        impl AnswerOracle for AlwaysDead {
            fn answer(&mut self, _worker: &Worker, _fact: GlobalFact) -> AnswerOutcome {
                AnswerOutcome::TimedOut
            }
        }
        let recorder = SharedRecorder::new();
        let mut platform = SimulatedPlatform::new(AlwaysDead, 16)
            .with_retry_policy(RetryPolicy::standard())
            .with_telemetry(Box::new(recorder.clone()));
        let w = worker(3, 0.9);
        platform.begin_dispatch(42);
        platform.answer(&w, GlobalFact::new(0, 1));
        let events = recorder.snapshot();
        let retries: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, TelemetryEvent::RetryScheduled { .. }))
            .collect();
        assert_eq!(retries.len() as u64, platform.stats().retries);
        assert!(!retries.is_empty());
        match retries[0] {
            TelemetryEvent::RetryScheduled {
                task,
                fact,
                worker,
                attempt,
                backoff_secs,
                query_id,
            } => {
                assert_eq!(*task, 0);
                assert_eq!(*fact, 1);
                assert_eq!(*worker, 3);
                assert_eq!(*attempt, 1);
                assert!(*backoff_secs > 0.0);
                assert_eq!(*query_id, 42, "retry carries the causal dispatch id");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn platform_emits_answer_latency_events() {
        use hc_core::telemetry::SharedRecorder;
        // No jitter: a 0.95-accuracy worker takes exactly
        // 12 + 0.45·20 = 21 s, so the event value is checkable.
        let model = LatencyModel {
            jitter: 0.0,
            ..LatencyModel::default()
        };
        let truths = vec![vec![true]];
        let recorder = SharedRecorder::new();
        let inner = SamplingOracle::new(&truths, StdRng::seed_from_u64(3));
        let mut platform = SimulatedPlatform::with_models(inner, model, UnitCost, 17)
            .with_telemetry(Box::new(recorder.clone()));
        let w = worker(0, 0.95);
        platform.begin_dispatch(7);
        platform.answer(&w, GlobalFact::new(0, 0));
        let events = recorder.snapshot();
        let latencies: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, TelemetryEvent::AnswerLatency { .. }))
            .collect();
        assert_eq!(latencies.len(), 1);
        match latencies[0] {
            TelemetryEvent::AnswerLatency {
                task,
                fact,
                worker,
                latency_secs,
                query_id,
            } => {
                assert_eq!(*task, 0);
                assert_eq!(*fact, 0);
                assert_eq!(*worker, 0);
                assert_eq!(*latency_secs, 21.0);
                assert_eq!(*query_id, 7, "latency carries the causal dispatch id");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn telemetry_sink_does_not_perturb_the_simulation() {
        use hc_core::telemetry::SharedRecorder;
        // Same seed with and without a sink: every stat (including the
        // jittered latency clock) must be bit-identical.
        let truths = vec![vec![true, false], vec![false, true]];
        let run = |sink: bool| {
            let inner = SamplingOracle::new(&truths, StdRng::seed_from_u64(9));
            let mut platform = SimulatedPlatform::new(inner, 23)
                .with_retry_policy(RetryPolicy::standard());
            if sink {
                platform = platform.with_telemetry(Box::new(SharedRecorder::new()));
            }
            let w0 = worker(0, 0.9);
            let w1 = worker(1, 0.6);
            for round in 0..4 {
                platform.begin_dispatch(round as u64 + 1);
                platform.answer(&w0, GlobalFact::new(round % 2, 0));
                platform.begin_dispatch(round as u64 + 100);
                platform.answer(&w1, GlobalFact::new(round % 2, 1));
                platform.end_round();
            }
            platform.stats().clone()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn reassigned_latency_attributes_to_the_answering_worker() {
        use hc_core::telemetry::SharedRecorder;
        struct FirstWorkerDead;
        impl AnswerOracle for FirstWorkerDead {
            fn answer(&mut self, worker: &Worker, _fact: GlobalFact) -> AnswerOutcome {
                if worker.id.0 == 0 {
                    AnswerOutcome::TimedOut
                } else {
                    Answer::Yes.into()
                }
            }
        }
        let panel = ExpertPanel::from_accuracies(&[0.95, 0.9, 0.85]).unwrap();
        let recorder = SharedRecorder::new();
        let mut platform = SimulatedPlatform::new(FirstWorkerDead, 10)
            .with_retry_policy(RetryPolicy::standard())
            .with_reassignment_panel(&panel)
            .with_telemetry(Box::new(recorder.clone()));
        let w0 = panel.workers()[0];
        platform.begin_dispatch(5);
        let out = platform.answer(&w0, GlobalFact::new(0, 0));
        assert_eq!(out, AnswerOutcome::Answered(Answer::Yes));
        let events = recorder.snapshot();
        let lat = events
            .iter()
            .find_map(|e| match e {
                TelemetryEvent::AnswerLatency { worker, .. } => Some(*worker),
                _ => None,
            })
            .expect("latency emitted");
        // The loop's AnswerDelivered will be keyed on worker 0 (the
        // dispatch target); the latency event names who really answered.
        assert_eq!(lat, 1);
    }

    #[test]
    fn end_round_accumulates_wall_clock() {
        let truths = vec![vec![true]];
        let inner = SamplingOracle::new(&truths, StdRng::seed_from_u64(2));
        let mut platform = SimulatedPlatform::new(inner, 3);
        let w = worker(0, 0.9);
        platform.answer(&w, GlobalFact::new(0, 0));
        platform.end_round();
        assert_eq!(platform.stats().clock.rounds, 1);
        assert!(platform.stats().clock.total_secs > LatencyModel::default().round_overhead);
        // A round with no answers still pays the dispatch overhead.
        platform.end_round();
        assert_eq!(platform.stats().clock.rounds, 2);
    }

    #[test]
    fn round_critical_path_is_the_slowest_lane() {
        // Deterministic latency (no jitter): a 0.95-accuracy worker takes
        // 12 + 0.45·20 = 21 s per answer, a 0.55 one 12 + 0.05·20 = 13 s.
        let model = LatencyModel {
            jitter: 0.0,
            ..LatencyModel::default()
        };
        let truths = vec![vec![true]];
        let inner = SamplingOracle::new(&truths, StdRng::seed_from_u64(5));
        let mut platform = SimulatedPlatform::with_models(inner, model, UnitCost, 6);
        let slow = worker(0, 0.95);
        let fast = worker(1, 0.55);
        // Two queries each, in parallel lanes: critical path is the
        // slow worker's 2 × 21 s, not the sum and not an average.
        for _ in 0..2 {
            platform.answer(&slow, GlobalFact::new(0, 0));
            platform.answer(&fast, GlobalFact::new(0, 0));
        }
        platform.end_round();
        let expected = model.round_overhead + 2.0 * 21.0;
        let total = platform.stats().clock.total_secs;
        assert!(
            (total - expected).abs() < 1e-9,
            "total {total}, expected {expected}"
        );
        // Lanes reset: an immediate second round is overhead only.
        platform.end_round();
        let second = platform.stats().clock.total_secs - total;
        assert!((second - model.round_overhead).abs() < 1e-9);
    }

    #[test]
    fn passes_answers_through_unchanged() {
        let truths = vec![vec![true]];
        let inner = SamplingOracle::new(&truths, StdRng::seed_from_u64(4));
        let mut direct = SamplingOracle::new(&truths, StdRng::seed_from_u64(4));
        let mut platform = SimulatedPlatform::new(inner, 5);
        let w = worker(0, 0.8);
        for _ in 0..20 {
            assert_eq!(
                platform.answer(&w, GlobalFact::new(0, 0)),
                direct.answer(&w, GlobalFact::new(0, 0))
            );
        }
    }

    #[test]
    fn failed_attempts_cost_time_but_no_money_by_default() {
        let truths = vec![vec![true]];
        let inner = SamplingOracle::new(&truths, StdRng::seed_from_u64(6));
        let faulty = FaultyOracle::new(inner, FaultPlan::uniform(1.0, 8));
        let mut platform = SimulatedPlatform::new(faulty, 9);
        let w = worker(0, 0.9);
        let out = platform.answer(&w, GlobalFact::new(0, 0));
        assert_eq!(out, AnswerOutcome::Dropped);
        let stats = platform.stats();
        assert_eq!(stats.spend, 0, "dropped attempts are free by default");
        assert_eq!(stats.answers, 0);
        assert_eq!(stats.attempts, 1);
        assert_eq!(stats.dropouts, 1);
        platform.end_round();
        let wait = RetryPolicy::none().timeout_wait_secs;
        let expected = LatencyModel::default().round_overhead + wait;
        assert!((platform.stats().clock.total_secs - expected).abs() < 1e-9);
    }

    #[test]
    fn retries_reassign_to_the_next_best_expert() {
        // Inner oracle: worker 0 always times out, others answer Yes.
        struct FirstWorkerDead;
        impl AnswerOracle for FirstWorkerDead {
            fn answer(&mut self, worker: &Worker, _fact: GlobalFact) -> AnswerOutcome {
                if worker.id.0 == 0 {
                    AnswerOutcome::TimedOut
                } else {
                    Answer::Yes.into()
                }
            }
        }
        // Worker 0 is the most accurate, so it is also the first
        // reassignment candidate; the retry must skip it (already
        // tried) and land on worker 1.
        let panel = ExpertPanel::from_accuracies(&[0.95, 0.9, 0.85]).unwrap();
        let mut platform = SimulatedPlatform::new(FirstWorkerDead, 10)
            .with_retry_policy(RetryPolicy::standard())
            .with_reassignment_panel(&panel);
        let w0 = panel.workers()[0];
        let out = platform.answer(&w0, GlobalFact::new(0, 0));
        assert_eq!(out, AnswerOutcome::Answered(Answer::Yes));
        let stats = platform.stats();
        assert_eq!(stats.attempts, 2);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.answers, 1);
        assert_eq!(stats.per_worker_count(0), 0);
        assert_eq!(stats.per_worker_count(1), 1);
        // Out-of-range per-worker reads are zero, not a panic.
        assert_eq!(stats.per_worker_count(99), 0);
    }

    #[test]
    fn retry_backoff_and_waits_land_on_the_clock() {
        struct AlwaysDead;
        impl AnswerOracle for AlwaysDead {
            fn answer(&mut self, _worker: &Worker, _fact: GlobalFact) -> AnswerOutcome {
                AnswerOutcome::TimedOut
            }
        }
        let model = LatencyModel {
            jitter: 0.0,
            ..LatencyModel::default()
        };
        let policy = RetryPolicy {
            max_attempts: 3,
            timeout_wait_secs: 60.0,
            backoff_base_secs: 30.0,
            backoff_multiplier: 2.0,
            reassign: false,
            charge_failed_attempts: false,
        };
        let mut platform = SimulatedPlatform::with_models(AlwaysDead, model, UnitCost, 11)
            .with_retry_policy(policy);
        let w = worker(0, 0.9);
        let out = platform.answer(&w, GlobalFact::new(0, 0));
        assert_eq!(out, AnswerOutcome::TimedOut);
        let stats = platform.stats();
        assert_eq!(stats.attempts, 3);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.timeouts, 3);
        assert_eq!(stats.spend, 0);
        platform.end_round();
        // Same lane throughout: 3 waits (60 s) + backoffs 30 s and 60 s.
        let expected = model.round_overhead + 3.0 * 60.0 + 30.0 + 60.0;
        assert!((platform.stats().clock.total_secs - expected).abs() < 1e-9);
    }

    #[test]
    fn charging_failed_attempts_spends_money() {
        struct AlwaysDead;
        impl AnswerOracle for AlwaysDead {
            fn answer(&mut self, _worker: &Worker, _fact: GlobalFact) -> AnswerOutcome {
                AnswerOutcome::Dropped
            }
        }
        let policy = RetryPolicy {
            charge_failed_attempts: true,
            max_attempts: 2,
            ..RetryPolicy::none()
        };
        let mut platform = SimulatedPlatform::new(AlwaysDead, 12).with_retry_policy(policy);
        let w = worker(0, 0.9);
        platform.answer(&w, GlobalFact::new(0, 0));
        assert_eq!(platform.stats().spend, 2, "both failed attempts charged");
        assert_eq!(platform.stats().answers, 0);
    }

    /// Deterministic slice of the `tests/crowd_ledger.rs` property:
    /// the crowd ledger folded from a full instrumented HC run must
    /// agree with the platform's per-worker table, and fold to the
    /// same bytes regardless of thread count.
    #[test]
    fn crowd_ledger_agrees_with_per_worker_stats_at_any_thread_count() {
        use hc_core::belief::{Belief, MultiBelief};
        use hc_core::hc::{run_hc_costed_with_telemetry, HcConfig};
        use hc_core::selection::GreedySelector;
        use hc_core::telemetry::crowd::CrowdLedger;
        use hc_core::telemetry::SharedRecorder;
        use hc_core::worker::ExpertPanel;
        use hc_core::Parallelism;

        let run = |parallelism: Parallelism| {
            let _threads = hc_core::parallel::scoped(parallelism);
            let mut beliefs = MultiBelief::new(
                (0..6)
                    .map(|t| {
                        let base = 0.52 + 0.04 * (t % 4) as f64;
                        Belief::from_marginals(&[base, 1.0 - base]).unwrap()
                    })
                    .collect(),
            );
            let truths: Vec<Vec<bool>> =
                (0..6).map(|t| vec![t % 2 == 0, t % 3 == 0]).collect();
            let panel = ExpertPanel::from_accuracies(&[0.95, 0.85, 0.75]).unwrap();
            let recorder = SharedRecorder::new();
            let inner = SamplingOracle::new(&truths, StdRng::seed_from_u64(5));
            let plan = FaultPlan::uniform(0.2, 17)
                .with_timeouts(0.1)
                .with_accuracy_decay(12, vec![0], 0.5);
            let faulty =
                FaultyOracle::new(inner, plan).with_telemetry(Box::new(recorder.clone()));
            let mut platform = SimulatedPlatform::new(faulty, 19)
                .with_retry_policy(RetryPolicy::standard())
                .with_telemetry(Box::new(recorder.clone()));
            let mut rng = StdRng::seed_from_u64(23);
            let mut observer = |_: &MultiBelief, _: &hc_core::hc::RoundRecord| {};
            let mut sink = recorder.clone();
            run_hc_costed_with_telemetry(
                &mut beliefs,
                &panel,
                &GreedySelector::new(),
                &mut platform,
                &HcConfig::new(1, 36),
                &UnitCost,
                &mut rng,
                &mut observer,
                &mut sink,
            )
            .expect("sub-critical faults terminate");
            platform.end_round();
            let stats = platform.stats().clone();
            (CrowdLedger::from_events(&recorder.into_events()), stats)
        };

        let (ledger, stats) = run(Parallelism::Serial);
        // Per-worker delivery counts are bit-for-bit the platform's.
        let max_id = stats.per_worker_counts().len().max(
            ledger.workers.keys().map(|&w| w as usize + 1).max().unwrap_or(0),
        );
        let mut total = 0;
        for id in 0..max_id {
            let folded = ledger.workers.get(&(id as u32)).map_or(0, |w| w.delivered);
            assert_eq!(folded, stats.per_worker_count(id), "worker {id}");
            total += folded;
        }
        assert_eq!(total, stats.answers);
        // Scheduling independence: 2 and 8 threads fold identically.
        for threads in [2, 8] {
            let (other, other_stats) = run(Parallelism::Threads(threads));
            assert_eq!(other, ledger, "{threads}-thread ledger diverged");
            assert_eq!(
                other.to_json().to_string(),
                ledger.to_json().to_string(),
                "{threads}-thread ledger bytes diverged"
            );
            assert_eq!(other_stats.per_worker_counts(), stats.per_worker_counts());
        }
    }
}
