//! A complete simulated crowdsourcing platform: answers, latency and
//! spend in one [`AnswerOracle`] implementation.
//!
//! Wraps any answer source with the [`LatencyModel`](crate::latency) and
//! a spend meter, so an HC run against it yields not just labels but the
//! operational telemetry a real deployment would report: total simulated
//! wall-clock, per-worker answer counts, and money spent under a
//! [`CostModel`].

use crate::latency::{LatencyModel, WallClock};
use hc_core::hc::{AnswerOracle, CostModel, UnitCost};
use hc_core::selection::GlobalFact;
use hc_core::{Answer, Worker};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Telemetry collected by the platform during a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlatformStats {
    /// Simulated wall-clock accounting (answers only; round overheads
    /// are added by [`SimulatedPlatform::end_round`]).
    pub clock: WallClock,
    /// Total answers served.
    pub answers: u64,
    /// Total cost charged under the platform's cost model.
    pub spend: u64,
    /// Answers per worker id.
    pub per_worker: Vec<u64>,
}

/// An [`AnswerOracle`] that wraps another oracle and meters latency and
/// spend.
pub struct SimulatedPlatform<O, C = UnitCost> {
    inner: O,
    latency: LatencyModel,
    costs: C,
    latency_rng: StdRng,
    stats: PlatformStats,
    round_secs: f64,
}

impl<O: AnswerOracle> SimulatedPlatform<O, UnitCost> {
    /// A platform around `inner` with default latency and unit pricing.
    pub fn new(inner: O, seed: u64) -> Self {
        Self::with_models(inner, LatencyModel::default(), UnitCost, seed)
    }
}

impl<O: AnswerOracle, C: CostModel> SimulatedPlatform<O, C> {
    /// A platform with explicit latency and cost models.
    pub fn with_models(inner: O, latency: LatencyModel, costs: C, seed: u64) -> Self {
        SimulatedPlatform {
            inner,
            latency,
            costs,
            latency_rng: StdRng::seed_from_u64(seed),
            stats: PlatformStats::default(),
            round_secs: 0.0,
        }
    }

    /// Closes the current round: charges the round dispatch overhead and
    /// folds the round's slowest-path time into the clock. Call once per
    /// HC round (e.g. from the loop observer).
    ///
    /// Within a round workers answer in parallel; the platform
    /// approximates the critical path as the maximum per-answer time it
    /// served times the queries per worker, which the caller knows —
    /// here we conservatively use the accumulated per-round serial time
    /// divided by the number of distinct workers that answered.
    pub fn end_round(&mut self, distinct_workers: usize) {
        let parallel_secs = if distinct_workers > 0 {
            self.round_secs / distinct_workers as f64
        } else {
            0.0
        };
        self.stats
            .clock
            .record_round(self.latency.round_overhead + parallel_secs);
        self.round_secs = 0.0;
    }

    /// The collected telemetry.
    pub fn stats(&self) -> &PlatformStats {
        &self.stats
    }

    /// Unwraps the platform, returning the inner oracle and final stats.
    pub fn into_parts(self) -> (O, PlatformStats) {
        (self.inner, self.stats)
    }
}

impl<O: AnswerOracle, C: CostModel> AnswerOracle for SimulatedPlatform<O, C> {
    fn answer(&mut self, worker: &Worker, fact: GlobalFact) -> Answer {
        self.stats.answers += 1;
        self.stats.spend += self.costs.cost(worker);
        let idx = worker.id.index();
        if self.stats.per_worker.len() <= idx {
            self.stats.per_worker.resize(idx + 1, 0);
        }
        self.stats.per_worker[idx] += 1;
        self.round_secs += self.latency.answer_secs(worker, &mut self.latency_rng);
        self.inner.answer(worker, fact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SamplingOracle;
    use hc_core::hc::AccuracyCost;

    fn worker(id: u32, acc: f64) -> Worker {
        Worker::new(id, acc).unwrap()
    }

    #[test]
    fn meters_answers_spend_and_per_worker_counts() {
        let truths = vec![vec![true, false]];
        let inner = SamplingOracle::new(&truths, StdRng::seed_from_u64(1));
        let mut platform = SimulatedPlatform::with_models(
            inner,
            LatencyModel::default(),
            AccuracyCost { base: 1, scale: 2 },
            7,
        );
        let w0 = worker(0, 0.9);
        let w1 = worker(1, 0.6);
        for _ in 0..3 {
            platform.answer(&w0, GlobalFact::new(0, 0));
        }
        platform.answer(&w1, GlobalFact::new(0, 1));
        let stats = platform.stats();
        assert_eq!(stats.answers, 4);
        assert_eq!(stats.per_worker, vec![3, 1]);
        // w0 costs 1 + round(2*0.8) = 3; w1 costs 1 + round(2*0.2) = 1.
        assert_eq!(stats.spend, 3 * 3 + 1);
    }

    #[test]
    fn end_round_accumulates_wall_clock() {
        let truths = vec![vec![true]];
        let inner = SamplingOracle::new(&truths, StdRng::seed_from_u64(2));
        let mut platform = SimulatedPlatform::new(inner, 3);
        let w = worker(0, 0.9);
        platform.answer(&w, GlobalFact::new(0, 0));
        platform.end_round(1);
        assert_eq!(platform.stats().clock.rounds, 1);
        assert!(platform.stats().clock.total_secs > LatencyModel::default().round_overhead);
        // A round with no answers still pays the dispatch overhead.
        platform.end_round(0);
        assert_eq!(platform.stats().clock.rounds, 2);
    }

    #[test]
    fn passes_answers_through_unchanged() {
        let truths = vec![vec![true]];
        let inner = SamplingOracle::new(&truths, StdRng::seed_from_u64(4));
        let mut direct = SamplingOracle::new(&truths, StdRng::seed_from_u64(4));
        let mut platform = SimulatedPlatform::new(inner, 5);
        let w = worker(0, 0.8);
        for _ in 0..20 {
            assert_eq!(
                platform.answer(&w, GlobalFact::new(0, 0)),
                direct.answer(&w, GlobalFact::new(0, 0))
            );
        }
    }
}
