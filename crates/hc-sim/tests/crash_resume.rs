//! Differential crash/resume suite over the full simulated stack.
//!
//! For every step boundary of the chaos fixture, under every torn-write
//! mode, at 1/2/8 threads: kill the run, recover from the (possibly
//! corrupted) trace, and require the stitched event stream, posterior
//! bit patterns, final session payload, and stop reason to be *byte
//! identical* to an uninterrupted run. Corrupt checkpoints must be
//! rejected with typed errors and never yield partial state.

use hc_core::telemetry::checkpoint::{
    read_snapshot, write_snapshot, CheckpointError, CheckpointFrame,
};
use hc_core::{HcError, Parallelism};
use hc_sim::crash::{diff_artifacts, CrashPlan, SessionFixture, TornWrite};

const TORN_MODES: [TornWrite; 4] = [
    TornWrite::None,
    TornWrite::TornEventLine,
    TornWrite::TornCheckpointLine,
    TornWrite::GarbageTail,
];

/// Crash at every boundary under every torn-write mode and require
/// byte-identical recovery.
fn assert_crash_everywhere(parallelism: Parallelism) {
    let fixture = SessionFixture::standard(parallelism);
    let reference = fixture.reference();
    assert!(
        reference.steps > 6,
        "fixture too small to be interesting: {} steps",
        reference.steps
    );
    for kill_after in 0..=reference.steps {
        for (i, torn) in TORN_MODES.iter().enumerate() {
            let plan = CrashPlan::new(kill_after, *torn, (kill_after * 4 + i) as u64 + 1);
            let resumed = fixture
                .crash_and_resume(&plan)
                .unwrap_or_else(|e| panic!("resume failed for {plan:?}: {e}"));
            diff_artifacts(&reference, &resumed)
                .unwrap_or_else(|e| panic!("divergence for {plan:?}: {e}"));
        }
    }
}

#[test]
fn crash_at_every_boundary_serial() {
    assert_crash_everywhere(Parallelism::Serial);
}

#[test]
fn crash_at_every_boundary_two_threads() {
    assert_crash_everywhere(Parallelism::Threads(2));
}

#[test]
fn crash_at_every_boundary_eight_threads() {
    assert_crash_everywhere(Parallelism::Threads(8));
}

#[test]
fn thread_count_never_changes_the_run() {
    // The serialized payload embeds the configured thread policy, so
    // cross-policy runs are compared on their *behavioral* artifacts:
    // event stream, posterior bits, and stop reason.
    let serial = SessionFixture::standard(Parallelism::Serial).reference();
    for threads in [1, 2, 8] {
        let parallel = SessionFixture::standard(Parallelism::Threads(threads)).reference();
        assert_eq!(
            parallel.event_lines, serial.event_lines,
            "{threads}-thread event stream diverges from serial"
        );
        assert_eq!(
            parallel.posterior_bits, serial.posterior_bits,
            "{threads}-thread posteriors diverge from serial"
        );
        assert_eq!(parallel.stop, serial.stop);
        assert_eq!(parallel.steps, serial.steps);
    }
}

#[test]
fn resumed_runs_never_repeat_a_completed_step() {
    let fixture = SessionFixture::standard(Parallelism::Serial);
    let reference = fixture.reference();
    for kill_after in 0..=reference.steps {
        let resumed = fixture
            .crash_and_resume(&CrashPlan::new(kill_after, TornWrite::None, 99))
            .expect("resume");
        // A clean kill after N steps leaves exactly steps-N to do; past
        // the end, the no-op extra step still reports Finished once.
        let expected = reference.steps - kill_after.min(reference.steps - 1);
        assert_eq!(
            resumed.steps, expected,
            "kill after {kill_after}: resumed run re-executed work"
        );
    }
}

// ---- Corruption is rejected with typed errors, never partial state ----

fn sample_frame() -> CheckpointFrame {
    let fixture = SessionFixture::standard(Parallelism::Serial);
    let resumed = fixture
        .crash_and_resume(&CrashPlan::new(3, TornWrite::None, 7))
        .expect("resume");
    // Re-derive a frame from the final payload so it is a genuine
    // session checkpoint, not a toy.
    CheckpointFrame::new(
        hc_core::SESSION_CHECKPOINT_KIND,
        1,
        resumed.final_payload,
    )
}

#[test]
fn corrupted_checksum_is_a_typed_rejection() {
    let frame = sample_frame();
    let line = frame.to_json_line();
    // Flip one payload byte inside the encoded line (the word `spent`
    // only occurs in the session payload, which follows the CRC field).
    let corrupted = line.replacen("spent", "spEnt", 1);
    assert_ne!(line, corrupted, "fixture payload must contain `spent`");
    match CheckpointFrame::from_json_line(&corrupted) {
        Err(CheckpointError::ChecksumMismatch { .. }) => {}
        other => panic!("expected checksum mismatch, got {other:?}"),
    }
}

#[test]
fn version_mismatch_is_a_typed_rejection() {
    let frame = sample_frame();
    let line = frame.to_json_line().replacen("\"version\":1", "\"version\":99", 1);
    match CheckpointFrame::from_json_line(&line) {
        Err(CheckpointError::VersionMismatch { expected, found }) => {
            assert_eq!(found, 99);
            assert_ne!(expected, 99);
        }
        other => panic!("expected version mismatch, got {other:?}"),
    }
}

#[test]
fn foreign_kind_cannot_rehydrate_a_session() {
    let mut frame = sample_frame();
    frame.kind = "someone-elses-checkpoint".to_string();
    let selector = hc_core::GreedySelector::new();
    match hc_core::HcSession::from_frame(&frame, &selector, &hc_core::UnitCost) {
        Err(HcError::InvalidCheckpoint { reason }) => {
            assert!(reason.contains("kind"), "reason: {reason}");
        }
        Ok(_) => panic!("foreign frame must not rehydrate"),
        Err(e) => panic!("expected InvalidCheckpoint, got {e}"),
    }
}

#[test]
fn garbage_oracle_cursors_are_typed_rejections_and_leave_no_state() {
    use hc_core::session::ResumableOracle;
    let fixture = SessionFixture::standard(Parallelism::Serial);
    let mut stack = fixture.stack();
    let pristine = stack.save_cursor();
    for garbage in [
        "",
        "not json",
        "[1,2,3]",
        "{\"answers\":-1}",
        "{\"answers\":\"x\"}",
        "{}",
    ] {
        match stack.restore_cursor(garbage) {
            Err(HcError::InvalidCheckpoint { .. }) => {}
            Ok(()) => panic!("cursor {garbage:?} must be rejected"),
            Err(e) => panic!("cursor {garbage:?}: expected InvalidCheckpoint, got {e}"),
        }
        assert_eq!(
            stack.save_cursor(),
            pristine,
            "rejected cursor {garbage:?} must leave the oracle unchanged"
        );
    }
}

#[test]
fn oracle_cursor_rewind_is_rejected() {
    use hc_core::session::ResumableOracle;
    use hc_core::{hc::AnswerOracle, selection::GlobalFact, Worker};
    let fixture = SessionFixture::standard(Parallelism::Serial);
    let mut stack = fixture.stack();
    let w = Worker::new(0, 0.9).unwrap();
    for _ in 0..5 {
        stack.answer(&w, GlobalFact::new(0, 0));
    }
    let early = stack.save_cursor();
    for _ in 0..5 {
        stack.answer(&w, GlobalFact::new(0, 0));
    }
    match stack.restore_cursor(&early) {
        Err(HcError::InvalidCheckpoint { reason }) => {
            assert!(reason.contains("rewind"), "reason: {reason}");
        }
        other => panic!("rewinding cursor must be rejected, got {other:?}"),
    }
}

#[test]
fn cursor_round_trips_through_a_live_stack() {
    use hc_core::session::ResumableOracle;
    use hc_core::{hc::AnswerOracle, selection::GlobalFact, Worker};
    let fixture = SessionFixture::standard(Parallelism::Serial);
    // Drive one stack a while, save, then replay the same prefix on a
    // fresh stack, restore, and require identical continuations.
    let mut a = fixture.stack();
    let w = Worker::new(1, 0.9).unwrap();
    for i in 0..17u64 {
        a.begin_dispatch(i);
        a.answer(&w, GlobalFact::new(0, (i % 6) as u32));
    }
    let cursor = a.save_cursor();
    let mut b = fixture.stack();
    b.restore_cursor(&cursor).expect("restore onto fresh stack");
    assert_eq!(b.save_cursor(), cursor, "cursor round trip");
    for i in 17..40u64 {
        a.begin_dispatch(i);
        b.begin_dispatch(i);
        let fact = GlobalFact::new(1, (i % 5) as u32);
        assert_eq!(a.answer(&w, fact), b.answer(&w, fact), "continuation {i}");
    }
    assert_eq!(a.stats(), b.stats(), "metered stats after continuation");
}

// ---- Snapshot files: atomic replace, torn reads are typed ----

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("hc_crash_resume_{tag}_{}.ckpt", std::process::id()))
}

#[test]
fn snapshot_file_round_trips_a_real_session_frame() {
    let frame = sample_frame();
    let path = temp_path("roundtrip");
    write_snapshot(&path, &frame).expect("write snapshot");
    let back = read_snapshot(&path).expect("read snapshot");
    assert_eq!(back, frame);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncated_snapshot_is_torn_not_partial() {
    let frame = sample_frame();
    let path = temp_path("torn");
    let line = frame.to_json_line();
    for cut in [1, line.len() / 3, line.len() - 2] {
        std::fs::write(&path, &line[..cut]).expect("write torn bytes");
        match read_snapshot(&path) {
            Err(CheckpointError::Truncated) => {}
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
    let _ = std::fs::remove_file(&path);
}
