//! Property-based chaos: crash at an *arbitrary* step boundary, with an
//! arbitrary torn-write mode, under an *arbitrary* fault plan and thread
//! policy — recovery must always be byte-identical to the uninterrupted
//! run of the same fixture.

use hc_core::Parallelism;
use hc_sim::crash::{diff_artifacts, CrashPlan, SessionFixture, TornWrite};
use hc_sim::FaultPlan;
use proptest::prelude::*;

fn torn_strategy() -> impl Strategy<Value = TornWrite> {
    prop_oneof![
        Just(TornWrite::None),
        Just(TornWrite::TornEventLine),
        Just(TornWrite::TornCheckpointLine),
        Just(TornWrite::GarbageTail),
    ]
}

fn parallelism_strategy() -> impl Strategy<Value = Parallelism> {
    prop_oneof![
        Just(Parallelism::Serial),
        Just(Parallelism::Auto),
        (1usize..=8).prop_map(Parallelism::Threads),
    ]
}

/// An arbitrary-but-valid unreliability profile. Dropout stays below
/// the retry policy's give-up point so runs always terminate.
fn fault_plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        0.0f64..0.5,
        0.0f64..0.3,
        any::<u64>(),
        // burst: every 3..12 attempts, 0..3 attempts long (0 = none)
        3u64..12,
        0u64..3,
    )
        .prop_map(|(dropout, timeouts, seed, every, len)| {
            let mut plan = FaultPlan::uniform(dropout, seed).with_timeouts(timeouts);
            if len > 0 {
                plan = plan.with_burst(every, len);
            }
            plan
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The core theorem of the harness: for any fault plan, any kill
    /// point, any tail corruption, and any thread policy, a crashed and
    /// resumed run is indistinguishable from one that never crashed.
    #[test]
    fn crash_anywhere_resumes_byte_identically(
        plan in fault_plan_strategy(),
        parallelism in parallelism_strategy(),
        kill_frac in 0.0f64..=1.0,
        torn in torn_strategy(),
        torn_seed in 1u64..u64::MAX,
    ) {
        let fixture = SessionFixture::standard(parallelism).with_fault_plan(plan);
        let reference = fixture.reference();
        // Map the fraction onto the run's actual boundary count so every
        // case lands on a meaningful kill point (including 0 and past-end).
        let kill_after = (kill_frac * reference.steps as f64).round() as usize;
        let crash = CrashPlan::new(kill_after, torn, torn_seed);
        let resumed = fixture
            .crash_and_resume(&crash)
            .map_err(|e| TestCaseError::fail(format!("resume failed for {crash:?}: {e}")))?;
        diff_artifacts(&reference, &resumed)
            .map_err(|e| TestCaseError::fail(format!("divergence for {crash:?}: {e}")))?;
    }

    /// Fault-layer determinism under arbitrary plans: the reference run
    /// itself must be reproducible, or the differential assertions above
    /// prove nothing.
    #[test]
    fn arbitrary_fault_plans_stay_deterministic(
        plan in fault_plan_strategy(),
        parallelism in parallelism_strategy(),
    ) {
        let fixture = SessionFixture::standard(parallelism).with_fault_plan(plan);
        prop_assert_eq!(fixture.reference(), fixture.reference());
    }
}
