//! Property-based crowd-ledger conformance: for *any* fault plan and
//! *any* thread policy, the per-worker ledger folded from the telemetry
//! stream must agree bit-for-bit with the platform's own delivery
//! accounting, and the folded ledger must serialise to byte-identical
//! JSON regardless of how many threads the HC loop ran on.

use hc_core::belief::{Belief, MultiBelief};
use hc_core::hc::{run_hc_costed_with_telemetry, HcConfig, UnitCost};
use hc_core::selection::GreedySelector;
use hc_core::telemetry::crowd::CrowdLedger;
use hc_core::telemetry::{SharedRecorder, TelemetryEvent};
use hc_core::worker::ExpertPanel;
use hc_core::Parallelism;
use hc_sim::{FaultPlan, FaultyOracle, PlatformStats, RetryPolicy, SamplingOracle, SimulatedPlatform};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small heterogeneous fixture: 8 tasks × 3 facts, 5 experts.
fn fixture() -> (MultiBelief, ExpertPanel, Vec<Vec<bool>>) {
    let mut tasks = Vec::new();
    let mut truths = Vec::new();
    for t in 0..8usize {
        let base = 0.52 + 0.03 * (t % 5) as f64;
        tasks.push(Belief::from_marginals(&[base, 1.0 - base, base + 0.1]).unwrap());
        truths.push(vec![t % 2 == 0, t % 3 == 0, t % 5 != 0]);
    }
    let panel = ExpertPanel::from_accuracies(&[0.95, 0.9, 0.85, 0.8, 0.75]).unwrap();
    (MultiBelief::new(tasks), panel, truths)
}

/// Runs the HC loop over the fixture under `plan` and returns the full
/// telemetry stream plus the platform's own accounting.
fn run_fixture(
    plan: FaultPlan,
    policy: RetryPolicy,
    parallelism: Parallelism,
) -> (Vec<TelemetryEvent>, PlatformStats) {
    let _threads = hc_core::parallel::scoped(parallelism);
    let (mut beliefs, panel, truths) = fixture();
    let recorder = SharedRecorder::new();
    let inner = SamplingOracle::new(&truths, StdRng::seed_from_u64(7));
    let faulty = FaultyOracle::new(inner, plan).with_telemetry(Box::new(recorder.clone()));
    let mut platform = SimulatedPlatform::new(faulty, 11)
        .with_retry_policy(policy)
        .with_telemetry(Box::new(recorder.clone()));
    let mut rng = StdRng::seed_from_u64(13);
    let config = HcConfig::new(1, 60);
    let mut observer = |_: &MultiBelief, _: &hc_core::hc::RoundRecord| {};
    let mut sink = recorder.clone();
    run_hc_costed_with_telemetry(
        &mut beliefs,
        &panel,
        &GreedySelector::new(),
        &mut platform,
        &config,
        &UnitCost,
        &mut rng,
        &mut observer,
        &mut sink,
    )
    .expect("sub-critical fault plans terminate");
    platform.end_round();
    let stats = platform.stats().clone();
    (recorder.into_events(), stats)
}

/// An arbitrary-but-terminating unreliability profile, covering every
/// fault knob the plan exposes (dropout, timeouts, bursts, churn, and
/// mid-run accuracy decay).
fn fault_plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        0.0f64..0.5,
        0.0f64..0.3,
        any::<u64>(),
        // burst: every 3..12 attempts, 0..3 attempts long (0 = none)
        3u64..12,
        0u64..3,
        0.0f64..0.02,
        // decay: onset attempts, floor, worker-id bitmask (0 = none)
        0u64..80,
        0.5f64..0.9,
        0u32..32,
    )
        .prop_map(
            |(dropout, timeouts, seed, every, len, churn, onset, floor, mask)| {
                let mut plan = FaultPlan::uniform(dropout, seed)
                    .with_timeouts(timeouts)
                    .with_churn(churn);
                if len > 0 {
                    plan = plan.with_burst(every, len);
                }
                let decayed: Vec<u32> = (0..5).filter(|w| mask & (1 << w) != 0).collect();
                if !decayed.is_empty() {
                    plan = plan.with_accuracy_decay(onset, decayed, floor);
                }
                plan
            },
        )
}

fn policy_strategy() -> impl Strategy<Value = RetryPolicy> {
    prop_oneof![Just(RetryPolicy::none()), Just(RetryPolicy::standard())]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The ledger's per-worker delivery counts are a pure fold of the
    /// telemetry stream — they must match the platform's independently
    /// maintained per-worker table exactly, for every worker id either
    /// side knows about.
    #[test]
    fn ledger_matches_platform_per_worker_counts(
        plan in fault_plan_strategy(),
        policy in policy_strategy(),
    ) {
        let (events, stats) = run_fixture(plan, policy, Parallelism::Auto);
        let ledger = CrowdLedger::from_events(&events);
        let max_id = ledger
            .workers
            .keys()
            .map(|&w| w as usize + 1)
            .max()
            .unwrap_or(0)
            .max(stats.per_worker_counts().len());
        let mut total = 0u64;
        for id in 0..max_id {
            let folded = ledger
                .workers
                .get(&(id as u32))
                .map_or(0, |w| w.delivered);
            prop_assert_eq!(
                folded,
                stats.per_worker_count(id),
                "worker {} delivery mismatch", id
            );
            total += folded;
        }
        prop_assert_eq!(total, stats.answers, "aggregate deliveries drifted");
    }

    /// Thread-count invariance: the folded ledger (and its serialised
    /// bytes) must be identical whether the loop ran serially or on 2
    /// or 8 threads — worker attribution cannot depend on scheduling.
    #[test]
    fn ledger_bytes_are_identical_across_thread_counts(
        plan in fault_plan_strategy(),
        policy in policy_strategy(),
    ) {
        let runs = [
            Parallelism::Serial,
            Parallelism::Threads(2),
            Parallelism::Threads(8),
        ]
        .map(|p| run_fixture(plan.clone(), policy.clone(), p));
        let reference = CrowdLedger::from_events(&runs[0].0);
        let reference_json = reference.to_json().to_string();
        for (events, stats) in &runs[1..] {
            let ledger = CrowdLedger::from_events(events);
            prop_assert_eq!(&ledger, &reference, "folded ledgers diverged");
            prop_assert_eq!(
                ledger.to_json().to_string(),
                reference_json.clone(),
                "serialised ledger bytes diverged"
            );
            prop_assert_eq!(
                stats.per_worker_counts(),
                runs[0].1.per_worker_counts(),
                "platform accounting diverged"
            );
        }
    }
}
