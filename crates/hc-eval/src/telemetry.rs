//! Telemetry export for instrumented experiments.
//!
//! Experiments that run with a recording sink attach the full event log
//! to [`crate::ExperimentOutput::telemetry`]; the CLI then writes it as
//! `<name>_telemetry.jsonl` next to the JSON report and prints the
//! derived metrics summary. Keeping the raw log out of the JSON report
//! (it is `#[serde(skip)]`) keeps the report diff-friendly — the JSONL
//! file is the machine-readable trace.

use hc_core::telemetry::{MetricsRegistry, TelemetryEvent};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Writes an event log as `<name>_telemetry.jsonl` under `out_dir`
/// (created on demand) and returns the path written.
pub fn write_jsonl(
    out_dir: &Path,
    name: &str,
    events: &[TelemetryEvent],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join(format!("{name}_telemetry.jsonl"));
    let mut writer = std::io::BufWriter::new(std::fs::File::create(&path)?);
    for event in events {
        writeln!(writer, "{}", event.to_json_line())?;
    }
    writer.flush()?;
    Ok(path)
}

/// Renders the metrics summary derived from an event log — counters,
/// gauges, and per-round histograms — as a console table.
pub fn summary_table(name: &str, events: &[TelemetryEvent]) -> String {
    let metrics = MetricsRegistry::from_events(events);
    format!("# {name} — telemetry summary\n{}", metrics.render_table())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_core::telemetry::{RecordingSink, StopReason};

    fn sample() -> Vec<TelemetryEvent> {
        vec![
            TelemetryEvent::QueryDispatched {
                round: 1,
                task: 0,
                fact: 2,
                worker: 7,
                query_id: 1,
            },
            TelemetryEvent::AnswerDelivered {
                round: 1,
                task: 0,
                fact: 2,
                worker: 7,
                query_id: 1,
                answer: true,
            },
            TelemetryEvent::RunFinished {
                rounds: 1,
                budget_spent: 2,
                entropy: 0.4,
                quality: -0.4,
                reason: StopReason::BudgetExhausted,
            },
        ]
    }

    #[test]
    fn jsonl_file_round_trips() {
        let dir = std::env::temp_dir().join(format!("hc_eval_tel_{}", std::process::id()));
        let events = sample();
        let path = write_jsonl(&dir, "unit", &events).expect("write");
        assert!(path.ends_with("unit_telemetry.jsonl"));
        let text = std::fs::read_to_string(&path).expect("read");
        let back = RecordingSink::from_jsonl(&text).expect("parse");
        assert_eq!(back.into_events(), events);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_mentions_the_derived_counters() {
        let table = summary_table("unit", &sample());
        assert!(table.contains("unit — telemetry summary"));
        assert!(table.contains("queries_dispatched"));
        assert!(table.contains("answers_delivered"));
    }
}
