//! Experiment settings: corpus scale, seeds, and budget checkpoints.

use hc_core::parallel::Parallelism;
use hc_data::synth::SynthConfig;
use serde::{Deserialize, Serialize};

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Fast runs for tests and smoke checks (~20 tasks, small budgets).
    Quick,
    /// The paper's workload: 200 tasks × 5 facts, budgets up to 1000.
    Paper,
}

/// Shared settings for every figure/table runner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpSettings {
    /// The scale these settings were built for.
    pub scale: Scale,
    /// Corpus seed (generation) and run seed (selection randomness).
    pub seed: u64,
    /// Number of 5-fact tasks in the corpus.
    pub n_tasks: usize,
    /// Maximum checking budget (expert answers).
    pub budget_max: u64,
    /// Budgets at which curves are sampled.
    pub checkpoints: Vec<u64>,
    /// Dropout rates swept by the unreliable-crowd experiment
    /// (`ext-faults`).
    #[serde(default = "default_dropout_grid")]
    pub dropout_grid: Vec<f64>,
    /// Thread policy for the deterministic compute engine
    /// (`hc_core::parallel`); results are bit-identical whatever this
    /// is, so it is purely a wall-clock knob (`--threads` on the CLI).
    #[serde(default)]
    pub parallelism: Parallelism,
}

fn default_dropout_grid() -> Vec<f64> {
    vec![0.0, 0.25, 0.5, 0.75, 1.0]
}

impl ExpSettings {
    /// Settings for the given scale.
    pub fn for_scale(scale: Scale, seed: u64) -> Self {
        match scale {
            Scale::Quick => ExpSettings {
                scale,
                seed,
                n_tasks: 24,
                budget_max: 120,
                checkpoints: (0..=120).step_by(20).collect(),
                dropout_grid: default_dropout_grid(),
                parallelism: Parallelism::default(),
            },
            Scale::Paper => ExpSettings {
                scale,
                seed,
                n_tasks: 200,
                budget_max: 1000,
                checkpoints: (0..=1000).step_by(100).collect(),
                dropout_grid: vec![0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0],
                parallelism: Parallelism::default(),
            },
        }
    }

    /// The synthetic corpus configuration for these settings.
    pub fn synth_config(&self) -> SynthConfig {
        let mut config = SynthConfig::paper_default();
        config.n_tasks = self.n_tasks;
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_have_expected_checkpoints() {
        let quick = ExpSettings::for_scale(Scale::Quick, 1);
        assert_eq!(quick.checkpoints.first(), Some(&0));
        assert_eq!(quick.checkpoints.last(), Some(&120));
        let paper = ExpSettings::for_scale(Scale::Paper, 1);
        assert_eq!(paper.n_tasks, 200);
        assert_eq!(paper.checkpoints.len(), 11);
    }

    #[test]
    fn dropout_grid_spans_reliable_to_dead() {
        for scale in [Scale::Quick, Scale::Paper] {
            let s = ExpSettings::for_scale(scale, 1);
            assert_eq!(s.dropout_grid.first(), Some(&0.0));
            assert_eq!(s.dropout_grid.last(), Some(&1.0));
            assert!(s.dropout_grid.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn synth_config_follows_n_tasks() {
        let s = ExpSettings::for_scale(Scale::Quick, 1);
        assert_eq!(s.synth_config().n_tasks, 24);
        assert_eq!(s.synth_config().facts_per_task, 5);
    }
}
