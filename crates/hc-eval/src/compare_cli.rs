//! `hc-eval compare` — diff two runs of the performance observatory.
//!
//! Takes two files, each either a JSONL telemetry trace (as consumed by
//! `hc-eval inspect`) or a stamped `BENCH_*.json` document, and prints
//! the [`hc_core::telemetry::compare_str`] report: trajectory
//! divergence (trace mode), per-phase latency deltas with
//! p50/p95/p99, counter ratios, and metadata notes. With `--json` the
//! report is emitted as a single machine-readable JSON object.
//!
//! Exit code contract: unreadable or unparseable inputs fail. With
//! `--fail-on-regress PCT` the command also fails when any gated
//! latency metric of `<b>` regressed by more than `PCT` percent over
//! `<a>`; without the flag the comparison is informational and always
//! succeeds on valid input. Comparing a trace against a bench file is
//! an error — the two have no common metric space.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: hc-eval compare <a> <b> [--json] [--fail-on-regress PCT]";

/// Flags of the `compare` subcommand.
struct CompareArgs {
    a: PathBuf,
    b: PathBuf,
    json: bool,
    fail_on_regress: Option<f64>,
}

fn parse_compare_args(args: &[String]) -> Result<CompareArgs, String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut json = false;
    let mut fail_on_regress: Option<f64> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => json = true,
            "--fail-on-regress" => {
                let value = it
                    .next()
                    .ok_or_else(|| "missing value for --fail-on-regress".to_string())?;
                let pct: f64 = value
                    .parse()
                    .map_err(|_| format!("--fail-on-regress wants a percentage, got {value:?}"))?;
                if !pct.is_finite() || pct < 0.0 {
                    return Err(format!(
                        "--fail-on-regress wants a non-negative percentage, got {value:?}"
                    ));
                }
                fail_on_regress = Some(pct);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if !other.starts_with('-') && paths.len() < 2 => {
                paths.push(PathBuf::from(other));
            }
            other => return Err(format!("unknown compare flag {other:?}")),
        }
    }
    if paths.len() != 2 {
        return Err(USAGE.to_string());
    }
    let b = paths.pop().expect("two paths");
    let a = paths.pop().expect("two paths");
    Ok(CompareArgs {
        a,
        b,
        json,
        fail_on_regress,
    })
}

/// Entry point of `hc-eval compare`, called from `main` with the
/// arguments after the subcommand word. Prints the report to stdout
/// and returns the exit code per the module contract.
pub fn run_cli(args: &[String]) -> ExitCode {
    let parsed = match parse_compare_args(args) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let read = |path: &PathBuf| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
    };
    let (text_a, text_b) = match (read(&parsed.a), read(&parsed.b)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match hc_core::telemetry::compare_str(&text_a, &text_b) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if parsed.json {
        println!("{}", report.to_json(parsed.fail_on_regress));
    } else {
        println!(
            "# compare — {} vs {}",
            parsed.a.display(),
            parsed.b.display()
        );
        print!("{}", report.render(parsed.fail_on_regress));
    }
    match parsed.fail_on_regress {
        Some(pct) if !report.regressions(pct).is_empty() => {
            eprintln!(
                "compare: failing ({} metric(s) regressed by more than {pct}%)",
                report.regressions(pct).len()
            );
            ExitCode::FAILURE
        }
        _ => ExitCode::SUCCESS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn compare_arg_parsing() {
        let ok = parse_compare_args(&s(&[
            "a.jsonl",
            "b.jsonl",
            "--json",
            "--fail-on-regress",
            "25",
        ]))
        .unwrap();
        assert_eq!(ok.a, PathBuf::from("a.jsonl"));
        assert_eq!(ok.b, PathBuf::from("b.jsonl"));
        assert!(ok.json);
        assert_eq!(ok.fail_on_regress, Some(25.0));

        let plain = parse_compare_args(&s(&["a", "b"])).unwrap();
        assert!(!plain.json);
        assert_eq!(plain.fail_on_regress, None);
    }

    #[test]
    fn compare_arg_errors() {
        assert!(parse_compare_args(&[]).is_err());
        assert!(parse_compare_args(&s(&["only-one"])).is_err());
        assert!(parse_compare_args(&s(&["a", "b", "c"])).is_err());
        assert!(parse_compare_args(&s(&["a", "b", "--bogus"])).is_err());
        assert!(parse_compare_args(&s(&["a", "b", "--fail-on-regress"])).is_err());
        assert!(parse_compare_args(&s(&["a", "b", "--fail-on-regress", "lots"])).is_err());
        assert!(parse_compare_args(&s(&["a", "b", "--fail-on-regress", "-5"])).is_err());
    }
}
