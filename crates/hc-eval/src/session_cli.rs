//! `hc-eval session` — crash-safe resumable session runs from the CLI.
//!
//! ```text
//! hc-eval session run    --out DIR [--checkpoint-every N] [--threads auto|serial|N]
//!                        [--kill-after-steps M]
//! hc-eval session resume --out DIR [--checkpoint-every N]
//! ```
//!
//! `run` drives the standard chaos fixture (see
//! [`hc_sim::crash::SessionFixture`]) step by step, appending telemetry
//! to `DIR/session_trace.jsonl` and — every N steps — both embedding a
//! checkpoint line in the trace and atomically replacing the snapshot
//! `DIR/session.ckpt`. With `--kill-after-steps M` the process aborts at
//! that step boundary without flushing, exactly like a SIGKILL: buffered
//! events after the last checkpoint are lost.
//!
//! `resume` recovers the way a restarted service would: read the
//! snapshot (falling back to the latest valid checkpoint embedded in the
//! trace when the snapshot is missing or torn), truncate the trace to
//! its last durable checkpoint line, and continue the run to completion,
//! appending to the same trace. Both subcommands finish by printing a
//! `state_crc32` line over the final serialized state — a crashed and
//! resumed run prints the same digest as an uninterrupted one.

use hc_core::hc::UnitCost;
use hc_core::selection::GreedySelector;
use hc_core::session::{HcSession, ResumableOracle, SessionEnv, SessionStatus};
use hc_core::telemetry::checkpoint::{
    crc32, is_checkpoint_line, latest_in_jsonl, read_snapshot, write_snapshot, CheckpointFrame,
};
use hc_core::telemetry::FileSink;
use hc_core::{MultiBelief, Parallelism, RoundRecord};
use hc_sim::crash::SessionFixture;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const TRACE_FILE: &str = "session_trace.jsonl";
const SNAPSHOT_FILE: &str = "session.ckpt";

struct SessionArgs {
    out: PathBuf,
    checkpoint_every: usize,
    threads: Parallelism,
    kill_after_steps: Option<usize>,
}

fn parse(raw: &[String]) -> Result<SessionArgs, String> {
    let mut args = SessionArgs {
        out: PathBuf::from("results"),
        checkpoint_every: 1,
        threads: Parallelism::Auto,
        kill_after_steps: None,
    };
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--out" | "-o" => args.out = PathBuf::from(value("--out")?),
            "--checkpoint-every" => {
                args.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("bad --checkpoint-every: {e}"))?;
                if args.checkpoint_every == 0 {
                    return Err("--checkpoint-every must be at least 1".to_string());
                }
            }
            "--threads" | "-t" => {
                args.threads = match value("--threads")?.as_str() {
                    "auto" => Parallelism::Auto,
                    "serial" => Parallelism::Serial,
                    n => Parallelism::Threads(
                        n.parse().map_err(|e| format!("bad thread count: {e}"))?,
                    ),
                }
            }
            "--kill-after-steps" => {
                args.kill_after_steps = Some(
                    value("--kill-after-steps")?
                        .parse()
                        .map_err(|e| format!("bad --kill-after-steps: {e}"))?,
                )
            }
            "--help" | "-h" => {
                println!(
                    "usage: hc-eval session run    --out DIR [--checkpoint-every N] \
                     [--threads auto|serial|N] [--kill-after-steps M]\n\
                     \x20      hc-eval session resume --out DIR [--checkpoint-every N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// Entry point for `hc-eval session <run|resume> …`.
pub fn run_cli(raw: &[String]) -> ExitCode {
    let (verb, rest) = match raw.split_first() {
        Some((v, rest)) if v == "run" || v == "resume" => (v.as_str(), rest),
        _ => {
            eprintln!("error: expected `session run` or `session resume`");
            return ExitCode::FAILURE;
        }
    };
    let args = match parse(rest) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let result = if verb == "run" {
        cmd_run(&args)
    } else {
        cmd_resume(&args)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Steps `session` to completion, writing a checkpoint (embedded trace
/// line + atomic snapshot) every `checkpoint_every` steps and at the
/// finish. Optionally aborts the process at a step boundary to simulate
/// a crash. Prints the final summary.
#[allow(clippy::too_many_arguments)]
fn drive<O: ResumableOracle>(
    session: &mut HcSession<'_>,
    oracle: &mut O,
    rng: &mut impl rand::RngCore,
    sink: &mut FileSink,
    snapshot_path: &Path,
    checkpoint_every: usize,
    kill_after_steps: Option<usize>,
    mut seq: u64,
) -> Result<(), String> {
    let mut steps = 0usize;
    loop {
        if kill_after_steps == Some(steps) {
            // Simulate SIGKILL at a step boundary: no flush, no Drop —
            // everything buffered since the last checkpoint is lost.
            eprintln!("killing session after {steps} steps (simulated crash)");
            std::process::abort();
        }
        let status = {
            let mut obs = |_: &MultiBelief, _: &RoundRecord| {};
            let mut env = SessionEnv {
                oracle: &mut *oracle,
                rng,
                sink,
                observer: &mut obs,
            };
            session.step(&mut env).map_err(|e| format!("step failed: {e}"))?
        };
        steps += 1;
        let finished = matches!(status, SessionStatus::Finished(_));
        if steps.is_multiple_of(checkpoint_every) || finished {
            seq += 1;
            session.set_oracle_cursor(Some(oracle.save_cursor()));
            let frame = session.checkpoint_frame(seq);
            sink.write_checkpoint(&frame)
                .map_err(|e| format!("checkpoint write failed: {e}"))?;
            write_snapshot(snapshot_path, &frame)
                .map_err(|e| format!("snapshot write failed: {e}"))?;
        }
        if let SessionStatus::Finished(reason) = status {
            session.set_oracle_cursor(None);
            let payload = session.state().to_payload();
            println!("steps_this_process: {steps}");
            println!("rounds: {}", session.state().rounds.len());
            println!("spent: {}", session.state().spent);
            println!("stop: {reason:?}");
            println!("state_crc32: {:#010x}", crc32(payload.as_bytes()));
            return Ok(());
        }
    }
}

fn cmd_run(args: &SessionArgs) -> Result<(), String> {
    std::fs::create_dir_all(&args.out)
        .map_err(|e| format!("cannot create {}: {e}", args.out.display()))?;
    let trace_path = args.out.join(TRACE_FILE);
    let snapshot_path = args.out.join(SNAPSHOT_FILE);
    let fixture = SessionFixture::standard(args.threads);
    let mut session = fixture.session();
    let mut oracle = fixture.stack();
    let mut rng = SessionFixture::loop_rng();
    let mut sink =
        FileSink::create(&trace_path).map_err(|e| format!("cannot create trace: {e}"))?;
    drive(
        &mut session,
        &mut oracle,
        &mut rng,
        &mut sink,
        &snapshot_path,
        args.checkpoint_every,
        args.kill_after_steps,
        0,
    )?;
    finish(sink, &trace_path)
}

fn cmd_resume(args: &SessionArgs) -> Result<(), String> {
    let trace_path = args.out.join(TRACE_FILE);
    let snapshot_path = args.out.join(SNAPSHOT_FILE);
    let trace = std::fs::read_to_string(&trace_path)
        .map_err(|e| format!("cannot read {}: {e}", trace_path.display()))?;

    // Prefer the snapshot; a missing or torn one falls back to the
    // latest valid checkpoint embedded in the trace.
    let frame = match read_snapshot(&snapshot_path) {
        Ok(frame) => Some(frame),
        Err(e) => {
            eprintln!("snapshot unusable ({e}); falling back to embedded trace checkpoints");
            latest_in_jsonl(&trace)
        }
    };
    let frame =
        frame.ok_or_else(|| "no usable checkpoint found; re-run from scratch".to_string())?;

    // Truncate the trace to its last durable checkpoint line — anything
    // after it (possibly torn) is re-emitted by the resumed session.
    let lines: Vec<&str> = trace.lines().collect();
    let stitch = lines
        .iter()
        .rposition(|l| is_checkpoint_line(l) && CheckpointFrame::from_json_line(l).is_ok())
        .ok_or_else(|| "trace has no valid checkpoint line".to_string())?;
    let mut durable = lines[..=stitch].join("\n");
    durable.push('\n');
    let dropped = lines.len() - stitch - 1;
    if dropped > 0 {
        eprintln!("dropping {dropped} trace line(s) after the last durable checkpoint");
    }
    std::fs::write(&trace_path, &durable).map_err(|e| format!("cannot truncate trace: {e}"))?;

    let selector = GreedySelector::new();
    let mut session = HcSession::from_frame(&frame, &selector, &UnitCost)
        .map_err(|e| format!("checkpoint rejected: {e}"))?;
    // Rebuild the oracle stack from its fixed seeds and restore its
    // cursor; the thread policy rides in the restored config itself.
    let fixture = SessionFixture::standard(Parallelism::Auto);
    let mut oracle = fixture.stack();
    if let Some(cursor) = session.state().oracle_cursor.clone() {
        oracle
            .restore_cursor(&cursor)
            .map_err(|e| format!("oracle cursor rejected: {e}"))?;
    }
    let mut rng = SessionFixture::loop_rng();
    let mut sink =
        FileSink::append(&trace_path).map_err(|e| format!("cannot append to trace: {e}"))?;
    drive(
        &mut session,
        &mut oracle,
        &mut rng,
        &mut sink,
        &snapshot_path,
        args.checkpoint_every,
        None,
        frame.seq,
    )?;
    finish(sink, &trace_path)
}

fn finish(sink: FileSink, trace_path: &Path) -> Result<(), String> {
    // Deferred I/O errors surface here instead of being dropped.
    sink.close()
        .map_err(|e| format!("trace file error on close: {e}"))?;
    eprintln!("trace: {}", trace_path.display());
    Ok(())
}
