//! Rendering experiment outputs: fixed-width console tables and JSON
//! files for `EXPERIMENTS.md` bookkeeping.

use crate::curve::Curve;
use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// Renders a set of curves as a metric-vs-budget table, series as
/// columns — the same rows the paper's figures plot.
pub fn curves_table(title: &str, curves: &[Curve], metric: Metric) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title} [{}]", metric.name());
    let _ = write!(out, "{:>8}", "budget");
    for c in curves {
        let _ = write!(out, " {:>12}", truncate(&c.label, 12));
    }
    let _ = writeln!(out);
    // Row per budget present in the first curve.
    let budgets: Vec<u64> = curves
        .first()
        .map(|c| c.points.iter().map(|p| p.budget).collect())
        .unwrap_or_default();
    for b in budgets {
        let _ = write!(out, "{b:>8}");
        for c in curves {
            match c.at(b) {
                Some(p) => {
                    let v = match metric {
                        Metric::Accuracy => p.accuracy,
                        Metric::Quality => p.quality,
                    };
                    let _ = write!(out, " {v:>12.4}");
                }
                None => {
                    let _ = write!(out, " {:>12}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Which curve metric to tabulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Label accuracy vs ground truth.
    Accuracy,
    /// Dataset quality (negative entropy).
    Quality,
}

impl Metric {
    /// Lowercase metric name.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Accuracy => "accuracy",
            Metric::Quality => "quality",
        }
    }
}

fn truncate(s: &str, width: usize) -> String {
    if s.len() <= width {
        s.to_string()
    } else {
        format!("{}…", &s[..width.saturating_sub(1)])
    }
}

/// Renders curves as an ASCII chart (budget on x, metric on y), one
/// plotting symbol per series — so `hc-eval` literally redraws each
/// figure in the terminal next to its table.
pub fn ascii_chart(title: &str, curves: &[Curve], metric: Metric, width: usize, height: usize) -> String {
    const SYMBOLS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&', '$'];
    let mut out = String::new();
    let _ = writeln!(out, "{title} [{}]", metric.name());
    if curves.is_empty() || height < 2 || width < 2 {
        return out;
    }
    let value = |p: &crate::curve::CurvePoint| match metric {
        Metric::Accuracy => p.accuracy,
        Metric::Quality => p.quality,
    };
    let points: Vec<(usize, u64, f64)> = curves
        .iter()
        .enumerate()
        .flat_map(|(s, c)| {
            c.points
                .iter()
                .filter(|p| value(p).is_finite())
                .map(move |p| (s, p.budget, value(p)))
        })
        .collect();
    if points.is_empty() {
        return out;
    }
    let (mut lo, mut hi) = (f64::MAX, f64::MIN);
    let mut max_budget = 0u64;
    for &(_, b, v) in &points {
        lo = lo.min(v);
        hi = hi.max(v);
        max_budget = max_budget.max(b);
    }
    if hi - lo < 1e-12 {
        hi = lo + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for &(series, budget, v) in &points {
        let x = if max_budget == 0 {
            0
        } else {
            ((budget as f64 / max_budget as f64) * (width - 1) as f64).round() as usize
        };
        let y = (((v - lo) / (hi - lo)) * (height - 1) as f64).round() as usize;
        let row = height - 1 - y; // Row 0 is the top.
        let symbol = SYMBOLS[series % SYMBOLS.len()];
        // Later series overwrite earlier ones at collisions; the legend
        // disambiguates.
        grid[row][x] = symbol;
    }
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{hi:>10.3}")
        } else if i == height - 1 {
            format!("{lo:>10.3}")
        } else {
            " ".repeat(10)
        };
        let _ = writeln!(out, "{label} |{}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "{} +{}", " ".repeat(10), "-".repeat(width));
    let _ = writeln!(
        out,
        "{} 0{}budget {max_budget}",
        " ".repeat(10),
        " ".repeat(width.saturating_sub(10 + max_budget.to_string().len()))
    );
    let legend: Vec<String> = curves
        .iter()
        .enumerate()
        .map(|(s, c)| format!("{} {}", SYMBOLS[s % SYMBOLS.len()], c.label))
        .collect();
    let _ = writeln!(out, "{} {}", " ".repeat(10), legend.join("   "));
    out
}

/// Writes any serialisable result as pretty JSON under `out_dir`
/// (created on demand).
pub fn write_json<T: Serialize>(out_dir: &Path, name: &str, value: &T) -> std::io::Result<()> {
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::CurvePoint;

    fn curves() -> Vec<Curve> {
        vec![
            Curve {
                label: "HC".into(),
                points: vec![
                    CurvePoint {
                        budget: 0,
                        accuracy: 0.8,
                        quality: -10.0,
                    },
                    CurvePoint {
                        budget: 100,
                        accuracy: 0.9,
                        quality: -5.0,
                    },
                ],
            },
            Curve {
                label: "a-very-long-label-name".into(),
                points: vec![CurvePoint {
                    budget: 0,
                    accuracy: 0.7,
                    quality: -12.0,
                }],
            },
        ]
    }

    #[test]
    fn table_contains_all_series() {
        let t = curves_table("Fig X", &curves(), Metric::Accuracy);
        assert!(t.contains("Fig X"));
        assert!(t.contains("HC"));
        assert!(t.contains("0.9000"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn quality_metric_prints_quality() {
        let t = curves_table("Fig X", &curves(), Metric::Quality);
        assert!(t.contains("-5.0000"));
    }

    #[test]
    fn long_labels_are_truncated() {
        let t = curves_table("Fig X", &curves(), Metric::Accuracy);
        assert!(!t.contains("a-very-long-label-name"));
    }

    #[test]
    fn ascii_chart_renders_axes_and_legend() {
        let chart = ascii_chart("Fig X", &curves(), Metric::Accuracy, 40, 8);
        assert!(chart.contains("Fig X"));
        assert!(chart.contains("* HC"));
        assert!(chart.contains("budget 100"));
        // Max and min values label the y axis.
        assert!(chart.contains("0.900"));
        assert!(chart.contains("0.700"));
        // Some plotting symbol landed on the grid.
        assert!(chart.contains('*') && chart.contains('o'));
    }

    #[test]
    fn ascii_chart_handles_degenerate_inputs() {
        let empty = ascii_chart("E", &[], Metric::Quality, 40, 8);
        assert!(empty.contains('E'));
        // Flat curve (zero value range) must not divide by zero.
        let flat = vec![Curve {
            label: "flat".into(),
            points: vec![
                CurvePoint {
                    budget: 0,
                    accuracy: 0.5,
                    quality: -1.0,
                },
                CurvePoint {
                    budget: 10,
                    accuracy: 0.5,
                    quality: -1.0,
                },
            ],
        }];
        let chart = ascii_chart("F", &flat, Metric::Accuracy, 20, 5);
        assert!(chart.contains("flat"));
        // NaN points are skipped, not plotted.
        let nan = vec![Curve {
            label: "nan".into(),
            points: vec![CurvePoint {
                budget: 0,
                accuracy: f64::NAN,
                quality: f64::NAN,
            }],
        }];
        let chart = ascii_chart("N", &nan, Metric::Accuracy, 20, 5);
        assert!(chart.contains('N'));
    }

    #[test]
    fn write_json_round_trips() {
        let dir = std::env::temp_dir().join("hc_eval_report_test");
        write_json(&dir, "t", &vec![1, 2, 3]).unwrap();
        let content = std::fs::read_to_string(dir.join("t.json")).unwrap();
        let v: Vec<i32> = serde_json::from_str(&content).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
