//! Table III — average running time per selection round, OPT vs Approx.
//!
//! Measured on a single task with >20 facts (the paper's setup), for
//! k = 1..10. Paper shape: OPT explodes combinatorially (×10–17 per
//! step, timing out from k = 4); Approx grows much more slowly
//! (≈ ×2 per step once the answer-family enumeration dominates) and
//! completes every k.

use super::ExperimentOutput;
use crate::settings::{ExpSettings, Scale};
use hc_core::belief::{Belief, MultiBelief};
use hc_core::selection::{ExactSelector, GreedySelector, TaskSelector};
use hc_core::worker::ExpertPanel;
use hc_core::HcError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One row of Table III.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Row {
    /// Queries selected per round.
    pub k: usize,
    /// OPT wall time in seconds; `None` = timed out (or skipped after a
    /// smaller `k` already timed out).
    pub opt_secs: Option<f64>,
    /// Approx (greedy) wall time in seconds.
    pub approx_secs: f64,
}

/// Workload parameters, scale-dependent.
#[derive(Debug, Clone)]
pub struct Table3Config {
    /// Facts in the single measured task (paper: > 20).
    pub facts: usize,
    /// Expert panel accuracies.
    pub experts: Vec<f64>,
    /// The `k` values measured.
    pub ks: Vec<usize>,
    /// OPT wall-clock budget per `k`.
    pub opt_timeout: Duration,
}

impl Table3Config {
    /// Configuration for a scale.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Quick => Table3Config {
                facts: 12,
                experts: vec![0.95, 0.9],
                ks: (1..=4).collect(),
                opt_timeout: Duration::from_millis(250),
            },
            Scale::Paper => Table3Config {
                facts: 22,
                experts: vec![0.95, 0.9],
                ks: (1..=10).collect(),
                opt_timeout: Duration::from_secs(60),
            },
        }
    }
}

/// Runs the Table III measurement.
pub fn run(settings: &ExpSettings) -> ExperimentOutput {
    let config = Table3Config::for_scale(settings.scale);
    let rows = measure(&config);
    let table = render(&rows);
    ExperimentOutput {
        name: "table3".into(),
        tables: vec![table],
        curves: vec![],
        extra: Some(serde_json::to_value(&rows).expect("rows serialise")),
        telemetry: None,
    }
}

/// Measures selection wall times for every `k` in the configuration.
pub fn measure(config: &Table3Config) -> Vec<Table3Row> {
    // A correlated >20-fact task: the generator's Markov joint.
    let joint = hc_data::markov_joint(config.facts, 0.55, 0.7);
    let belief = Belief::from_probs(joint).expect("markov joint is a valid belief");
    let beliefs = MultiBelief::new(vec![belief]);
    let panel = ExpertPanel::from_accuracies(&config.experts).expect("valid accuracies");

    let candidates = hc_core::selection::global_facts(&beliefs);
    let mut rows = Vec::with_capacity(config.ks.len());
    let mut opt_dead = false;
    for &k in &config.ks {
        let mut rng = StdRng::seed_from_u64(0x7AB3);
        let greedy = GreedySelector::new();
        let t0 = Instant::now();
        let selected = greedy
            .select(&beliefs, &panel, k, &candidates, &mut rng)
            .expect("greedy selection succeeds");
        let approx_secs = t0.elapsed().as_secs_f64();
        debug_assert!(selected.len() <= k);

        let opt_secs = if opt_dead {
            None // A smaller k already timed out; larger k only grows.
        } else {
            let exact = ExactSelector::with_time_budget(config.opt_timeout);
            let t0 = Instant::now();
            match exact.select(&beliefs, &panel, k, &candidates, &mut rng) {
                Ok(_) => Some(t0.elapsed().as_secs_f64()),
                Err(HcError::Timeout) => {
                    opt_dead = true;
                    None
                }
                Err(e) => panic!("unexpected selection error: {e}"),
            }
        };
        rows.push(Table3Row {
            k,
            opt_secs,
            approx_secs,
        });
    }
    rows
}

/// Renders rows in the paper's Table III layout.
pub fn render(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Table III — running time per round (seconds)");
    let _ = writeln!(out, "{:>4} {:>14} {:>14}", "k", "OPT", "Approx");
    for r in rows {
        let opt = match r.opt_secs {
            Some(s) => format!("{s:.3}"),
            None => "timeout".to_string(),
        };
        let _ = writeln!(out, "{:>4} {:>14} {:>14.3}", r.k, opt, r.approx_secs);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_measurement_has_expected_shape() {
        let mut config = Table3Config::for_scale(Scale::Quick);
        config.ks = vec![1, 2, 3];
        config.opt_timeout = Duration::from_millis(120);
        let rows = measure(&config);
        assert_eq!(rows.len(), 3);
        // k=1: OPT completes (it only scans N candidates).
        assert!(rows[0].opt_secs.is_some(), "OPT k=1 should finish");
        // Approx always completes.
        assert!(rows.iter().all(|r| r.approx_secs > 0.0));
        // Once OPT times out it stays timed out.
        let first_timeout = rows.iter().position(|r| r.opt_secs.is_none());
        if let Some(i) = first_timeout {
            assert!(rows[i..].iter().all(|r| r.opt_secs.is_none()));
        }
    }

    #[test]
    fn render_marks_timeouts() {
        let rows = vec![
            Table3Row {
                k: 1,
                opt_secs: Some(0.5),
                approx_secs: 0.1,
            },
            Table3Row {
                k: 4,
                opt_secs: None,
                approx_secs: 0.2,
            },
        ];
        let table = render(&rows);
        assert!(table.contains("timeout"));
        assert!(table.contains("0.500"));
    }
}
