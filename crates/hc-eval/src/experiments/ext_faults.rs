//! `ext-faults` — HC under an unreliable crowd.
//!
//! Sweeps per-attempt dropout rates (0 → 1) crossed with retry policies
//! (none vs the standard 3-attempt exponential-backoff-and-reassign
//! policy) and records how gracefully the loop degrades: accuracy-vs-
//! budget curves per combination plus retry telemetry (attempts,
//! deliveries, retries, spend, simulated wall-clock).
//!
//! Invariants this experiment exhibits (and its tests assert):
//! at dropout 0 the fault layer is transparent — attempts equal
//! deliveries and nothing is retried; at dropout 1 the loop terminates
//! after its dry-round guard, spends nothing, and returns the initial
//! belief unchanged. One modelling note: when the retry policy
//! reassigns a query, the answer is produced by the substitute worker
//! but the Bayes update still weights it with the originally-assigned
//! expert's accuracy — reassignment targets are the next-best experts,
//! so the mismatch is small by construction.

use super::{build_corpus, ExperimentOutput};
use crate::curve::{Curve, CurvePoint};
use crate::report::{curves_table, Metric};
use crate::settings::ExpSettings;
use hc_core::hc::{run_hc_costed, run_hc_costed_with_telemetry, HcConfig, RoundRecord, UnitCost};
use hc_core::selection::GreedySelector;
use hc_core::telemetry::{SharedRecorder, TelemetryEvent};
use hc_sim::pipeline::dataset_accuracy;
use hc_sim::{FaultPlan, FaultyOracle, ReplayOracle, RetryPolicy, SimulatedPlatform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the dropout × retry-policy sweep.
pub fn run(settings: &ExpSettings) -> ExperimentOutput {
    let dataset = build_corpus(settings);
    let (prepared, _) = super::ext::paper_prepare(&dataset, super::fig2::THETA);

    let mut curves = Vec::new();
    let mut rows = Vec::new();
    // One representative configuration (mid-grid dropout with the
    // standard retry policy) runs fully instrumented, so the exported
    // trace shows the loop, the platform's retries, and the injected
    // faults interleaved in one ordered log.
    let representative = settings.dropout_grid.len() / 2;
    let mut captured: Option<Vec<TelemetryEvent>> = None;
    for (di, &dropout) in settings.dropout_grid.iter().enumerate() {
        for (policy_label, policy) in [
            ("no-retry", RetryPolicy::none()),
            ("retry", RetryPolicy::standard()),
        ] {
            let recorder = (di == representative && policy_label == "retry")
                .then(SharedRecorder::new);
            let mut beliefs = prepared.beliefs.clone();
            let replay = ReplayOracle::new(&dataset, prepared.grouping)
                .expect("complete synthetic corpus");
            let plan = FaultPlan::uniform(dropout, settings.seed ^ 0xE009);
            let mut faulty = FaultyOracle::new(replay, plan);
            if let Some(r) = &recorder {
                faulty = faulty.with_telemetry(Box::new(r.clone()));
            }
            let mut platform = SimulatedPlatform::new(faulty, settings.seed ^ 0xE00A)
                .with_retry_policy(policy)
                .with_reassignment_panel(&prepared.panel);
            if let Some(r) = &recorder {
                platform = platform.with_telemetry(Box::new(r.clone()));
            }
            let mut rng = StdRng::seed_from_u64(settings.seed ^ 0xE00B);
            let config = HcConfig::new(1, settings.budget_max);
            let mut points = vec![CurvePoint {
                budget: 0,
                accuracy: dataset_accuracy(&beliefs, &prepared.truths),
                quality: beliefs.quality(),
            }];
            let truths = &prepared.truths;
            let mut observer = |state: &hc_core::belief::MultiBelief, record: &RoundRecord| {
                points.push(CurvePoint {
                    budget: record.budget_spent,
                    accuracy: dataset_accuracy(state, truths),
                    quality: record.quality,
                });
            };
            let (round_trace, spent) = if let Some(mut loop_sink) = recorder.clone() {
                run_hc_costed_with_telemetry(
                    &mut beliefs,
                    &prepared.panel,
                    &GreedySelector::new(),
                    &mut platform,
                    &config,
                    &UnitCost,
                    &mut rng,
                    &mut observer,
                    &mut loop_sink,
                )
                .expect("faulty loop stays well-formed")
            } else {
                run_hc_costed(
                    &mut beliefs,
                    &prepared.panel,
                    &GreedySelector::new(),
                    &mut platform,
                    &config,
                    &UnitCost,
                    &mut rng,
                    &mut observer,
                )
                .expect("faulty loop stays well-formed")
            };
            platform.end_round();
            if let Some(r) = recorder {
                captured = Some(r.into_events());
            }
            let stats = platform.stats().clone();
            curves.push(
                Curve {
                    label: format!("d={dropout:.2} {policy_label}"),
                    points,
                }
                .sample(&settings.checkpoints),
            );
            rows.push(serde_json::json!({
                "dropout": dropout,
                "policy": policy_label,
                "accuracy": dataset_accuracy(&beliefs, &prepared.truths),
                "quality": beliefs.quality(),
                "rounds": round_trace.len(),
                "spent": spent,
                "answers": stats.answers,
                "attempts": stats.attempts,
                "retries": stats.retries,
                "timeouts": stats.timeouts,
                "dropouts": stats.dropouts,
                "platform_spend": stats.spend,
                "busy_secs": stats.clock.total_secs,
            }));
        }
    }

    let mut telemetry =
        String::from("# Extension — unreliable crowd: dropout × retry telemetry\n");
    telemetry.push_str(&format!(
        "{:>8} {:>9} {:>10} {:>8} {:>9} {:>9} {:>8} {:>8}\n",
        "dropout", "policy", "accuracy", "rounds", "attempts", "answers", "retries", "spent"
    ));
    for row in &rows {
        telemetry.push_str(&format!(
            "{:>8.2} {:>9} {:>10.4} {:>8} {:>9} {:>9} {:>8} {:>8}\n",
            row["dropout"].as_f64().unwrap_or(0.0),
            row["policy"].as_str().unwrap_or("?"),
            row["accuracy"].as_f64().unwrap_or(0.0),
            row["rounds"].as_u64().unwrap_or(0),
            row["attempts"].as_u64().unwrap_or(0),
            row["answers"].as_u64().unwrap_or(0),
            row["retries"].as_u64().unwrap_or(0),
            row["spent"].as_u64().unwrap_or(0),
        ));
    }

    let tables = vec![
        curves_table(
            "Extension — unreliable crowd: accuracy degradation vs dropout",
            &curves,
            Metric::Accuracy,
        ),
        telemetry,
    ];
    ExperimentOutput {
        name: "ext-faults".into(),
        tables,
        curves: vec![("ext_faults".into(), curves)],
        extra: Some(serde_json::Value::Array(rows)),
        telemetry: captured,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::Scale;

    fn settings() -> ExpSettings {
        ExpSettings::for_scale(Scale::Quick, 42)
    }

    #[test]
    fn sweep_covers_the_grid_and_degrades_gracefully() {
        let s = settings();
        let out = run(&s);
        let curves = &out.curves[0].1;
        assert_eq!(curves.len(), s.dropout_grid.len() * 2);
        let rows = out.extra.as_ref().unwrap().as_array().unwrap();
        assert_eq!(rows.len(), s.dropout_grid.len() * 2);
        for row in rows {
            let attempts = row["attempts"].as_u64().unwrap();
            let answers = row["answers"].as_u64().unwrap();
            assert!(attempts >= answers, "attempts can never trail deliveries");
        }
        // A reliable crowd beats a dead one.
        let first = curves[0].final_accuracy().unwrap();
        let last = curves[curves.len() - 1].final_accuracy().unwrap();
        assert!(first >= last, "dropout 0 ({first}) vs dropout 1 ({last})");
    }

    #[test]
    fn zero_dropout_is_transparent() {
        let out = run(&settings());
        let rows = out.extra.as_ref().unwrap().as_array().unwrap();
        for row in rows.iter().filter(|r| r["dropout"].as_f64() == Some(0.0)) {
            assert_eq!(row["attempts"], row["answers"], "nothing fails at dropout 0");
            assert_eq!(row["retries"].as_u64(), Some(0));
            assert_eq!(row["dropouts"].as_u64(), Some(0));
        }
    }

    #[test]
    fn full_dropout_spends_nothing_and_keeps_the_initial_belief() {
        let out = run(&settings());
        let rows = out.extra.as_ref().unwrap().as_array().unwrap();
        let dead: Vec<_> = rows
            .iter()
            .filter(|r| r["dropout"].as_f64() == Some(1.0))
            .collect();
        assert_eq!(dead.len(), 2, "both policies reach dropout 1.0");
        for row in &dead {
            assert_eq!(row["spent"].as_u64(), Some(0));
            assert_eq!(row["answers"].as_u64(), Some(0));
            assert_eq!(row["platform_spend"].as_u64(), Some(0));
            assert!(row["attempts"].as_u64().unwrap() > 0, "dispatches were tried");
        }
        // The curve stays flat at the initial accuracy.
        let curves = &out.curves[0].1;
        for c in curves.iter().filter(|c| c.label.starts_with("d=1.00")) {
            let initial = c.points[0].accuracy;
            assert!(c.points.iter().all(|p| p.accuracy == initial));
        }
    }

    #[test]
    fn representative_config_exports_an_ordered_trace() {
        let s = settings();
        let out = run(&s);
        let events = out
            .telemetry
            .as_ref()
            .expect("the mid-dropout retry run is instrumented");
        assert!(matches!(events.first(), Some(TelemetryEvent::RunStarted { .. })));
        assert!(matches!(events.last(), Some(TelemetryEvent::RunFinished { .. })));
        // The trace's retry telemetry agrees with the platform stats row
        // for the same configuration.
        let traced_retries = events
            .iter()
            .filter(|e| matches!(e, TelemetryEvent::RetryScheduled { .. }))
            .count() as u64;
        let mid = s.dropout_grid[s.dropout_grid.len() / 2];
        let rows = out.extra.as_ref().unwrap().as_array().unwrap();
        let row = rows
            .iter()
            .find(|r| r["dropout"].as_f64() == Some(mid) && r["policy"].as_str() == Some("retry"))
            .expect("instrumented row exists");
        assert_eq!(Some(traced_retries), row["retries"].as_u64());
        // Injected faults surface in the same stream.
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TelemetryEvent::FaultInjected { .. })),
            "mid-grid dropout must inject at least one fault"
        );
    }

    #[test]
    fn retry_recovers_deliveries_under_partial_dropout() {
        let s = settings();
        let out = run(&s);
        let rows = out.extra.as_ref().unwrap().as_array().unwrap();
        // Both policies run until the budget is spent, so total
        // deliveries match — but retries recover failures *within* a
        // round, so the retry policy needs fewer rounds to spend it.
        let mid = s.dropout_grid[s.dropout_grid.len() / 2];
        let row_of = |policy: &str| {
            rows.iter()
                .find(|r| {
                    r["dropout"].as_f64() == Some(mid) && r["policy"].as_str() == Some(policy)
                })
                .unwrap()
        };
        let retried = row_of("retry");
        let bare = row_of("no-retry");
        assert!(
            retried["rounds"].as_u64() <= bare["rounds"].as_u64(),
            "retry should need no more rounds than no-retry at dropout {mid}"
        );
        assert!(
            retried["retries"].as_u64().unwrap() > 0,
            "mid dropout must trigger retries"
        );
    }
}
