//! Figure 4 — varying the expert threshold θ.
//!
//! Re-splitting the crowd at θ ∈ {0.8, 0.85, 0.9} changes both who
//! initialises (CP) and who checks (CE). Paper shape: larger θ reaches
//! higher accuracy/quality from a small budget (each answer is worth
//! more), smaller θ climbs faster per round early on (more experts
//! answer per query, spending budget quicker); past ~800 budget the
//! θ = 0.9 curve plateaus and can dip slightly as wrong expert answers
//! get re-selected.

use super::{aggregator_marginals, build_corpus, ExperimentOutput};
use crate::curve::{run_hc_curve, Curve};
use crate::report::{curves_table, Metric};
use crate::settings::ExpSettings;
use hc_baselines::Ebcc;
use hc_core::selection::GreedySelector;
use hc_sim::{prepare, InitMethod, PipelineConfig, ReplayOracle};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The thresholds swept (the paper plots 0.8, 0.85, 0.9).
pub const THETAS: [f64; 3] = [0.8, 0.85, 0.9];

/// Runs the Figure 4 experiment.
pub fn run(settings: &ExpSettings) -> ExperimentOutput {
    let dataset = build_corpus(settings);

    let curves: Vec<Curve> = THETAS
        .iter()
        .map(|&theta| {
            let config = PipelineConfig {
                theta,
                group_size: 5,
            };
            let marginals = aggregator_marginals(&dataset, theta, &Ebcc::new());
            let prepared = prepare(&dataset, &config, &InitMethod::Marginals(marginals))
                .expect("thresholds within crowd accuracy range");
            let mut oracle = ReplayOracle::new(&dataset, prepared.grouping)
                .expect("complete synthetic corpus");
            let mut rng = StdRng::seed_from_u64(settings.seed ^ 0xF164);
            run_hc_curve(
                format!("theta={theta}"),
                prepared.beliefs.clone(),
                &prepared.panel,
                &GreedySelector::new(),
                &mut oracle,
                &prepared.truths,
                1,
                settings.budget_max,
                &mut rng,
            )
            .expect("HC run succeeds")
            .sample(&settings.checkpoints)
        })
        .collect();

    let tables = vec![
        curves_table("Figure 4a — varying theta", &curves, Metric::Accuracy),
        curves_table("Figure 4b — varying theta", &curves, Metric::Quality),
    ];
    ExperimentOutput {
        name: "fig4".into(),
        tables,
        curves: vec![("fig4".into(), curves)],
        extra: None,
        telemetry: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::Scale;

    #[test]
    fn fig4_quick_shape() {
        let settings = ExpSettings::for_scale(Scale::Quick, 42);
        let out = run(&settings);
        let curves = &out.curves[0].1;
        assert_eq!(curves.len(), 3);
        // Quality improves for every threshold.
        for c in curves {
            assert!(
                c.final_quality().unwrap() > c.points[0].quality,
                "{} quality should improve",
                c.label
            );
        }
        // All runs spend budget (at least one checking round happened).
        for c in curves {
            assert!(c.points.last().unwrap().budget > 0, "{}", c.label);
        }
    }
}
