//! Figure 5 — varying the checking-task selection method.
//!
//! OPT (brute force), Approx (greedy, Algorithm 2), and Random compared
//! on data quality for k = 2 and k = 3. OPT is exponential, so this runs
//! on a reduced corpus (the paper likewise restricts the comparison),
//! with the budget scaled down proportionally and curves averaged over
//! several corpus seeds — the paper's single 200-task corpus is
//! self-averaging; a 16-task subset is not, so one unlucky replayed
//! answer would otherwise dominate the figure.
//!
//! Paper shape: OPT and Approx are nearly identical (gap < 0.1 quality)
//! and clearly above Random.

use super::{aggregator_marginals, ExperimentOutput};
use crate::curve::{run_hc_curve, Curve, CurvePoint};
use crate::report::{curves_table, Metric};
use crate::settings::ExpSettings;
use hc_baselines::Ebcc;
use hc_core::selection::{ExactSelector, GreedySelector, RandomSelector, TaskSelector};
use hc_sim::{prepare, InitMethod, PipelineConfig, ReplayOracle};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The `k` values compared (OPT ≡ Approx at k = 1, so the paper starts
/// at 2).
pub const KS: [usize; 2] = [2, 3];

/// Task count of the reduced corpus (global query space `5 × this`).
const FIG5_TASKS: usize = 16;

/// Corpus seeds averaged per curve.
const FIG5_REPLICAS: u64 = 5;

/// Runs the Figure 5 experiment.
pub fn run(settings: &ExpSettings) -> ExperimentOutput {
    // Reduced corpus so OPT stays tractable, with the budget scaled
    // down proportionally (16/200 of the paper's 1000 ≈ 80) so the
    // checking pressure per fact matches the full-scale experiments.
    let mut reduced = settings.clone();
    reduced.n_tasks = FIG5_TASKS.min(settings.n_tasks);
    reduced.budget_max = settings.budget_max.min(80);
    reduced.checkpoints = (0..=reduced.budget_max).step_by(10).collect();

    let mut groups = Vec::new();
    let mut tables = Vec::new();
    for &k in &KS {
        let selectors: Vec<Box<dyn TaskSelector>> = vec![
            Box::new(ExactSelector::new()),
            Box::new(GreedySelector::new()),
            Box::new(RandomSelector::new()),
        ];
        let curves: Vec<Curve> = selectors
            .iter()
            .map(|selector| averaged_curve(&reduced, selector.as_ref(), k))
            .collect();
        tables.push(curves_table(
            &format!("Figure 5 — selection methods, k={k} (mean of {FIG5_REPLICAS} corpora)"),
            &curves,
            Metric::Quality,
        ));
        groups.push((format!("fig5_k{k}"), curves));
    }

    ExperimentOutput {
        name: "fig5".into(),
        tables,
        curves: groups,
        extra: None,
        telemetry: None,
    }
}

/// One selector's quality curve, averaged pointwise over the replica
/// corpora.
fn averaged_curve(reduced: &ExpSettings, selector: &dyn TaskSelector, k: usize) -> Curve {
    let config = PipelineConfig {
        theta: super::fig2::THETA,
        group_size: 5,
    };
    let n = reduced.checkpoints.len();
    let mut acc_sum = vec![0.0; n];
    let mut q_sum = vec![0.0; n];
    for replica in 0..FIG5_REPLICAS {
        let mut replica_settings = reduced.clone();
        replica_settings.seed = reduced.seed.wrapping_add(replica * 7919);
        let dataset = super::build_corpus(&replica_settings);
        let marginals = aggregator_marginals(&dataset, config.theta, &Ebcc::new());
        let prepared = prepare(&dataset, &config, &InitMethod::Marginals(marginals))
            .expect("reduced corpus prepares");
        let mut oracle = ReplayOracle::new(&dataset, prepared.grouping)
            .expect("complete synthetic corpus");
        let mut rng = StdRng::seed_from_u64(replica_settings.seed ^ 0xF165);
        let curve = run_hc_curve(
            selector.name(),
            prepared.beliefs.clone(),
            &prepared.panel,
            selector,
            &mut oracle,
            &prepared.truths,
            k,
            reduced.budget_max,
            &mut rng,
        )
        .expect("HC run succeeds")
        .sample(&reduced.checkpoints);
        for (i, p) in curve.points.iter().enumerate() {
            acc_sum[i] += p.accuracy;
            q_sum[i] += p.quality;
        }
    }
    let scale = 1.0 / FIG5_REPLICAS as f64;
    Curve {
        label: selector.name().to_string(),
        points: reduced
            .checkpoints
            .iter()
            .enumerate()
            .map(|(i, &budget)| CurvePoint {
                budget,
                accuracy: acc_sum[i] * scale,
                quality: q_sum[i] * scale,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::Scale;

    #[test]
    fn fig5_quick_shape() {
        let settings = ExpSettings::for_scale(Scale::Quick, 42);
        let out = run(&settings);
        assert_eq!(out.curves.len(), 2, "k=2 and k=3 groups");
        for (group, curves) in &out.curves {
            assert_eq!(curves.len(), 3, "{group}: OPT, Approx, Random");
            let opt = curves[0].final_quality().unwrap();
            let approx = curves[1].final_quality().unwrap();
            let random = curves[2].final_quality().unwrap();
            // Paper shape: Approx tracks OPT closely; both at least match
            // Random on the small averaged corpus.
            assert!(
                (opt - approx).abs() < 1.0,
                "{group}: OPT {opt} vs Approx {approx} diverged"
            );
            assert!(
                approx >= random - 0.5,
                "{group}: Approx {approx} should not trail Random {random}"
            );
        }
    }

    #[test]
    fn fig5_curves_share_budget_grid() {
        let settings = ExpSettings::for_scale(Scale::Quick, 7);
        let out = run(&settings);
        for (_, curves) in &out.curves {
            let grid: Vec<u64> = curves[0].points.iter().map(|p| p.budget).collect();
            for c in curves {
                let g: Vec<u64> = c.points.iter().map(|p| p.budget).collect();
                assert_eq!(g, grid);
            }
        }
    }
}
