//! One runner per table/figure of the paper's evaluation (§IV).
//!
//! | Runner | Paper result | What it shows |
//! |---|---|---|
//! | [`fig2`] | Figure 2 | HC vs 8 aggregation baselines, accuracy vs budget |
//! | [`fig3`] | Figure 3 | varying `k` (queries per round) |
//! | [`fig4`] | Figure 4 | varying θ (expert threshold) |
//! | [`fig5`] | Figure 5 | OPT vs Approx vs Random selection |
//! | [`fig6`] | Figure 6 | varying belief initialisation (8 aggregators) |
//! | [`fig7`] | Figure 7 | HC vs flat checking from a uniform belief |
//! | [`table3`] | Table III | per-round selection runtime, OPT vs Approx |
//!
//! Every runner consumes [`crate::settings::ExpSettings`]
//! and returns an [`ExperimentOutput`] with rendered tables plus the raw
//! curves for JSON export.

pub mod ext;
pub mod ext_drift;
pub mod ext_faults;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod table3;

use crate::curve::Curve;
use crate::settings::ExpSettings;
use hc_baselines::Aggregator;
use hc_core::belief::MultiBelief;
use hc_core::corpus::{CorpusBudget, CorpusEnv, CorpusScheduler};
use hc_core::hc::{AnswerOracle, CostModel, HcConfig, RoundRecord};
use hc_core::selection::TaskSelector;
use hc_core::session::HcSession;
use hc_core::telemetry::{NullSink, TelemetryEvent};
use hc_core::worker::ExpertPanel;
use hc_data::{AnswerEntry, AnswerMatrix, CrowdDataset};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::Serialize;

/// Rendered result of one experiment.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentOutput {
    /// Experiment id (`fig2` … `table3`).
    pub name: String,
    /// Console tables, ready to print.
    pub tables: Vec<String>,
    /// Raw curve groups for JSON export, keyed by group name.
    pub curves: Vec<(String, Vec<Curve>)>,
    /// Non-curve raw results (e.g. Table III timing rows).
    pub extra: Option<serde_json::Value>,
    /// Full telemetry event log, for experiments that ran instrumented.
    ///
    /// Skipped in the JSON report — the CLI writes it separately as
    /// `<name>_telemetry.jsonl` (see [`crate::telemetry`]).
    #[serde(skip)]
    pub telemetry: Option<Vec<TelemetryEvent>>,
}

impl ExperimentOutput {
    /// Prints all tables to stdout.
    pub fn print(&self) {
        for t in &self.tables {
            println!("{t}");
        }
    }
}

/// Generates the experiment corpus for the settings (deterministic in
/// the seed).
pub fn build_corpus(settings: &ExpSettings) -> CrowdDataset {
    let mut rng = StdRng::seed_from_u64(settings.seed);
    hc_data::synth::generate(&settings.synth_config(), &mut rng)
        .expect("paper-default synth config is valid")
}

/// Worker ids at or above the accuracy threshold θ.
pub fn expert_ids(dataset: &CrowdDataset, theta: f64) -> Vec<u32> {
    dataset
        .worker_accuracies
        .iter()
        .enumerate()
        .filter(|(_, &a)| a >= theta)
        .map(|(w, _)| w as u32)
        .collect()
}

/// The preliminary-worker-only answer matrix (everything below θ).
pub fn cp_matrix(dataset: &CrowdDataset, theta: f64) -> AnswerMatrix {
    let experts = expert_ids(dataset, theta);
    dataset
        .matrix
        .filter_workers(|w| !experts.contains(&w))
}

/// Runs an aggregator on the CP-only matrix and returns its per-item
/// `P(true)` marginals — the belief initialisation of Figure 6 and the
/// main pipeline (§IV-A initialises with EBCC).
pub fn aggregator_marginals(
    dataset: &CrowdDataset,
    theta: f64,
    aggregator: &dyn Aggregator,
) -> Vec<f64> {
    let matrix = cp_matrix(dataset, theta);
    aggregator
        .aggregate(&matrix)
        .expect("complete CP matrix aggregates")
        .binary_marginals()
}

/// The CP answers plus the first `budget` expert answers in
/// `(item, expert)` order — how the aggregation baselines consume the
/// same human-labor budget HC spends on checking (Figure 2's x-axis).
pub fn augmented_matrix(dataset: &CrowdDataset, theta: f64, budget: u64) -> AnswerMatrix {
    let order: Vec<usize> = (0..dataset.matrix.n_items()).collect();
    augmented_matrix_in_order(dataset, theta, budget, &order)
}

/// Like [`augmented_matrix`], but expert labels go to the items where
/// the preliminary crowd *disagrees most* (highest vote entropy) first —
/// an uncertainty-targeted allocation that isolates how much of HC's
/// advantage is targeting vs. Bayesian aggregation (the `ext-allocation`
/// ablation).
pub fn augmented_matrix_targeted(dataset: &CrowdDataset, theta: f64, budget: u64) -> AnswerMatrix {
    let cp = cp_matrix(dataset, theta);
    let mut scored: Vec<(f64, usize)> = cp
        .vote_counts()
        .iter()
        .enumerate()
        .map(|(item, counts)| {
            let total: u32 = counts.iter().sum();
            let h = if total == 0 {
                f64::MAX // Unvoted items are maximally urgent.
            } else {
                -counts
                    .iter()
                    .filter(|&&c| c > 0)
                    .map(|&c| {
                        let p = c as f64 / total as f64;
                        p * p.ln()
                    })
                    .sum::<f64>()
            };
            (h, item)
        })
        .collect();
    // Most uncertain first; ties by item index for determinism.
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.1.cmp(&b.1))
    });
    let order: Vec<usize> = scored.into_iter().map(|(_, item)| item).collect();
    augmented_matrix_in_order(dataset, theta, budget, &order)
}

/// One experiment variant destined for the corpus scheduler: its own
/// starting beliefs, loop configuration, and cost model. The panel and
/// selector are shared across variants (see [`run_variant_corpus`]).
pub struct VariantRun<'a> {
    /// Starting beliefs for this variant.
    pub beliefs: MultiBelief,
    /// Loop configuration (budget, k, repeat policy, …).
    pub config: HcConfig,
    /// Cost model charged per expert answer.
    pub costs: &'a dyn CostModel,
}

/// Drives several independent experiment variants through one
/// [`CorpusScheduler`] in [`CorpusBudget::PerGroup`] mode — the serial
/// "run each variant to completion" loops the `ext-*` experiments used
/// to hand-roll.
///
/// Per-group mode leaves every session's own budget untouched, so each
/// variant's rounds, posteriors, and spend are bit-identical to a
/// standalone [`hc_core::hc::run_hc_costed`] call with the same
/// collaborators; only the *interleaving* changes (the scheduler
/// advances whichever variant currently has the highest marginal
/// entropy gain). `corpus_scheduler_reproduces_direct_runs_bit_for_bit`
/// in [`ext`]'s tests locks that equivalence.
///
/// `oracles[g]` and `rngs[g]` serve variant `g`; the observer receives
/// `(variant index, beliefs after the round, round record)`. Returns
/// each variant's final beliefs, round records, and spend, in input
/// order.
pub fn run_variant_corpus<O, R, F>(
    panel: &ExpertPanel,
    selector: &dyn TaskSelector,
    variants: Vec<VariantRun<'_>>,
    oracles: &mut [O],
    rngs: &mut [R],
    mut observer: F,
) -> hc_core::Result<Vec<(MultiBelief, Vec<RoundRecord>, u64)>>
where
    O: AnswerOracle,
    R: RngCore,
    F: FnMut(usize, &MultiBelief, &RoundRecord),
{
    let sessions = variants
        .into_iter()
        .map(|v| HcSession::start(v.beliefs, panel.clone(), v.config, selector, v.costs))
        .collect::<hc_core::Result<Vec<_>>>()?;
    let mut scheduler = CorpusScheduler::new(sessions, CorpusBudget::PerGroup);
    let mut sink = NullSink;
    let mut env = CorpusEnv {
        oracles: oracles
            .iter_mut()
            .map(|o| o as &mut dyn AnswerOracle)
            .collect(),
        rngs: rngs.iter_mut().map(|r| r as &mut dyn RngCore).collect(),
        sink: &mut sink,
        observer: &mut observer,
    };
    scheduler.run(&mut env)?;
    drop(env);
    Ok(scheduler
        .into_sessions()
        .into_iter()
        .map(HcSession::into_parts)
        .collect())
}

fn augmented_matrix_in_order(
    dataset: &CrowdDataset,
    theta: f64,
    budget: u64,
    item_order: &[usize],
) -> AnswerMatrix {
    let experts = expert_ids(dataset, theta);
    let mut entries: Vec<AnswerEntry> = dataset
        .matrix
        .entries()
        .iter()
        .copied()
        .filter(|e| !experts.contains(&e.worker))
        .collect();
    let mut remaining = budget;
    'outer: for &item in item_order {
        for e in dataset.matrix.by_item(item) {
            if experts.contains(&e.worker) {
                if remaining == 0 {
                    break 'outer;
                }
                entries.push(*e);
                remaining -= 1;
            }
        }
    }
    AnswerMatrix::new(
        dataset.matrix.n_items(),
        dataset.matrix.n_workers(),
        dataset.matrix.n_classes(),
        entries,
    )
    .expect("augmentation preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::{ExpSettings, Scale};

    fn settings() -> ExpSettings {
        ExpSettings::for_scale(Scale::Quick, 7)
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = build_corpus(&settings());
        let b = build_corpus(&settings());
        assert_eq!(a, b);
    }

    #[test]
    fn expert_split_matches_profile() {
        let ds = build_corpus(&settings());
        let experts = expert_ids(&ds, 0.9);
        assert_eq!(experts.len(), 2, "paper crowd profile has 2 experts");
        let cp = cp_matrix(&ds, 0.9);
        assert!(cp.entries().iter().all(|e| !experts.contains(&e.worker)));
        assert_eq!(cp.len(), ds.matrix.len() * 6 / 8);
    }

    #[test]
    fn augmented_matrix_adds_exactly_budget_expert_answers() {
        let ds = build_corpus(&settings());
        let base = cp_matrix(&ds, 0.9);
        for budget in [0u64, 5, 17] {
            let aug = augmented_matrix(&ds, 0.9, budget);
            assert_eq!(aug.len(), base.len() + budget as usize);
        }
        // Budget beyond available expert answers saturates.
        let aug = augmented_matrix(&ds, 0.9, u64::MAX);
        assert_eq!(aug.len(), ds.matrix.len());
    }

    #[test]
    fn aggregator_marginals_have_item_shape() {
        let ds = build_corpus(&settings());
        let mv = hc_baselines::MajorityVote::new();
        let marginals = aggregator_marginals(&ds, 0.9, &mv);
        assert_eq!(marginals.len(), ds.n_items());
        assert!(marginals.iter().all(|&m| (0.0..=1.0).contains(&m)));
    }
}
