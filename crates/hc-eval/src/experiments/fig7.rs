//! Figure 7 — HC vs NO HC.
//!
//! HC: EBCC-initialised belief, only the expert tier checks. NO HC
//! (brute-force checking): uniform initial belief and the *whole* crowd
//! serves as checking workers. Paper shape: at equal budget the
//! hierarchical design improves quality much faster.

use super::{aggregator_marginals, build_corpus, ExperimentOutput};
use crate::curve::run_hc_curve;
use crate::report::{curves_table, Metric};
use crate::settings::ExpSettings;
use hc_baselines::Ebcc;
use hc_core::selection::GreedySelector;
use hc_core::worker::ExpertPanel;
use hc_sim::{prepare, InitMethod, PipelineConfig, ReplayOracle};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the Figure 7 experiment.
pub fn run(settings: &ExpSettings) -> ExperimentOutput {
    let dataset = build_corpus(settings);
    let config = PipelineConfig {
        theta: super::fig2::THETA,
        group_size: 5,
    };

    // --- HC ---
    let marginals = aggregator_marginals(&dataset, config.theta, &Ebcc::new());
    let prepared = prepare(&dataset, &config, &InitMethod::Marginals(marginals))
        .expect("paper corpus prepares");
    let mut oracle =
        ReplayOracle::new(&dataset, prepared.grouping).expect("complete synthetic corpus");
    let mut rng = StdRng::seed_from_u64(settings.seed ^ 0xF167);
    let hc = run_hc_curve(
        "HC",
        prepared.beliefs.clone(),
        &prepared.panel,
        &GreedySelector::new(),
        &mut oracle,
        &prepared.truths,
        1,
        settings.budget_max,
        &mut rng,
    )
    .expect("HC run succeeds")
    .sample(&settings.checkpoints);

    // --- NO HC: uniform belief, everyone checks. ---
    let uniform = prepare(&dataset, &config, &InitMethod::Uniform)
        .expect("uniform init prepares");
    let whole_crowd = ExpertPanel::from_accuracies(&dataset.worker_accuracies)
        .expect("synthetic accuracies are valid");
    let mut oracle =
        ReplayOracle::new(&dataset, uniform.grouping).expect("complete synthetic corpus");
    let mut rng = StdRng::seed_from_u64(settings.seed ^ 0xF167);
    let no_hc = run_hc_curve(
        "NO HC",
        uniform.beliefs.clone(),
        &whole_crowd,
        &GreedySelector::new(),
        &mut oracle,
        &uniform.truths,
        1,
        settings.budget_max,
        &mut rng,
    )
    .expect("NO-HC run succeeds")
    .sample(&settings.checkpoints);

    let curves = vec![hc, no_hc];
    let tables = vec![curves_table(
        "Figure 7 — HC vs NO HC",
        &curves,
        Metric::Quality,
    )];
    ExperimentOutput {
        name: "fig7".into(),
        tables,
        curves: vec![("fig7".into(), curves)],
        extra: None,
        telemetry: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::Scale;

    #[test]
    fn fig7_quick_shape() {
        let settings = ExpSettings::for_scale(Scale::Quick, 42);
        let out = run(&settings);
        let curves = &out.curves[0].1;
        assert_eq!(curves.len(), 2);
        let hc = &curves[0];
        let no_hc = &curves[1];

        // Paper shape: at every shared budget checkpoint, HC quality is
        // at least NO-HC quality.
        for (p_hc, p_no) in hc.points.iter().zip(&no_hc.points) {
            assert_eq!(p_hc.budget, p_no.budget);
            assert!(
                p_hc.quality >= p_no.quality,
                "budget {}: HC {} vs NO-HC {}",
                p_hc.budget,
                p_hc.quality,
                p_no.quality
            );
        }
    }
}
