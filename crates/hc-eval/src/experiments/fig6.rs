//! Figure 6 — varying the belief initialisation.
//!
//! The HC loop is run from each of the eight aggregators' posteriors
//! (computed on the preliminary answers). Paper shape: EBCC/DS/BCC
//! initialisations dominate MV/ZC/GLAD/BWA/CRH throughout; the gap
//! narrows as the budget grows (checking repairs a bad start), with all
//! initialisations reaching high accuracy by the end (≥ 89.3% in the
//! paper's corpus).

use super::{aggregator_marginals, build_corpus, ExperimentOutput};
use crate::curve::{run_hc_curve, Curve};
use crate::report::{curves_table, Metric};
use crate::settings::ExpSettings;
use hc_baselines::all_aggregators;
use hc_core::selection::GreedySelector;
use hc_sim::{prepare, InitMethod, PipelineConfig, ReplayOracle};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the Figure 6 experiment.
pub fn run(settings: &ExpSettings) -> ExperimentOutput {
    let dataset = build_corpus(settings);
    let config = PipelineConfig {
        theta: super::fig2::THETA,
        group_size: 5,
    };

    let curves: Vec<Curve> = std::thread::scope(|scope| {
        let handles: Vec<_> = all_aggregators()
            .into_iter()
            .map(|agg| {
                let dataset = &dataset;
                scope.spawn(move || {
                    let marginals = aggregator_marginals(dataset, config.theta, agg.as_ref());
                    let prepared =
                        prepare(dataset, &config, &InitMethod::Marginals(marginals))
                            .expect("paper corpus prepares");
                    let mut oracle = ReplayOracle::new(dataset, prepared.grouping)
                        .expect("complete synthetic corpus");
                    let mut rng = StdRng::seed_from_u64(settings.seed ^ 0xF166);
                    run_hc_curve(
                        agg.name(),
                        prepared.beliefs.clone(),
                        &prepared.panel,
                        &GreedySelector::new(),
                        &mut oracle,
                        &prepared.truths,
                        1,
                        settings.budget_max,
                        &mut rng,
                    )
                    .expect("HC run succeeds")
                    .sample(&settings.checkpoints)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let tables = vec![
        curves_table("Figure 6a — varying initialisation", &curves, Metric::Accuracy),
        curves_table("Figure 6b — varying initialisation", &curves, Metric::Quality),
    ];
    ExperimentOutput {
        name: "fig6".into(),
        tables,
        curves: vec![("fig6".into(), curves)],
        extra: None,
        telemetry: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::Scale;

    #[test]
    fn fig6_quick_shape() {
        let settings = ExpSettings::for_scale(Scale::Quick, 42);
        let out = run(&settings);
        let curves = &out.curves[0].1;
        assert_eq!(curves.len(), 8);

        // Every initialisation improves in quality under checking.
        for c in curves {
            assert!(
                c.final_quality().unwrap() >= c.points[0].quality,
                "{} should not degrade",
                c.label
            );
        }

        // Paper shape: the spread of final accuracies is narrower than
        // the spread of initial accuracies (checking repairs bad starts).
        let spread = |f: fn(&Curve) -> f64| {
            let vals: Vec<f64> = curves.iter().map(f).collect();
            vals.iter().cloned().fold(f64::MIN, f64::max)
                - vals.iter().cloned().fold(f64::MAX, f64::min)
        };
        let initial_spread = spread(|c| c.points[0].accuracy);
        let final_spread = spread(|c| c.final_accuracy().unwrap());
        assert!(
            final_spread <= initial_spread + 0.02,
            "final spread {final_spread} vs initial {initial_spread}"
        );
    }
}
