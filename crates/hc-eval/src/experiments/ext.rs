//! Extension experiments beyond the paper's evaluation — the §III-D
//! discussion items and the design-choice ablations `DESIGN.md` calls
//! out:
//!
//! * [`cost`] — cost-aware experts: accuracy-proportional answer pricing
//!   (§III-D "the cost is related to his/her accuracy rate").
//! * [`estimation`] — robustness to *estimated* worker accuracies from a
//!   gold subset instead of the generator's true rates (§II-A).
//! * [`policy`] — the repeat-policy ablation: the literal Algorithm 2
//!   (unrestricted re-selection) vs the cycle-then-repeat eligibility
//!   the offline-replay evaluation needs (see `hc-core::hc::RepeatPolicy`).
//! * [`multitier`] — more than two crowd tiers, checked sequentially.

use super::{aggregator_marginals, build_corpus, run_variant_corpus, ExperimentOutput, VariantRun};
use crate::curve::{run_hc_curve, Curve, CurvePoint};
use crate::report::{curves_table, Metric};
use crate::settings::ExpSettings;
use hc_baselines::{Aggregator, Ebcc};
use hc_core::belief::MultiBelief;
use hc_core::hc::{AccuracyCost, CostModel, HcConfig, RepeatPolicy, RoundRecord, UnitCost};
use hc_core::selection::GreedySelector;
use hc_core::worker::ExpertPanel;
use hc_data::CrowdDataset;
use hc_sim::pipeline::dataset_accuracy;
use hc_sim::{estimate_accuracies, prepare, sample_gold_items, InitMethod, PipelineConfig, ReplayOracle};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub(crate) fn paper_prepare(
    dataset: &CrowdDataset,
    settings_theta: f64,
) -> (hc_sim::Prepared, PipelineConfig) {
    let config = PipelineConfig {
        theta: settings_theta,
        group_size: 5,
    };
    let marginals = aggregator_marginals(dataset, config.theta, &Ebcc::new());
    let prepared = prepare(dataset, &config, &InitMethod::Marginals(marginals))
        .expect("paper corpus prepares");
    (prepared, config)
}

/// Runs labelled experiment variants through [`run_variant_corpus`] and
/// turns each variant's rounds into a sampled accuracy/quality curve.
///
/// Every variant gets its own fresh replay oracle and an RNG seeded from
/// `settings.seed ^ seed_salt` — exactly the collaborators the old
/// serial per-variant loops constructed, so the curves are bit-identical
/// to running each variant alone.
fn run_ext_variants(
    settings: &ExpSettings,
    dataset: &CrowdDataset,
    prepared: &hc_sim::Prepared,
    labels: &[&str],
    variants: Vec<VariantRun<'_>>,
    seed_salt: u64,
) -> Vec<Curve> {
    let n = variants.len();
    assert_eq!(labels.len(), n, "one label per variant");
    let mut oracles: Vec<ReplayOracle> = (0..n)
        .map(|_| ReplayOracle::new(dataset, prepared.grouping).expect("complete synthetic corpus"))
        .collect();
    let mut rngs: Vec<StdRng> = (0..n)
        .map(|_| StdRng::seed_from_u64(settings.seed ^ seed_salt))
        .collect();
    let mut points: Vec<Vec<CurvePoint>> = variants
        .iter()
        .map(|v| {
            vec![CurvePoint {
                budget: 0,
                accuracy: dataset_accuracy(&v.beliefs, &prepared.truths),
                quality: v.beliefs.quality(),
            }]
        })
        .collect();
    let truths = &prepared.truths;
    run_variant_corpus(
        &prepared.panel,
        &GreedySelector::new(),
        variants,
        &mut oracles,
        &mut rngs,
        |g: usize, state: &MultiBelief, record: &RoundRecord| {
            points[g].push(CurvePoint {
                budget: record.budget_spent,
                accuracy: dataset_accuracy(state, truths),
                quality: record.quality,
            });
        },
    )
    .expect("corpus-scheduled variants succeed");
    labels
        .iter()
        .zip(points)
        .map(|(label, pts)| {
            Curve {
                label: label.to_string(),
                points: pts,
            }
            .sample(&settings.checkpoints)
        })
        .collect()
}

/// Cost-aware checking: unit pricing vs accuracy-proportional pricing at
/// the same monetary budget.
pub fn cost(settings: &ExpSettings) -> ExperimentOutput {
    let dataset = build_corpus(settings);
    let (prepared, _) = paper_prepare(&dataset, super::fig2::THETA);

    // Both pricing variants advance through one corpus scheduler in
    // per-group mode — same per-variant oracles, seeds, and budgets as
    // the old serial loop, so every variant's curve is bit-identical
    // (locked by `corpus_scheduler_reproduces_direct_runs_bit_for_bit`).
    let unit = UnitCost;
    let priced = AccuracyCost { base: 1, scale: 2 };
    let labels = ["UnitCost", "AccuracyCost"];
    let models: [&dyn CostModel; 2] = [&unit, &priced];
    let curves = run_ext_variants(
        settings,
        &dataset,
        &prepared,
        &labels,
        models
            .iter()
            .map(|&costs| VariantRun {
                beliefs: prepared.beliefs.clone(),
                config: HcConfig::new(1, settings.budget_max),
                costs,
            })
            .collect(),
        0xE001,
    );

    let tables = vec![curves_table(
        "Extension — cost-aware experts (same monetary budget)",
        &curves,
        Metric::Quality,
    )];
    ExperimentOutput {
        name: "ext-cost".into(),
        tables,
        curves: vec![("ext_cost".into(), curves)],
        extra: None,
        telemetry: None,
    }
}

/// True accuracies vs gold-set estimates of varying size.
pub fn estimation(settings: &ExpSettings) -> ExperimentOutput {
    let dataset = build_corpus(settings);
    let theta = super::fig2::THETA;
    let gold_sizes = [10usize, 40, 160];

    let mut curves = Vec::new();

    // Reference: the generator's true accuracies.
    curves.push(run_with_accuracies(
        settings,
        &dataset,
        theta,
        dataset.worker_accuracies.clone(),
        "true".into(),
    ));

    for &gold in &gold_sizes {
        let mut rng = StdRng::seed_from_u64(settings.seed ^ 0xE002);
        let gold_items = sample_gold_items(dataset.n_items(), gold, &mut rng);
        let estimates = estimate_accuracies(&dataset, &gold_items);
        curves.push(run_with_accuracies(
            settings,
            &dataset,
            theta,
            estimates,
            format!("gold={gold}"),
        ));
    }

    let tables = vec![curves_table(
        "Extension — estimated vs true worker accuracies",
        &curves,
        Metric::Accuracy,
    )];
    ExperimentOutput {
        name: "ext-estimation".into(),
        tables,
        curves: vec![("ext_estimation".into(), curves)],
        extra: None,
        telemetry: None,
    }
}

/// One HC run where the loop believes `accuracies` (true or estimated);
/// the oracle still replays the answers the *true* workers recorded.
fn run_with_accuracies(
    settings: &ExpSettings,
    dataset: &CrowdDataset,
    theta: f64,
    accuracies: Vec<f64>,
    label: String,
) -> Curve {
    // Swap the believed accuracies into a copy of the dataset so the
    // θ-split, initialisation weighting and Bayes updates all use them.
    let mut believed = dataset.clone();
    believed.worker_accuracies = accuracies;
    let config = PipelineConfig {
        theta,
        group_size: 5,
    };
    let marginals = aggregator_marginals(&believed, theta, &Ebcc::new());
    let prepared = match prepare(&believed, &config, &InitMethod::Marginals(marginals)) {
        Ok(p) => p,
        Err(_) => {
            // Degenerate estimate (e.g. no worker reaches θ): report a
            // flat zero-information curve rather than crashing the sweep.
            return Curve {
                label: format!("{label} (no experts)"),
                points: settings
                    .checkpoints
                    .iter()
                    .map(|&budget| CurvePoint {
                        budget,
                        accuracy: 0.5,
                        quality: f64::NEG_INFINITY,
                    })
                    .collect(),
            };
        }
    };
    let mut oracle =
        ReplayOracle::new(dataset, prepared.grouping).expect("complete synthetic corpus");
    let mut rng = StdRng::seed_from_u64(settings.seed ^ 0xE003);
    run_hc_curve(
        label,
        prepared.beliefs.clone(),
        &prepared.panel,
        &GreedySelector::new(),
        &mut oracle,
        &prepared.truths,
        1,
        settings.budget_max,
        &mut rng,
    )
    .expect("HC run succeeds")
    .sample(&settings.checkpoints)
}

/// Repeat-policy ablation: cycle-then-repeat vs the literal Algorithm 2.
pub fn policy(settings: &ExpSettings) -> ExperimentOutput {
    let dataset = build_corpus(settings);
    let (prepared, _) = paper_prepare(&dataset, super::fig2::THETA);

    // Both repeat policies ride one per-group corpus schedule; see
    // `cost` for why the outputs stay bit-identical to serial runs.
    let unit = UnitCost;
    let labels = ["CycleThenRepeat", "Unrestricted"];
    let policies = [RepeatPolicy::CycleThenRepeat, RepeatPolicy::Unrestricted];
    let curves = run_ext_variants(
        settings,
        &dataset,
        &prepared,
        &labels,
        policies
            .iter()
            .map(|&policy| {
                let mut config = HcConfig::new(1, settings.budget_max);
                config.repeat_policy = policy;
                VariantRun {
                    beliefs: prepared.beliefs.clone(),
                    config,
                    costs: &unit,
                }
            })
            .collect(),
        0xE004,
    );

    let tables = vec![
        curves_table("Extension — repeat policy (accuracy)", &curves, Metric::Accuracy),
        curves_table("Extension — repeat policy (quality)", &curves, Metric::Quality),
    ];
    ExperimentOutput {
        name: "ext-policy".into(),
        tables,
        curves: vec![("ext_policy".into(), curves)],
        extra: None,
        telemetry: None,
    }
}

/// Multi-tier crowds: two-tier (the paper's design) vs a three-tier
/// split checking sequentially from the weakest expert tier upward.
pub fn multitier(settings: &ExpSettings) -> ExperimentOutput {
    let dataset = build_corpus(settings);
    let (prepared, _) = paper_prepare(&dataset, super::fig2::THETA);

    // Two-tier reference.
    let mut oracle =
        ReplayOracle::new(&dataset, prepared.grouping).expect("complete synthetic corpus");
    let mut rng = StdRng::seed_from_u64(settings.seed ^ 0xE005);
    let two_tier = run_hc_curve(
        "two-tier",
        prepared.beliefs.clone(),
        &prepared.panel,
        &GreedySelector::new(),
        &mut oracle,
        &prepared.truths,
        1,
        settings.budget_max,
        &mut rng,
    )
    .expect("HC run succeeds")
    .sample(&settings.checkpoints);

    // Three-tier: the 0.85–0.9 workers become a mid tier that checks
    // first with 40% of the budget; the ≥0.9 experts finish the rest.
    let crowd = dataset.crowd().expect("valid crowd");
    let tiers_workers = crowd.split_tiers(&[0.85, 0.9]);
    let mid_budget = settings.budget_max * 2 / 5;
    let top_budget = settings.budget_max - mid_budget;
    let tiers = vec![
        (ExpertPanel::new(tiers_workers[1].clone()), mid_budget),
        (ExpertPanel::new(tiers_workers[2].clone()), top_budget),
    ];
    let mut oracle =
        ReplayOracle::new(&dataset, prepared.grouping).expect("complete synthetic corpus");
    let mut rng = StdRng::seed_from_u64(settings.seed ^ 0xE005);
    let outcome = hc_core::hc::run_multi_tier(
        prepared.beliefs.clone(),
        &tiers,
        &GreedySelector::new(),
        &mut oracle,
        1,
        &mut rng,
    )
    .expect("multi-tier run succeeds");
    let mut points = vec![CurvePoint {
        budget: 0,
        accuracy: dataset_accuracy(&prepared.beliefs, &prepared.truths),
        quality: prepared.beliefs.quality(),
    }];
    // The multi-tier trace only has quality; accuracy is recomputed for
    // the final state and carried on the last point.
    for r in &outcome.rounds {
        points.push(CurvePoint {
            budget: r.budget_spent,
            accuracy: f64::NAN,
            quality: r.quality,
        });
    }
    if let Some(last) = points.last_mut() {
        last.accuracy = dataset_accuracy(&outcome.beliefs, &prepared.truths);
    }
    let three_tier = Curve {
        label: "three-tier".into(),
        points,
    }
    .sample(&settings.checkpoints);

    let curves = vec![two_tier, three_tier];
    let tables = vec![curves_table(
        "Extension — multi-tier crowds (quality)",
        &curves,
        Metric::Quality,
    )];
    ExperimentOutput {
        name: "ext-multitier".into(),
        tables,
        curves: vec![("ext_multitier".into(), curves)],
        extra: None,
        telemetry: None,
    }
}

/// Allocation ablation: how far does the *strongest baseline* get when
/// its extra expert labels are targeted at the most-disputed items
/// instead of assigned round-robin — and does HC still win? Separates
/// HC's two advantages (uncertainty targeting vs Bayesian aggregation
/// over correlated facts).
pub fn allocation(settings: &ExpSettings) -> ExperimentOutput {
    let dataset = build_corpus(settings);
    let theta = super::fig2::THETA;
    let (prepared, _) = paper_prepare(&dataset, theta);

    // HC reference.
    let mut oracle =
        ReplayOracle::new(&dataset, prepared.grouping).expect("complete synthetic corpus");
    let mut rng = StdRng::seed_from_u64(settings.seed ^ 0xE006);
    let hc = run_hc_curve(
        "HC",
        prepared.beliefs.clone(),
        &prepared.panel,
        &GreedySelector::new(),
        &mut oracle,
        &prepared.truths,
        1,
        settings.budget_max,
        &mut rng,
    )
    .expect("HC run succeeds")
    .sample(&settings.checkpoints);

    // DS with round-robin vs targeted expert labels.
    let ds = hc_baselines::DawidSkene::new();
    let mut curves = vec![hc];
    for (label, targeted) in [("DS round-robin", false), ("DS targeted", true)] {
        let points = settings
            .checkpoints
            .iter()
            .map(|&budget| {
                let matrix = if targeted {
                    super::augmented_matrix_targeted(&dataset, theta, budget)
                } else {
                    super::augmented_matrix(&dataset, theta, budget)
                };
                let result = ds.aggregate(&matrix).expect("augmented matrix aggregates");
                CurvePoint {
                    budget,
                    accuracy: dataset.accuracy_of(&result.map_labels()),
                    quality: f64::NAN,
                }
            })
            .collect();
        curves.push(Curve {
            label: label.into(),
            points,
        });
    }

    let tables = vec![curves_table(
        "Extension — expert-label allocation (accuracy)",
        &curves,
        Metric::Accuracy,
    )];
    ExperimentOutput {
        name: "ext-allocation".into(),
        tables,
        curves: vec![("ext_allocation".into(), curves)],
        extra: None,
        telemetry: None,
    }
}

/// Latency ablation (§IV-C(1)'s waiting-time discussion): the same
/// budget spent with k ∈ {1, 3, 5} — accuracy barely changes, total
/// crowd wall-clock drops with k because per-round dispatch overhead is
/// paid fewer times.
pub fn latency(settings: &ExpSettings) -> ExperimentOutput {
    let dataset = build_corpus(settings);
    let (prepared, _) = paper_prepare(&dataset, super::fig2::THETA);
    let model = hc_sim::LatencyModel::default();

    let mut rows = Vec::new();
    for k in [1usize, 3, 5] {
        let mut oracle =
            ReplayOracle::new(&dataset, prepared.grouping).expect("complete synthetic corpus");
        let mut rng = StdRng::seed_from_u64(settings.seed ^ 0xE007);
        let mut clock = hc_sim::WallClock::default();
        let mut latency_rng = StdRng::seed_from_u64(settings.seed ^ 0xE008);
        let workers = prepared.panel.workers().to_vec();
        let model_ref = &model;
        let outcome = hc_core::hc::run_hc_with_observer(
            prepared.beliefs.clone(),
            &prepared.panel,
            &GreedySelector::new(),
            &mut oracle,
            &HcConfig::new(k, settings.budget_max),
            &mut rng,
            |_, record| {
                clock.record_round(model_ref.round_secs(
                    &workers,
                    record.queries.len(),
                    &mut latency_rng,
                ));
            },
        )
        .expect("HC run succeeds");
        rows.push((
            k,
            dataset_accuracy(&outcome.beliefs, &prepared.truths),
            outcome.quality(),
            clock,
        ));
    }

    let mut table = String::from("# Extension — k vs crowd wall-clock (same budget)\n");
    table.push_str(&format!(
        "{:>4} {:>10} {:>12} {:>8} {:>14} {:>14}\n",
        "k", "accuracy", "quality", "rounds", "wall hours", "secs/round"
    ));
    for (k, acc, quality, clock) in &rows {
        table.push_str(&format!(
            "{:>4} {:>10.4} {:>12.2} {:>8} {:>14.2} {:>14.1}\n",
            k,
            acc,
            quality,
            clock.rounds,
            clock.total_secs / 3600.0,
            clock.mean_round_secs()
        ));
    }
    let extra = serde_json::to_value(
        rows.iter()
            .map(|(k, acc, quality, clock)| {
                serde_json::json!({
                    "k": k,
                    "accuracy": acc,
                    "quality": quality,
                    "rounds": clock.rounds,
                    "wall_secs": clock.total_secs,
                })
            })
            .collect::<Vec<_>>(),
    )
    .expect("rows serialise");

    ExperimentOutput {
        name: "ext-latency".into(),
        tables: vec![table],
        curves: vec![],
        extra: Some(extra),
        telemetry: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::Scale;
    use hc_core::hc::run_hc_costed;

    fn settings() -> ExpSettings {
        ExpSettings::for_scale(Scale::Quick, 42)
    }

    /// Serialised posterior bit patterns of every cell of every task.
    fn posterior_bits(beliefs: &MultiBelief) -> Vec<Vec<u64>> {
        beliefs
            .tasks()
            .iter()
            .map(|t| t.probs().iter().map(|p| p.to_bits()).collect())
            .collect()
    }

    /// A fully bit-exact digest of a round trace: every field, floats
    /// by bit pattern.
    #[allow(clippy::type_complexity)]
    fn round_digest(
        rounds: &[RoundRecord],
    ) -> Vec<(usize, Vec<hc_core::selection::GlobalFact>, u64, u64, usize, usize, u64, u64)> {
        rounds
            .iter()
            .map(|r| {
                (
                    r.round,
                    r.queries.clone(),
                    r.budget_spent,
                    r.quality.to_bits(),
                    r.answers_requested,
                    r.answers_received,
                    r.predicted_entropy.to_bits(),
                    r.realized_entropy.to_bits(),
                )
            })
            .collect()
    }

    /// The ext-* loops used to run each variant serially with
    /// `run_hc_costed`; they now ride one `CorpusScheduler` in
    /// per-group mode. This locks the refactor: same seeds, same
    /// oracles => bit-identical rounds, posteriors, and spend.
    #[test]
    fn corpus_scheduler_reproduces_direct_runs_bit_for_bit() {
        let settings = settings();
        let dataset = build_corpus(&settings);
        let (prepared, _) = paper_prepare(&dataset, super::super::fig2::THETA);
        let policies = [RepeatPolicy::CycleThenRepeat, RepeatPolicy::Unrestricted];

        // Direct serial reference, one isolated run per policy.
        let mut direct = Vec::new();
        for &policy in &policies {
            let mut beliefs = prepared.beliefs.clone();
            let mut oracle =
                ReplayOracle::new(&dataset, prepared.grouping).expect("complete synthetic corpus");
            let mut rng = StdRng::seed_from_u64(settings.seed ^ 0xE004);
            let mut config = HcConfig::new(1, settings.budget_max);
            config.repeat_policy = policy;
            let (rounds, spent) = run_hc_costed(
                &mut beliefs,
                &prepared.panel,
                &GreedySelector::new(),
                &mut oracle,
                &config,
                &UnitCost,
                &mut rng,
                &mut |_, _| {},
            )
            .expect("direct run succeeds");
            direct.push((posterior_bits(&beliefs), rounds, spent));
        }

        // The same two variants through one corpus schedule.
        let unit = UnitCost;
        let variants = policies
            .iter()
            .map(|&policy| {
                let mut config = HcConfig::new(1, settings.budget_max);
                config.repeat_policy = policy;
                VariantRun {
                    beliefs: prepared.beliefs.clone(),
                    config,
                    costs: &unit,
                }
            })
            .collect();
        let mut oracles: Vec<ReplayOracle> = (0..2)
            .map(|_| {
                ReplayOracle::new(&dataset, prepared.grouping).expect("complete synthetic corpus")
            })
            .collect();
        let mut rngs: Vec<StdRng> = (0..2)
            .map(|_| StdRng::seed_from_u64(settings.seed ^ 0xE004))
            .collect();
        let mut observed: Vec<Vec<RoundRecord>> = vec![Vec::new(); 2];
        let finals = run_variant_corpus(
            &prepared.panel,
            &GreedySelector::new(),
            variants,
            &mut oracles,
            &mut rngs,
            |g: usize, _: &MultiBelief, record: &RoundRecord| {
                observed[g].push(record.clone());
            },
        )
        .expect("corpus run succeeds");

        assert_eq!(finals.len(), 2);
        for (g, ((beliefs, rounds, spent), (want_bits, want_rounds, want_spent))) in
            finals.iter().zip(&direct).enumerate()
        {
            assert_eq!(
                &posterior_bits(beliefs),
                want_bits,
                "variant {g}: posterior bits diverge from the direct run"
            );
            assert_eq!(spent, want_spent, "variant {g}: spend diverges");
            let want = round_digest(want_rounds);
            assert_eq!(
                round_digest(rounds),
                want,
                "variant {g}: session round records diverge"
            );
            assert_eq!(
                round_digest(&observed[g]),
                want,
                "variant {g}: observed round records diverge"
            );
        }
    }

    #[test]
    fn cost_models_run_and_unit_cost_spends_further() {
        let out = cost(&settings());
        let curves = &out.curves[0].1;
        assert_eq!(curves.len(), 2);
        // Pricier experts => fewer answers per budget => quality at the
        // final checkpoint should not exceed unit-cost quality.
        let unit = curves[0].final_quality().unwrap();
        let priced = curves[1].final_quality().unwrap();
        assert!(unit >= priced - 1e-9, "unit {unit} vs priced {priced}");
    }

    #[test]
    fn estimation_curves_cover_all_settings() {
        let out = estimation(&settings());
        let curves = &out.curves[0].1;
        assert_eq!(curves.len(), 4, "true + 3 gold sizes");
        // Large gold sets should track the true-accuracy run closely.
        let true_final = curves[0].final_accuracy().unwrap();
        let largest_gold_final = curves[3].final_accuracy().unwrap();
        assert!(
            (true_final - largest_gold_final).abs() < 0.1,
            "true {true_final} vs gold160 {largest_gold_final}"
        );
    }

    #[test]
    fn policy_ablation_shows_cycle_at_least_as_good() {
        let out = policy(&settings());
        let curves = &out.curves[0].1;
        let cycle = curves[0].final_quality().unwrap();
        let unrestricted = curves[1].final_quality().unwrap();
        assert!(
            cycle >= unrestricted - 1e-9,
            "cycle {cycle} vs unrestricted {unrestricted}"
        );
    }

    #[test]
    fn allocation_ablation_keeps_hc_on_top() {
        let out = allocation(&settings());
        let curves = &out.curves[0].1;
        assert_eq!(curves.len(), 3);
        let hc_final = curves[0].final_accuracy().unwrap();
        let rr_final = curves[1].final_accuracy().unwrap();
        let targeted_final = curves[2].final_accuracy().unwrap();
        // Targeting helps the baseline...
        assert!(
            targeted_final >= rr_final - 0.02,
            "targeted {targeted_final} vs round-robin {rr_final}"
        );
        // ...but HC stays competitive even against targeted allocation
        // (on a tiny saturating-budget corpus the targeted baseline can
        // fix every disputed item, so allow a small margin).
        assert!(
            hc_final >= targeted_final - 0.02,
            "HC {hc_final} vs targeted DS {targeted_final}"
        );
    }

    #[test]
    fn latency_drops_with_larger_k() {
        let out = latency(&settings());
        let rows = out.extra.as_ref().unwrap().as_array().unwrap().clone();
        assert_eq!(rows.len(), 3);
        let wall = |i: usize| rows[i]["wall_secs"].as_f64().unwrap();
        assert!(
            wall(0) > wall(1) && wall(1) > wall(2),
            "wall clock should shrink with k: {} {} {}",
            wall(0),
            wall(1),
            wall(2)
        );
        // Accuracy stays in a tight band across k (paper: ≤ 3.7%).
        let acc = |i: usize| rows[i]["accuracy"].as_f64().unwrap();
        assert!((acc(0) - acc(2)).abs() < 0.05);
    }

    #[test]
    fn multitier_runs_and_improves_quality() {
        let out = multitier(&settings());
        let curves = &out.curves[0].1;
        assert_eq!(curves.len(), 2);
        for c in curves {
            assert!(
                c.final_quality().unwrap() > c.points[0].quality,
                "{} should improve",
                c.label
            );
        }
    }
}
