//! `ext-drift` — crowd drift detection under mid-run accuracy decay.
//!
//! Pairs the [`FaultPlan`] accuracy-decay knob with the crowd-health
//! CUSUM detector (`hc_core::telemetry::crowd`): the panel's best
//! expert silently degrades to coin-flip accuracy partway through the
//! run, and the experiment measures how many of the worker's
//! post-onset answers the detector needs before it raises
//! `WorkerDriftSuspected` — the *detection latency*, in answers.
//!
//! Unlike the paper experiments this one runs on a widened panel (the
//! corpus' top [`DRIFT_PANEL`] workers, not the θ-split experts): the
//! detector scores each worker against the leave-one-out consensus of
//! the others, and with only two voters that consensus is a mirror —
//! worker A disagreeing with worker B is indistinguishable from B
//! disagreeing with A, so a 2-expert panel cannot localise the
//! drifter. Five voters can.
//!
//! Three arms, all fully instrumented:
//!
//! * `clean` — no faults at all; the detector must stay silent (its
//!   false-positive floor).
//! * `decay` — the best expert decays to 0.5 accuracy after
//!   [`DECAY_ROUNDS`] rounds of clean baseline.
//! * `decay+churn` — the same decay with per-attempt churn layered on
//!   top, showing the ledger still folds when the crowd is also
//!   shrinking (churned workers stop producing answers instead of
//!   producing wrong ones, so there may be too few post-onset answers
//!   left to alarm on — that truncation is part of the measurement).
//!
//! The `decay` arm's event log is exported as the experiment's
//! telemetry, so `hc-eval inspect` renders the drifting worker in its
//! crowd-health section and flags it in the audit.

use super::{build_corpus, ExperimentOutput};
use crate::curve::{Curve, CurvePoint};
use crate::report::{curves_table, Metric};
use crate::settings::ExpSettings;
use hc_core::hc::{run_hc_costed_with_telemetry, HcConfig, RoundRecord, UnitCost};
use hc_core::selection::GreedySelector;
use hc_core::telemetry::crowd::CrowdLedger;
use hc_core::telemetry::{SharedRecorder, TelemetryEvent};
use hc_core::worker::ExpertPanel;
use hc_sim::pipeline::{dataset_accuracy, Prepared};
use hc_sim::{FaultPlan, FaultyOracle, PlatformStats, SamplingOracle, SimulatedPlatform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Panel width for the drift arms — enough voters that the
/// leave-one-out consensus stays anchored when one of them goes bad.
const DRIFT_PANEL: usize = 5;

/// Rounds of clean baseline before the decay arm's expert degrades.
/// Comfortably past the detector's warm-up window (10 comparable
/// answers) while leaving the rest of the run post-onset.
const DECAY_ROUNDS: u64 = 12;

/// Post-onset accuracy of the decayed expert: a coin flip.
const DECAY_FLOOR: f64 = 0.5;

/// The widened panel the drift arms query: the corpus' top
/// [`DRIFT_PANEL`] workers by true accuracy, best first.
fn drift_panel(accuracies: &[f64]) -> ExpertPanel {
    let everyone =
        ExpertPanel::from_accuracies(accuracies).expect("synthetic accuracies are admissible");
    let best = everyone.by_accuracy_desc();
    ExpertPanel::new(best[..DRIFT_PANEL.min(best.len())].to_vec())
}

/// Everything one arm produces that the report and the tests consume.
struct ArmOutcome {
    points: Vec<CurvePoint>,
    rounds: usize,
    spent: u64,
    accuracy: f64,
    quality: f64,
    stats: PlatformStats,
    events: Vec<TelemetryEvent>,
}

/// Runs one fully-instrumented arm of the experiment.
fn run_arm(
    settings: &ExpSettings,
    prepared: &Prepared,
    panel: &ExpertPanel,
    plan: FaultPlan,
) -> ArmOutcome {
    let recorder = SharedRecorder::new();
    let mut beliefs = prepared.beliefs.clone();
    // A sampling oracle (not replay): answers are drawn against the
    // *handed-in* worker's accuracy, which is what lets the decay
    // substitution actually change the answer stream.
    let inner = SamplingOracle::new(
        &prepared.truths,
        StdRng::seed_from_u64(settings.seed ^ 0xD222),
    );
    let faulty = FaultyOracle::new(inner, plan).with_telemetry(Box::new(recorder.clone()));
    let mut platform = SimulatedPlatform::new(faulty, settings.seed ^ 0xD220)
        .with_telemetry(Box::new(recorder.clone()));
    let mut rng = StdRng::seed_from_u64(settings.seed ^ 0xD221);
    let config = HcConfig::new(1, settings.budget_max);
    let mut points = vec![CurvePoint {
        budget: 0,
        accuracy: dataset_accuracy(&beliefs, &prepared.truths),
        quality: beliefs.quality(),
    }];
    let truths = &prepared.truths;
    let mut observer = |state: &hc_core::belief::MultiBelief, record: &RoundRecord| {
        points.push(CurvePoint {
            budget: record.budget_spent,
            accuracy: dataset_accuracy(state, truths),
            quality: record.quality,
        });
    };
    let mut loop_sink = recorder.clone();
    let (round_trace, spent) = run_hc_costed_with_telemetry(
        &mut beliefs,
        panel,
        &GreedySelector::new(),
        &mut platform,
        &config,
        &UnitCost,
        &mut rng,
        &mut observer,
        &mut loop_sink,
    )
    .expect("drift arms stay well-formed");
    platform.end_round();
    let stats = platform.stats().clone();
    ArmOutcome {
        points,
        rounds: round_trace.len(),
        spent,
        accuracy: dataset_accuracy(&beliefs, &prepared.truths),
        quality: beliefs.quality(),
        stats,
        events: recorder.into_events(),
    }
}

/// Runs the drift-detection arms.
pub fn run(settings: &ExpSettings) -> ExperimentOutput {
    let dataset = build_corpus(settings);
    let (prepared, _) = super::ext::paper_prepare(&dataset, super::fig2::THETA);
    let panel = drift_panel(&dataset.worker_accuracies);
    let target = panel.workers()[0].id.0;
    // The whole panel answers every query, so the fault layer sees
    // `panel` attempts per round; the decay onset is phrased in rounds
    // and converted to the fault layer's attempt counter.
    let onset_attempts = DECAY_ROUNDS * panel.len() as u64;

    let decay =
        |plan: FaultPlan| plan.with_accuracy_decay(onset_attempts, vec![target], DECAY_FLOOR);
    let arms: Vec<(&str, FaultPlan)> = vec![
        ("clean", FaultPlan::none(settings.seed ^ 0xD21F)),
        ("decay", decay(FaultPlan::none(settings.seed ^ 0xD21F))),
        (
            "decay+churn",
            decay(FaultPlan::none(settings.seed ^ 0xD21F).with_churn(0.01)),
        ),
    ];

    let mut curves = Vec::new();
    let mut rows = Vec::new();
    let mut captured: Option<Vec<TelemetryEvent>> = None;
    for (arm, plan) in arms {
        let outcome = run_arm(settings, &prepared, &panel, plan);

        // Fold the arm's own trace into a crowd ledger and measure the
        // detector's latency on the seeded drifter.
        let ledger = CrowdLedger::from_events(&outcome.events);
        let drifters: Vec<u32> = ledger.drifting().map(|d| d.worker).collect();
        let detection = ledger.drifting().find(|d| d.worker == target).map(|d| {
            // The decayed worker contributes one comparable answer per
            // round, so its 0-based onset index in the stream the
            // detector walks equals DECAY_ROUNDS; latency counts
            // post-onset answers consumed (1 = alarmed on the very
            // first degraded answer).
            let onset = DECAY_ROUNDS as usize;
            (d.at_answer, d.at_answer + 1 - onset.min(d.at_answer + 1))
        });
        let agreement = ledger
            .workers
            .get(&target)
            .map(|w| w.agreement())
            .filter(|a| a.is_finite());

        curves.push(
            Curve {
                label: arm.to_string(),
                points: outcome.points,
            }
            .sample(&settings.checkpoints),
        );
        rows.push(serde_json::json!({
            "arm": arm,
            "target_worker": target,
            "onset_round": if arm == "clean" { None } else { Some(DECAY_ROUNDS) },
            "rounds": outcome.rounds,
            "spent": outcome.spent,
            "answers": outcome.stats.answers,
            "accuracy": outcome.accuracy,
            "quality": outcome.quality,
            "drifting_workers": drifters,
            "drift_detected": detection.is_some(),
            "detected_at_answer": detection.map(|(at, _)| at),
            "detection_latency_answers": detection.map(|(_, lat)| lat),
            "target_agreement": agreement,
        }));
        if arm == "decay" {
            captured = Some(outcome.events);
        }
    }

    let mut telemetry = String::from("# Extension — crowd drift: CUSUM detection latency\n");
    telemetry.push_str(&format!(
        "{:>12} {:>7} {:>8} {:>9} {:>9} {:>11} {:>9}\n",
        "arm", "rounds", "answers", "drifters", "detected", "at_answer", "latency"
    ));
    for row in &rows {
        telemetry.push_str(&format!(
            "{:>12} {:>7} {:>8} {:>9} {:>9} {:>11} {:>9}\n",
            row["arm"].as_str().unwrap_or("?"),
            row["rounds"].as_u64().unwrap_or(0),
            row["answers"].as_u64().unwrap_or(0),
            row["drifting_workers"].as_array().map_or(0, Vec::len),
            row["drift_detected"].as_bool().unwrap_or(false),
            row["detected_at_answer"].as_u64().map_or("-".into(), |v| v.to_string()),
            row["detection_latency_answers"].as_u64().map_or("-".into(), |v| v.to_string()),
        ));
    }

    let tables = vec![
        curves_table(
            "Extension — crowd drift: accuracy under a silently decaying expert",
            &curves,
            Metric::Accuracy,
        ),
        telemetry,
    ];
    ExperimentOutput {
        name: "ext-drift".into(),
        tables,
        curves: vec![("ext_drift".into(), curves)],
        extra: Some(serde_json::Value::Array(rows)),
        telemetry: captured,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::Scale;

    fn settings() -> ExpSettings {
        ExpSettings::for_scale(Scale::Quick, 42)
    }

    /// The (deterministic) fixtures the arms run on, rebuilt the same
    /// way `run` builds them.
    fn fixtures() -> (ExpSettings, Prepared, ExpertPanel) {
        let s = settings();
        let dataset = build_corpus(&s);
        let (prepared, _) = super::super::ext::paper_prepare(&dataset, super::super::fig2::THETA);
        let panel = drift_panel(&dataset.worker_accuracies);
        (s, prepared, panel)
    }

    #[test]
    fn clean_arm_raises_no_drift_alarms() {
        let (s, prepared, panel) = fixtures();
        let outcome = run_arm(&s, &prepared, &panel, FaultPlan::none(s.seed ^ 0xD21F));
        let ledger = CrowdLedger::from_events(&outcome.events);
        assert_eq!(ledger.drifting().count(), 0, "false positive on a clean run");
        // Every panel member answers once per round; an answer only
        // drops out of the comparable stream when the other four
        // voters split 2–2, and every such tie is counted.
        assert_eq!(ledger.workers.len(), DRIFT_PANEL);
        let mut tie_deficit = 0;
        for w in ledger.workers.values() {
            assert_eq!(w.delivered, outcome.rounds as u64);
            assert!(w.comparable <= w.delivered);
            tie_deficit += w.delivered - w.comparable;
        }
        assert_eq!(tie_deficit, ledger.consensus_ties);
    }

    #[test]
    fn decay_arm_flags_exactly_the_seeded_drifter() {
        let (s, prepared, panel) = fixtures();
        let target = panel.workers()[0].id.0;
        let plan = FaultPlan::none(s.seed ^ 0xD21F).with_accuracy_decay(
            DECAY_ROUNDS * panel.len() as u64,
            vec![target],
            DECAY_FLOOR,
        );
        let outcome = run_arm(&s, &prepared, &panel, plan);
        let ledger = CrowdLedger::from_events(&outcome.events);
        let drifters: Vec<u32> = ledger.drifting().map(|d| d.worker).collect();
        assert_eq!(drifters, vec![target], "exactly the decayed worker is flagged");
        let d = ledger.drifting().next().unwrap();
        // The alarm fires after the onset and within the worker's
        // actual answer stream.
        assert!(d.at_answer >= DECAY_ROUNDS as usize, "alarm at {}", d.at_answer);
        assert!((d.at_answer as u64) < outcome.rounds as u64);
        assert!(d.recent < d.baseline, "agreement dropped: {d:?}");
    }

    #[test]
    fn exported_trace_carries_the_drift_through_inspect() {
        let out = run(&settings());
        let events = out.telemetry.as_ref().expect("decay arm is instrumented");
        assert!(matches!(events.first(), Some(TelemetryEvent::RunStarted { .. })));
        assert!(matches!(events.last(), Some(TelemetryEvent::RunFinished { .. })));
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TelemetryEvent::AnswerLatency { .. })),
            "platform latency metering is in the stream"
        );
        let mut text = String::new();
        for e in events {
            text.push_str(&e.to_json_line());
            text.push('\n');
        }
        let inspection = crate::inspect::inspect_str("ext-drift", &text);
        assert_eq!(inspection.audit.error_count(), 0, "{}", inspection.audit.render());
        assert!(
            inspection
                .audit
                .findings
                .iter()
                .any(|f| f.code == "worker_drift_suspected"),
            "{}",
            inspection.audit.render()
        );
        assert!(inspection.report.contains("## crowd health"));
        assert!(inspection.report.contains("SUSPECTED"));
        assert_eq!(inspection.crowd.drifting().count(), 1);
    }

    #[test]
    fn churn_arm_still_completes_with_fewer_deliveries() {
        let (s, prepared, panel) = fixtures();
        let clean = run_arm(&s, &prepared, &panel, FaultPlan::none(s.seed ^ 0xD21F));
        let churned = run_arm(
            &s,
            &prepared,
            &panel,
            FaultPlan::none(s.seed ^ 0xD21F).with_churn(0.01),
        );
        assert!(
            churned.stats.answers <= clean.stats.answers,
            "churn can only remove deliveries ({} vs {})",
            churned.stats.answers,
            clean.stats.answers
        );
        // The ledger still folds every event the shrunken crowd produced.
        let ledger = CrowdLedger::from_events(&churned.events);
        let delivered: u64 = ledger.workers.values().map(|w| w.delivered).sum();
        assert_eq!(delivered, churned.stats.answers);
    }

    #[test]
    fn report_rows_cover_all_three_arms() {
        let out = run(&settings());
        let rows = out.extra.as_ref().unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(out.curves[0].1.len(), 3, "one curve per arm");
        // Row *contents* go through serde_json; the local test stub
        // serialises to nothing, so gate the field-level asserts the
        // same way the serde round-trip tests do.
        let Some(first_arm) = rows[0]["arm"].as_str() else {
            return;
        };
        assert_eq!(first_arm, "clean");
        let row_of = |arm: &str| {
            rows.iter()
                .find(|r| r["arm"].as_str() == Some(arm))
                .unwrap_or_else(|| panic!("arm {arm} ran"))
        };
        let clean = row_of("clean");
        assert_eq!(clean["drifting_workers"].as_array().map(Vec::len), Some(0));
        assert_eq!(clean["drift_detected"].as_bool(), Some(false));
        let decay = row_of("decay");
        assert_eq!(decay["drift_detected"].as_bool(), Some(true), "{decay}");
        let latency = decay["detection_latency_answers"].as_u64().unwrap();
        let rounds = decay["rounds"].as_u64().unwrap();
        assert!(latency >= 1);
        assert!(
            latency <= rounds - DECAY_ROUNDS,
            "latency {latency} exceeds the {} post-onset answers",
            rounds - DECAY_ROUNDS
        );
    }
}
