//! Figure 3 — varying the per-round query count `k`.
//!
//! Paper shape: smaller `k` gives better accuracy *and* quality at equal
//! budget (the selector re-plans after every answer), at the price of
//! more rounds; differences are modest (≤ 3.7% accuracy in the paper).

use super::{aggregator_marginals, build_corpus, ExperimentOutput};
use crate::curve::{run_hc_curve, Curve};
use crate::report::{curves_table, Metric};
use crate::settings::ExpSettings;
use hc_baselines::Ebcc;
use hc_core::selection::GreedySelector;
use hc_sim::{prepare, InitMethod, PipelineConfig, ReplayOracle};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The `k` values swept (the paper plots 1, 2, 3).
pub const KS: [usize; 3] = [1, 2, 3];

/// Runs the Figure 3 experiment.
pub fn run(settings: &ExpSettings) -> ExperimentOutput {
    let dataset = build_corpus(settings);
    let config = PipelineConfig {
        theta: super::fig2::THETA,
        group_size: 5,
    };
    let marginals = aggregator_marginals(&dataset, config.theta, &Ebcc::new());
    let prepared = prepare(&dataset, &config, &InitMethod::Marginals(marginals))
        .expect("paper corpus prepares");

    let curves: Vec<Curve> = KS
        .iter()
        .map(|&k| {
            let mut oracle = ReplayOracle::new(&dataset, prepared.grouping)
                .expect("complete synthetic corpus");
            let mut rng = StdRng::seed_from_u64(settings.seed ^ 0xF163);
            run_hc_curve(
                format!("k={k}"),
                prepared.beliefs.clone(),
                &prepared.panel,
                &GreedySelector::new(),
                &mut oracle,
                &prepared.truths,
                k,
                settings.budget_max,
                &mut rng,
            )
            .expect("HC run succeeds")
            .sample(&settings.checkpoints)
        })
        .collect();

    let tables = vec![
        curves_table("Figure 3a — varying k", &curves, Metric::Accuracy),
        curves_table("Figure 3b — varying k", &curves, Metric::Quality),
    ];
    ExperimentOutput {
        name: "fig3".into(),
        tables,
        curves: vec![("fig3".into(), curves)],
        extra: None,
        telemetry: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::Scale;

    #[test]
    fn fig3_quick_shape() {
        let settings = ExpSettings::for_scale(Scale::Quick, 42);
        let out = run(&settings);
        let curves = &out.curves[0].1;
        assert_eq!(curves.len(), 3);

        // All curves improve quality over their starting point.
        for c in curves {
            let q0 = c.points.first().unwrap().quality;
            let q1 = c.final_quality().unwrap();
            assert!(q1 > q0, "{}: {q0} -> {q1}", c.label);
        }

        // Paper shape: k=1 ends with quality at least that of k=3
        // (smaller k re-plans more often). Allow a small tolerance for
        // replay-noise on the quick corpus.
        let q_k1 = curves[0].final_quality().unwrap();
        let q_k3 = curves[2].final_quality().unwrap();
        assert!(
            q_k1 >= q_k3 - 1.0,
            "k=1 {q_k1} should not trail k=3 {q_k3} materially"
        );
    }
}
