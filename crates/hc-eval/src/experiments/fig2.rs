//! Figure 2 — comparison with the 8 baseline algorithms.
//!
//! HC initialises the belief with EBCC over the preliminary answers and
//! spends the budget on expert *checking*; each baseline spends the same
//! budget on additional expert *labels* (appended round-robin to the CP
//! matrix) and re-aggregates. Accuracy is plotted against budget.
//!
//! Paper shape to reproduce: HC dominates every baseline at every
//! budget, reaching high accuracy already at low budget (88.9% low /
//! 92.0% @1000 in the paper's corpus).

use super::{aggregator_marginals, augmented_matrix, build_corpus, ExperimentOutput};
use crate::curve::{run_hc_curve, Curve, CurvePoint};
use crate::report::{curves_table, Metric};
use crate::settings::ExpSettings;
use hc_baselines::{all_aggregators, Ebcc};
use hc_core::selection::GreedySelector;
use hc_sim::{prepare, InitMethod, PipelineConfig, ReplayOracle};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// θ used throughout the main experiments (§IV-A).
pub const THETA: f64 = 0.9;

/// Runs the Figure 2 experiment.
pub fn run(settings: &ExpSettings) -> ExperimentOutput {
    let dataset = build_corpus(settings);
    let config = PipelineConfig {
        theta: THETA,
        group_size: 5,
    };

    // --- HC: EBCC init + greedy expert checking. ---
    let marginals = aggregator_marginals(&dataset, THETA, &Ebcc::new());
    let prepared = prepare(&dataset, &config, &InitMethod::Marginals(marginals))
        .expect("paper corpus prepares");
    let mut oracle =
        ReplayOracle::new(&dataset, prepared.grouping).expect("complete synthetic corpus");
    let mut rng = StdRng::seed_from_u64(settings.seed ^ 0xF162);
    let hc_curve = run_hc_curve(
        "HC",
        prepared.beliefs.clone(),
        &prepared.panel,
        &GreedySelector::new(),
        &mut oracle,
        &prepared.truths,
        1,
        settings.budget_max,
        &mut rng,
    )
    .expect("HC run succeeds")
    .sample(&settings.checkpoints);

    // --- Baselines: same budget as extra expert labels. ---
    let mut curves = vec![hc_curve];
    let baseline_curves: Vec<Curve> = std::thread::scope(|scope| {
        let handles: Vec<_> = all_aggregators()
            .into_iter()
            .map(|agg| {
                let dataset = &dataset;
                let checkpoints = &settings.checkpoints;
                scope.spawn(move || baseline_curve(dataset, agg.as_ref(), checkpoints))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    curves.extend(baseline_curves);

    let table = curves_table("Figure 2 — HC vs baselines", &curves, Metric::Accuracy);
    ExperimentOutput {
        name: "fig2".into(),
        tables: vec![table],
        curves: vec![("fig2_accuracy".into(), curves)],
        extra: None,
        telemetry: None,
    }
}

/// One baseline's accuracy-vs-budget curve.
fn baseline_curve(
    dataset: &hc_data::CrowdDataset,
    aggregator: &dyn hc_baselines::Aggregator,
    checkpoints: &[u64],
) -> Curve {
    let config = PipelineConfig {
        theta: THETA,
        group_size: 5,
    };
    let points = checkpoints
        .iter()
        .map(|&budget| {
            let matrix = augmented_matrix(dataset, THETA, budget);
            let result = aggregator
                .aggregate(&matrix)
                .expect("augmented matrix aggregates");
            let accuracy = dataset.accuracy_of(&result.map_labels());
            // Quality of the product belief built from the aggregator's
            // marginals (comparable to HC's quality axis).
            let quality = prepare(
                dataset,
                &config,
                &InitMethod::Marginals(result.binary_marginals()),
            )
            .map(|p| p.beliefs.quality())
            .unwrap_or(f64::NAN);
            CurvePoint {
                budget,
                accuracy,
                quality,
            }
        })
        .collect();
    Curve {
        label: aggregator.name().to_string(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::Scale;

    #[test]
    fn fig2_quick_shape() {
        let settings = ExpSettings::for_scale(Scale::Quick, 42);
        let out = run(&settings);
        assert_eq!(out.name, "fig2");
        let curves = &out.curves[0].1;
        assert_eq!(curves.len(), 9, "HC + 8 baselines");
        let hc = &curves[0];
        assert_eq!(hc.label, "HC");

        // Paper shape: HC at full budget beats every baseline at full
        // budget.
        let hc_final = hc.final_accuracy().unwrap();
        for baseline in &curves[1..] {
            let b_final = baseline.final_accuracy().unwrap();
            assert!(
                hc_final >= b_final,
                "HC {hc_final} below {} {b_final}",
                baseline.label
            );
        }

        // HC accuracy is non-degrading from start to end.
        let hc_start = hc.points.first().unwrap().accuracy;
        assert!(hc_final >= hc_start);
    }
}
