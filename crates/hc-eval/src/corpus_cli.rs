//! `hc-eval corpus` — crash-safe corpus-scheduler runs from the CLI.
//!
//! ```text
//! hc-eval corpus run    --out DIR [--checkpoint-every N] [--threads auto|serial|N]
//!                       [--kill-after-steps M]
//! hc-eval corpus resume --out DIR [--checkpoint-every N]
//! ```
//!
//! The corpus-level sibling of [`crate::session_cli`]: `run` drives the
//! standard four-group chaos fixture (see [`hc_sim::CorpusFixture`])
//! through [`hc_core::corpus::CorpusScheduler`] one scheduler step — one
//! group boundary — at a time, appending telemetry to
//! `DIR/corpus_trace.jsonl` and, every N steps, both embedding a corpus
//! checkpoint line in the trace and atomically replacing the snapshot
//! `DIR/corpus.ckpt`. With `--kill-after-steps M` the process aborts at
//! that boundary without flushing, exactly like a SIGKILL.
//!
//! `resume` recovers the way a restarted service would: read the
//! snapshot (falling back to the latest valid checkpoint embedded in the
//! trace), truncate the trace to its last durable checkpoint line,
//! rebuild every group's oracle and loop RNG from their fixed seeds,
//! restore the per-group oracle cursors, and continue the allocation to
//! completion. Both subcommands finish by printing a `state_crc32` line
//! over the final serialized corpus state — a crashed and resumed run
//! prints the same digest as an uninterrupted one.

use hc_core::corpus::{CorpusEnv, CorpusScheduler};
use hc_core::hc::{AnswerOracle, UnitCost};
use hc_core::selection::GreedySelector;
use hc_core::session::ResumableOracle;
use hc_core::telemetry::checkpoint::{
    crc32, is_checkpoint_line, latest_in_jsonl, read_snapshot, write_snapshot, CheckpointFrame,
};
use hc_core::telemetry::FileSink;
use hc_core::{MultiBelief, Parallelism, RoundRecord};
use hc_sim::{CorpusFixture, SamplingOracle};
use rand::rngs::StdRng;
use rand::RngCore;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const TRACE_FILE: &str = "corpus_trace.jsonl";
const SNAPSHOT_FILE: &str = "corpus.ckpt";

struct CorpusArgs {
    out: PathBuf,
    checkpoint_every: usize,
    threads: Parallelism,
    kill_after_steps: Option<usize>,
}

fn parse(raw: &[String]) -> Result<CorpusArgs, String> {
    let mut args = CorpusArgs {
        out: PathBuf::from("results"),
        checkpoint_every: 1,
        threads: Parallelism::Auto,
        kill_after_steps: None,
    };
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--out" | "-o" => args.out = PathBuf::from(value("--out")?),
            "--checkpoint-every" => {
                args.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("bad --checkpoint-every: {e}"))?;
                if args.checkpoint_every == 0 {
                    return Err("--checkpoint-every must be at least 1".to_string());
                }
            }
            "--threads" | "-t" => {
                args.threads = match value("--threads")?.as_str() {
                    "auto" => Parallelism::Auto,
                    "serial" => Parallelism::Serial,
                    n => Parallelism::Threads(
                        n.parse().map_err(|e| format!("bad thread count: {e}"))?,
                    ),
                }
            }
            "--kill-after-steps" => {
                args.kill_after_steps = Some(
                    value("--kill-after-steps")?
                        .parse()
                        .map_err(|e| format!("bad --kill-after-steps: {e}"))?,
                )
            }
            "--help" | "-h" => {
                println!(
                    "usage: hc-eval corpus run    --out DIR [--checkpoint-every N] \
                     [--threads auto|serial|N] [--kill-after-steps M]\n\
                     \x20      hc-eval corpus resume --out DIR [--checkpoint-every N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// Entry point for `hc-eval corpus <run|resume> …`.
pub fn run_cli(raw: &[String]) -> ExitCode {
    let (verb, rest) = match raw.split_first() {
        Some((v, rest)) if v == "run" || v == "resume" => (v.as_str(), rest),
        _ => {
            eprintln!("error: expected `corpus run` or `corpus resume`");
            return ExitCode::FAILURE;
        }
    };
    let args = match parse(rest) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let result = if verb == "run" {
        cmd_run(&args)
    } else {
        cmd_resume(&args)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Steps the corpus scheduler to completion, writing a checkpoint
/// (embedded trace line + atomic snapshot) every `checkpoint_every`
/// steps and at the finish. Optionally aborts the process at a step
/// boundary to simulate a crash. Prints the final summary.
#[allow(clippy::too_many_arguments)]
fn drive(
    scheduler: &mut CorpusScheduler<'_>,
    oracles: &mut [SamplingOracle<'_, StdRng>],
    rngs: &mut [StdRng],
    sink: &mut FileSink,
    snapshot_path: &Path,
    checkpoint_every: usize,
    kill_after_steps: Option<usize>,
    mut seq: u64,
) -> Result<(), String> {
    let mut steps = 0usize;
    loop {
        if kill_after_steps == Some(steps) {
            // Simulate SIGKILL at a group boundary: no flush, no Drop —
            // everything buffered since the last checkpoint is lost.
            eprintln!("killing corpus after {steps} steps (simulated crash)");
            std::process::abort();
        }
        let advanced = {
            let mut obs = |_: usize, _: &MultiBelief, _: &RoundRecord| {};
            let mut env = CorpusEnv {
                oracles: oracles
                    .iter_mut()
                    .map(|o| o as &mut dyn AnswerOracle)
                    .collect(),
                rngs: rngs.iter_mut().map(|r| r as &mut dyn RngCore).collect(),
                sink,
                observer: &mut obs,
            };
            scheduler
                .step_once(&mut env)
                .map_err(|e| format!("step failed: {e}"))?
        };
        if advanced.is_none() {
            // Complete: one last durable checkpoint, then the summary.
            seq += 1;
            checkpoint(scheduler, oracles, sink, snapshot_path, seq)?;
            for g in 0..scheduler.len() {
                scheduler.set_oracle_cursor(g, None);
            }
            let payload = scheduler.checkpoint_frame(0).payload;
            println!("steps_this_process: {steps}");
            println!("steps: {}", scheduler.steps());
            println!("spent: {}", scheduler.spent());
            println!(
                "groups_finished: {}/{}",
                scheduler.groups_finished(),
                scheduler.len()
            );
            println!("entropy: {:.6}", scheduler.entropy());
            println!("state_crc32: {:#010x}", crc32(payload.as_bytes()));
            return Ok(());
        }
        steps += 1;
        if steps.is_multiple_of(checkpoint_every) {
            seq += 1;
            checkpoint(scheduler, oracles, sink, snapshot_path, seq)?;
        }
    }
}

/// Saves every group's oracle cursor into the scheduler, then writes the
/// corpus frame both as an embedded trace line and as the snapshot.
fn checkpoint(
    scheduler: &mut CorpusScheduler<'_>,
    oracles: &[SamplingOracle<'_, StdRng>],
    sink: &mut FileSink,
    snapshot_path: &Path,
    seq: u64,
) -> Result<(), String> {
    for (g, oracle) in oracles.iter().enumerate() {
        scheduler.set_oracle_cursor(g, Some(oracle.save_cursor()));
    }
    let frame = scheduler.checkpoint_frame(seq);
    sink.write_checkpoint(&frame)
        .map_err(|e| format!("checkpoint write failed: {e}"))?;
    write_snapshot(snapshot_path, &frame).map_err(|e| format!("snapshot write failed: {e}"))
}

fn cmd_run(args: &CorpusArgs) -> Result<(), String> {
    std::fs::create_dir_all(&args.out)
        .map_err(|e| format!("cannot create {}: {e}", args.out.display()))?;
    let trace_path = args.out.join(TRACE_FILE);
    let snapshot_path = args.out.join(SNAPSHOT_FILE);
    let fixture = CorpusFixture::standard(args.threads);
    let mut scheduler = fixture.scheduler();
    let mut oracles = fixture.oracles();
    let mut rngs = fixture.loop_rngs();
    let mut sink =
        FileSink::create(&trace_path).map_err(|e| format!("cannot create trace: {e}"))?;
    drive(
        &mut scheduler,
        &mut oracles,
        &mut rngs,
        &mut sink,
        &snapshot_path,
        args.checkpoint_every,
        args.kill_after_steps,
        0,
    )?;
    finish(sink, &trace_path)
}

fn cmd_resume(args: &CorpusArgs) -> Result<(), String> {
    let trace_path = args.out.join(TRACE_FILE);
    let snapshot_path = args.out.join(SNAPSHOT_FILE);
    let trace = std::fs::read_to_string(&trace_path)
        .map_err(|e| format!("cannot read {}: {e}", trace_path.display()))?;

    // Prefer the snapshot; a missing or torn one falls back to the
    // latest valid checkpoint embedded in the trace.
    let frame = match read_snapshot(&snapshot_path) {
        Ok(frame) => Some(frame),
        Err(e) => {
            eprintln!("snapshot unusable ({e}); falling back to embedded trace checkpoints");
            latest_in_jsonl(&trace)
        }
    };
    let frame =
        frame.ok_or_else(|| "no usable checkpoint found; re-run from scratch".to_string())?;

    // Truncate the trace to its last durable checkpoint line — anything
    // after it (possibly torn) is re-emitted by the resumed corpus.
    let lines: Vec<&str> = trace.lines().collect();
    let stitch = lines
        .iter()
        .rposition(|l| is_checkpoint_line(l) && CheckpointFrame::from_json_line(l).is_ok())
        .ok_or_else(|| "trace has no valid checkpoint line".to_string())?;
    let mut durable = lines[..=stitch].join("\n");
    durable.push('\n');
    let dropped = lines.len() - stitch - 1;
    if dropped > 0 {
        eprintln!("dropping {dropped} trace line(s) after the last durable checkpoint");
    }
    std::fs::write(&trace_path, &durable).map_err(|e| format!("cannot truncate trace: {e}"))?;

    let selector = GreedySelector::new();
    let mut scheduler = CorpusScheduler::from_frame(&frame, &selector, &UnitCost)
        .map_err(|e| format!("checkpoint rejected: {e}"))?;
    // Rebuild every group's oracle and RNG from their fixed seeds and
    // restore the saved cursors; each session's thread policy rides in
    // its restored config.
    let fixture = CorpusFixture::standard(Parallelism::Auto);
    let mut oracles = fixture.oracles();
    for (g, oracle) in oracles.iter_mut().enumerate() {
        if let Some(cursor) = scheduler.session(g).state().oracle_cursor.clone() {
            oracle
                .restore_cursor(&cursor)
                .map_err(|e| format!("oracle cursor rejected: {e}"))?;
        }
    }
    let mut rngs = fixture.loop_rngs();
    let mut sink =
        FileSink::append(&trace_path).map_err(|e| format!("cannot append to trace: {e}"))?;
    drive(
        &mut scheduler,
        &mut oracles,
        &mut rngs,
        &mut sink,
        &snapshot_path,
        args.checkpoint_every,
        None,
        frame.seq,
    )?;
    finish(sink, &trace_path)
}

fn finish(sink: FileSink, trace_path: &Path) -> Result<(), String> {
    // Deferred I/O errors surface here instead of being dropped.
    sink.close()
        .map_err(|e| format!("trace file error on close: {e}"))?;
    eprintln!("trace: {}", trace_path.display());
    Ok(())
}
