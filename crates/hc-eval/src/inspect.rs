//! `hc-eval inspect` — post-hoc run inspection over a telemetry trace.
//!
//! Reads a JSONL event log (as written by the harness or
//! [`crate::telemetry::write_jsonl`]), replays it into per-round state,
//! audits it against the event-stream contract, and prints a
//! human-readable report: the run shape, a per-round regret table, a
//! selection-explain summary (when the run was recorded with
//! `HcConfig::explain_selection`), the per-round numerical-health
//! telemetry of the Bayes updates, the audit findings, and the derived
//! metrics. With `--prometheus FILE` the metrics are additionally
//! written in Prometheus text exposition format.
//!
//! Exit code contract: error-severity findings (contract violations)
//! fail the command; warnings only fail it under `--strict`.
//! Unparseable lines are skipped and reported, never fatal — a
//! truncated trace still yields a partial report (plus the audit's
//! truncation errors).

use hc_core::telemetry::replay::parse_jsonl;
use hc_core::telemetry::{audit, AuditReport, MetricsRegistry, ReplayedRun};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

/// Everything `inspect` derives from one trace.
pub struct Inspection {
    /// The replayed per-round run state.
    pub replay: ReplayedRun,
    /// Contract-violation and anomaly findings.
    pub audit: AuditReport,
    /// Counters/gauges/histograms derived from the events.
    pub metrics: MetricsRegistry,
    /// The rendered console report.
    pub report: String,
}

impl Inspection {
    /// Whether the trace passes: no errors, and no warnings if
    /// `strict`.
    pub fn passes(&self, strict: bool) -> bool {
        self.audit.error_count() == 0 && (!strict || self.audit.warning_count() == 0)
    }
}

/// Inspects a JSONL trace held in memory.
pub fn inspect_str(name: &str, text: &str) -> Inspection {
    let (events, _) = parse_jsonl(text);
    let replay = ReplayedRun::from_jsonl(text);
    let audit = audit(&events);
    let metrics = MetricsRegistry::from_events(&events);
    let report = render_report(name, &replay, &audit, &metrics);
    Inspection {
        replay,
        audit,
        metrics,
        report,
    }
}

fn render_report(
    name: &str,
    replay: &ReplayedRun,
    audit: &AuditReport,
    metrics: &MetricsRegistry,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# run inspector — {name}");
    let _ = writeln!(
        out,
        "{} event(s), {} round(s), {} skipped line(s)",
        replay.events,
        replay.rounds.len(),
        replay.skipped.len()
    );
    for skip in &replay.skipped {
        let _ = writeln!(out, "  skipped line {}: {}", skip.line, skip.error);
    }

    let _ = writeln!(out, "\n## run shape");
    match replay.shape {
        Some(s) => {
            let _ = writeln!(
                out,
                "tasks {} | facts {} | panel {} | budget {} | k {}",
                s.tasks, s.facts, s.panel, s.budget, s.k
            );
            let _ = writeln!(
                out,
                "initial entropy {:.6} nats | initial quality {:.6}",
                s.entropy, s.quality
            );
        }
        None => {
            let _ = writeln!(out, "(no RunStarted event — truncated or corrupt trace)");
        }
    }
    match replay.end {
        Some(e) => {
            let _ = writeln!(
                out,
                "finished after {} round(s): spent {} | entropy {:.6} | quality {:.6} | stop: {:?}",
                e.rounds, e.budget_spent, e.entropy, e.quality, e.reason
            );
        }
        None => {
            let _ = writeln!(out, "(no RunFinished event — run did not close)");
        }
    }

    let _ = writeln!(out, "\n## rounds");
    if replay.rounds.is_empty() {
        let _ = writeln!(out, "(none)");
    } else {
        let _ = writeln!(
            out,
            "{:>5} {:>3} {:>5} {:>5} {:>4} {:>4} {:>5} {:>6} {:>12} {:>12} {:>11} {:>7}",
            "round",
            "k",
            "disp",
            "deliv",
            "t/o",
            "drop",
            "retry",
            "fault",
            "predicted",
            "realized",
            "regret",
            "spent"
        );
        for r in &replay.rounds {
            let realized = r
                .realized_entropy
                .map_or_else(|| "?".to_string(), |v| format!("{v:.6}"));
            let regret = r
                .regret()
                .map_or_else(|| "?".to_string(), |v| format!("{v:+.2e}"));
            let spent = r
                .budget_spent
                .map_or_else(|| "?".to_string(), |v| v.to_string());
            let _ = writeln!(
                out,
                "{:>5} {:>3} {:>5} {:>5} {:>4} {:>4} {:>5} {:>6} {:>12.6} {:>12} {:>11} {:>7}",
                r.round,
                r.k_effective,
                r.dispatched,
                r.delivered,
                r.timed_out,
                r.dropped,
                r.retries,
                r.faults,
                r.predicted_entropy,
                realized,
                regret,
                spent
            );
        }
    }

    let scored_total: usize = replay.rounds.iter().map(|r| r.candidates_scored).sum();
    let picks_total: usize = replay.rounds.iter().map(|r| r.selected.len()).sum();
    let _ = writeln!(out, "\n## selection explain");
    if scored_total == 0 && picks_total == 0 {
        let _ = writeln!(
            out,
            "(no explain events — record with HcConfig::explain_selection to get per-pick gains)"
        );
    } else {
        let _ = writeln!(
            out,
            "{scored_total} candidate scoring(s), {picks_total} explained pick(s)"
        );
        for r in &replay.rounds {
            if r.selected.is_empty() {
                continue;
            }
            let picks: Vec<String> = r
                .selected
                .iter()
                .map(|s| {
                    format!(
                        "#{} ({},{}) gain {:.3e}",
                        s.query_id, s.task, s.fact, s.gain
                    )
                })
                .collect();
            let _ = writeln!(
                out,
                "round {:>3}: {} gain(s) evaluated → {}",
                r.round,
                r.candidates_scored,
                picks.join(", ")
            );
        }
    }

    let _ = writeln!(out, "\n## numerical health");
    let with_health: Vec<_> = replay
        .rounds
        .iter()
        .filter_map(|r| r.health.map(|h| (r.round, h)))
        .collect();
    if with_health.is_empty() {
        let _ = writeln!(
            out,
            "(no numerical_health events — trace predates health telemetry)"
        );
    } else {
        let rescued = with_health.iter().filter(|(_, h)| h.rescued).count();
        let clamps: u64 = with_health.iter().map(|(_, h)| h.clamp_count).sum();
        let _ = writeln!(
            out,
            "{} report(s), {} rescued round(s), {} clamped cell(s)",
            with_health.len(),
            rescued,
            clamps
        );
        for (round, h) in &with_health {
            let _ = writeln!(
                out,
                "round {:>3}: min mass {:.3e} | renorm scale {:.3e} | log evidence {:+.4} | clamps {}{}",
                round,
                h.min_mass,
                h.renorm_scale,
                h.log_evidence,
                h.clamp_count,
                if h.rescued { " | RESCUED" } else { "" }
            );
        }
    }

    let _ = writeln!(out, "\n## audit");
    out.push_str(&audit.render());

    let _ = writeln!(out, "\n## metrics");
    out.push_str(&metrics.render_table());
    out
}

/// Flags of the `inspect` subcommand.
struct InspectArgs {
    trace: PathBuf,
    strict: bool,
    prometheus: Option<PathBuf>,
}

fn parse_inspect_args(args: &[String]) -> Result<InspectArgs, String> {
    let mut trace: Option<PathBuf> = None;
    let mut strict = false;
    let mut prometheus: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--strict" => strict = true,
            "--prometheus" => {
                let value = it
                    .next()
                    .ok_or_else(|| "missing value for --prometheus".to_string())?;
                prometheus = Some(PathBuf::from(value));
            }
            "--help" | "-h" => {
                return Err("usage: hc-eval inspect <run.jsonl> [--strict] [--prometheus FILE]"
                    .to_string())
            }
            other if trace.is_none() && !other.starts_with('-') => {
                trace = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown inspect flag {other:?}")),
        }
    }
    let trace = trace.ok_or_else(|| {
        "usage: hc-eval inspect <run.jsonl> [--strict] [--prometheus FILE]".to_string()
    })?;
    Ok(InspectArgs {
        trace,
        strict,
        prometheus,
    })
}

/// Entry point of `hc-eval inspect`, called from `main` with the
/// arguments after the subcommand word. Prints the report to stdout
/// and returns the exit code per the module contract.
pub fn run_cli(args: &[String]) -> ExitCode {
    let parsed = match parse_inspect_args(args) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&parsed.trace) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", parsed.trace.display());
            return ExitCode::FAILURE;
        }
    };
    let name = parsed.trace.display().to_string();
    let inspection = inspect_str(&name, &text);
    println!("{}", inspection.report);
    if let Some(path) = &parsed.prometheus {
        if let Err(e) = std::fs::write(path, inspection.metrics.to_prometheus()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("prometheus metrics written to {}", path.display());
    }
    if inspection.passes(parsed.strict) {
        ExitCode::SUCCESS
    } else {
        let errors = inspection.audit.error_count();
        let warnings = inspection.audit.warning_count();
        eprintln!("inspect: failing ({errors} error(s), {warnings} warning(s))");
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_core::telemetry::{StopReason, TelemetryEvent};

    fn clean_trace() -> String {
        let events = vec![
            TelemetryEvent::RunStarted {
                tasks: 1,
                facts: 3,
                panel: 1,
                budget: 4,
                k: 1,
                entropy: 2.0,
                quality: -2.0,
            },
            TelemetryEvent::RoundSelected {
                round: 1,
                k_requested: 1,
                k_effective: 1,
                queries: vec![(0, 1)],
                entropy_before: 2.0,
                predicted_entropy: 1.5,
            },
            TelemetryEvent::QuerySelected {
                round: 1,
                step: 0,
                task: 0,
                fact: 1,
                gain: 0.5,
                query_id: 1,
            },
            TelemetryEvent::QueryDispatched {
                round: 1,
                task: 0,
                fact: 1,
                worker: 0,
                query_id: 1,
            },
            TelemetryEvent::AnswerDelivered {
                round: 1,
                task: 0,
                fact: 1,
                worker: 0,
                query_id: 1,
                answer: true,
            },
            TelemetryEvent::BeliefUpdated {
                round: 1,
                entropy: 1.4,
                quality: -1.4,
                budget_spent: 1,
                answers_requested: 1,
                answers_received: 1,
            },
            TelemetryEvent::NumericalHealth {
                round: 1,
                min_mass: 0.02,
                renorm_scale: 0.55,
                log_evidence: -0.597_837,
                clamp_count: 0,
                rescued: false,
            },
            TelemetryEvent::RunFinished {
                rounds: 1,
                budget_spent: 1,
                entropy: 1.4,
                quality: -1.4,
                reason: StopReason::MaxRounds,
            },
        ];
        let mut text = String::new();
        for e in &events {
            text.push_str(&e.to_json_line());
            text.push('\n');
        }
        text
    }

    #[test]
    fn clean_trace_passes_and_reports_every_section() {
        let inspection = inspect_str("unit", &clean_trace());
        assert!(inspection.passes(true), "{}", inspection.audit.render());
        assert!(inspection.report.contains("run inspector — unit"));
        assert!(inspection.report.contains("## run shape"));
        assert!(inspection.report.contains("## rounds"));
        assert!(inspection.report.contains("## selection explain"));
        assert!(inspection.report.contains("## numerical health"));
        assert!(inspection.report.contains("1 report(s), 0 rescued round(s)"));
        assert!(inspection.report.contains("audit: clean"));
        assert!(inspection.report.contains("## metrics"));
        assert!(inspection.report.contains("gain 5.000e-1"));
    }

    #[test]
    fn rescued_round_is_surfaced_in_the_report() {
        let mut text = String::new();
        for line in clean_trace().lines() {
            if line.contains("numerical_health") {
                text.push_str(
                    &TelemetryEvent::NumericalHealth {
                        round: 1,
                        min_mass: 1e-14,
                        renorm_scale: 0.4,
                        log_evidence: -730.25,
                        clamp_count: 5,
                        rescued: true,
                    }
                    .to_json_line(),
                );
            } else {
                text.push_str(line);
            }
            text.push('\n');
        }
        let inspection = inspect_str("unit", &text);
        assert!(inspection.report.contains("1 rescued round(s)"));
        assert!(inspection.report.contains("5 clamped cell(s)"));
        assert!(inspection.report.contains("RESCUED"));
        assert!(inspection.report.contains("near_collapse"));
        // A rescue is a warning, not a contract violation: plain
        // inspect passes, strict does not.
        assert!(inspection.passes(false), "{}", inspection.audit.render());
        assert!(!inspection.passes(true));
    }

    #[test]
    fn truncated_trace_fails_but_still_renders() {
        let full = clean_trace();
        let truncated: String = full
            .lines()
            .take(2)
            .flat_map(|l| [l, "\n"])
            .collect();
        let inspection = inspect_str("unit", &truncated);
        assert!(!inspection.passes(false));
        assert!(inspection.audit.error_count() > 0);
        assert!(inspection.report.contains("## rounds"));
        assert!(inspection.report.contains("(no RunFinished event"));
    }

    #[test]
    fn bad_lines_are_reported_not_fatal() {
        let mut text = clean_trace();
        text.push_str("not json\n");
        let inspection = inspect_str("unit", &text);
        assert_eq!(inspection.replay.skipped.len(), 1);
        assert!(inspection.report.contains("skipped line 9"));
        // Parse damage does not invent contract violations here: the
        // garbage line is after RunFinished.
        assert!(inspection.passes(true), "{}", inspection.audit.render());
    }

    #[test]
    fn inspect_arg_parsing() {
        let ok = parse_inspect_args(&[
            "trace.jsonl".to_string(),
            "--strict".to_string(),
            "--prometheus".to_string(),
            "out.prom".to_string(),
        ])
        .unwrap();
        assert_eq!(ok.trace, PathBuf::from("trace.jsonl"));
        assert!(ok.strict);
        assert_eq!(ok.prometheus, Some(PathBuf::from("out.prom")));
        assert!(parse_inspect_args(&[]).is_err());
        assert!(parse_inspect_args(&["--bogus".to_string()]).is_err());
    }
}
