//! `hc-eval inspect` — post-hoc run inspection over a telemetry trace.
//!
//! Reads a JSONL event log (as written by the harness or
//! [`crate::telemetry::write_jsonl`]), replays it into per-round state,
//! audits it against the event-stream contract, and prints a
//! human-readable report: the run shape, a per-round regret table, a
//! selection-explain summary (when the run was recorded with
//! `HcConfig::explain_selection`), the per-round numerical-health
//! telemetry of the Bayes updates, the profiling span tree (when the
//! run was recorded with `HcConfig::profile`), the per-worker crowd
//! health ledger (delivery/agreement/latency/drift), the audit
//! findings, and the derived metrics. With `--prometheus FILE` the metrics are
//! additionally written in Prometheus text exposition format. With
//! `--json` the whole inspection — shape, regret table, health,
//! profile, audit findings — is printed as one machine-readable JSON
//! object instead of the console report.
//!
//! Exit code contract: error-severity findings (contract violations)
//! fail the command; warnings only fail it under `--strict`.
//! Unparseable lines are skipped and reported, never fatal — a
//! truncated trace still yields a partial report (plus the audit's
//! truncation errors).

use hc_core::telemetry::json::Json;
use hc_core::telemetry::replay::parse_jsonl;
use hc_core::telemetry::{audit, AuditReport, CrowdLedger, MetricsRegistry, ReplayedRun, Severity};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

/// Everything `inspect` derives from one trace.
pub struct Inspection {
    /// The replayed per-round run state.
    pub replay: ReplayedRun,
    /// Contract-violation and anomaly findings.
    pub audit: AuditReport,
    /// Counters/gauges/histograms derived from the events.
    pub metrics: MetricsRegistry,
    /// Per-worker crowd-health ledger folded from the events.
    pub crowd: CrowdLedger,
    /// The rendered console report.
    pub report: String,
}

impl Inspection {
    /// Whether the trace passes: no errors, and no warnings if
    /// `strict`.
    pub fn passes(&self, strict: bool) -> bool {
        self.audit.error_count() == 0 && (!strict || self.audit.warning_count() == 0)
    }
}

/// Inspects a JSONL trace held in memory.
pub fn inspect_str(name: &str, text: &str) -> Inspection {
    let (events, _) = parse_jsonl(text);
    let replay = ReplayedRun::from_jsonl(text);
    let audit = audit(&events);
    let metrics = MetricsRegistry::from_events(&events);
    let crowd = CrowdLedger::from_events(&events);
    let report = render_report(name, &replay, &audit, &metrics, &crowd);
    Inspection {
        replay,
        audit,
        metrics,
        crowd,
        report,
    }
}

fn render_report(
    name: &str,
    replay: &ReplayedRun,
    audit: &AuditReport,
    metrics: &MetricsRegistry,
    crowd: &CrowdLedger,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# run inspector — {name}");
    let _ = writeln!(
        out,
        "{} event(s), {} round(s), {} skipped line(s)",
        replay.events,
        replay.rounds.len(),
        replay.skipped.len()
    );
    for skip in &replay.skipped {
        let _ = writeln!(out, "  skipped line {}: {}", skip.line, skip.error);
    }

    let _ = writeln!(out, "\n## run shape");
    match replay.shape {
        Some(s) => {
            let _ = writeln!(
                out,
                "tasks {} | facts {} | panel {} | budget {} | k {} | belief {}",
                s.tasks,
                s.facts,
                s.panel,
                s.budget,
                s.k,
                s.belief_repr.name()
            );
            let _ = writeln!(
                out,
                "initial entropy {:.6} nats | initial quality {:.6}",
                s.entropy, s.quality
            );
        }
        None => {
            let _ = writeln!(out, "(no RunStarted event — truncated or corrupt trace)");
        }
    }
    match replay.end {
        Some(e) => {
            let _ = writeln!(
                out,
                "finished after {} round(s): spent {} | entropy {:.6} | quality {:.6} | stop: {:?}",
                e.rounds, e.budget_spent, e.entropy, e.quality, e.reason
            );
        }
        None => {
            let _ = writeln!(out, "(no RunFinished event — run did not close)");
        }
    }

    let _ = writeln!(out, "\n## rounds");
    if replay.rounds.is_empty() {
        let _ = writeln!(out, "(none)");
    } else {
        let _ = writeln!(
            out,
            "{:>5} {:>3} {:>5} {:>5} {:>4} {:>4} {:>5} {:>6} {:>12} {:>12} {:>11} {:>7}",
            "round",
            "k",
            "disp",
            "deliv",
            "t/o",
            "drop",
            "retry",
            "fault",
            "predicted",
            "realized",
            "regret",
            "spent"
        );
        for r in &replay.rounds {
            let realized = r
                .realized_entropy
                .map_or_else(|| "?".to_string(), |v| format!("{v:.6}"));
            let regret = r
                .regret()
                .map_or_else(|| "?".to_string(), |v| format!("{v:+.2e}"));
            let spent = r
                .budget_spent
                .map_or_else(|| "?".to_string(), |v| v.to_string());
            let _ = writeln!(
                out,
                "{:>5} {:>3} {:>5} {:>5} {:>4} {:>4} {:>5} {:>6} {:>12.6} {:>12} {:>11} {:>7}",
                r.round,
                r.k_effective,
                r.dispatched,
                r.delivered,
                r.timed_out,
                r.dropped,
                r.retries,
                r.faults,
                r.predicted_entropy,
                realized,
                regret,
                spent
            );
        }
    }

    let scored_total: usize = replay.rounds.iter().map(|r| r.candidates_scored).sum();
    let picks_total: usize = replay.rounds.iter().map(|r| r.selected.len()).sum();
    let _ = writeln!(out, "\n## selection explain");
    if scored_total == 0 && picks_total == 0 {
        let _ = writeln!(
            out,
            "(no explain events — record with HcConfig::explain_selection to get per-pick gains)"
        );
    } else {
        let _ = writeln!(
            out,
            "{scored_total} candidate scoring(s), {picks_total} explained pick(s)"
        );
        for r in &replay.rounds {
            if r.selected.is_empty() {
                continue;
            }
            let picks: Vec<String> = r
                .selected
                .iter()
                .map(|s| {
                    format!(
                        "#{} ({},{}) gain {:.3e}",
                        s.query_id, s.task, s.fact, s.gain
                    )
                })
                .collect();
            let _ = writeln!(
                out,
                "round {:>3}: {} gain(s) evaluated → {}",
                r.round,
                r.candidates_scored,
                picks.join(", ")
            );
        }
    }

    let _ = writeln!(out, "\n## numerical health");
    let with_health: Vec<_> = replay
        .rounds
        .iter()
        .filter_map(|r| r.health.map(|h| (r.round, h)))
        .collect();
    if with_health.is_empty() {
        let _ = writeln!(
            out,
            "(no numerical_health events — trace predates health telemetry)"
        );
    } else {
        let rescued = with_health.iter().filter(|(_, h)| h.rescued).count();
        let clamps: u64 = with_health.iter().map(|(_, h)| h.clamp_count).sum();
        let _ = writeln!(
            out,
            "{} report(s), {} rescued round(s), {} clamped cell(s)",
            with_health.len(),
            rescued,
            clamps
        );
        for (round, h) in &with_health {
            let _ = writeln!(
                out,
                "round {:>3}: min mass {:.3e} | renorm scale {:.3e} | log evidence {:+.4} | clamps {}{}",
                round,
                h.min_mass,
                h.renorm_scale,
                h.log_evidence,
                h.clamp_count,
                if h.rescued { " | RESCUED" } else { "" }
            );
        }
    }

    let _ = writeln!(out, "\n## profile");
    match &replay.profile {
        None => {
            let _ = writeln!(
                out,
                "(no profile_report event — record with HcConfig::profile to get span timings)"
            );
        }
        Some(p) => {
            let _ = writeln!(out, "span tree (inclusive | self):");
            for span in &p.spans {
                let depth = span.path.matches('/').count();
                let name = span.path.rsplit('/').next().unwrap_or(&span.path);
                let _ = writeln!(
                    out,
                    "  {:indent$}{:<width$} ×{:<6} {:>10} | {:>10}",
                    "",
                    name,
                    span.count,
                    fmt_nanos(span.total_nanos as f64),
                    fmt_nanos(span.self_nanos as f64),
                    indent = depth * 2,
                    width = 24usize.saturating_sub(depth * 2),
                );
            }
            let _ = writeln!(out, "phase latency:");
            let _ = writeln!(
                out,
                "  {:<16} {:>7} {:>10} {:>10} {:>10} {:>10}",
                "phase", "count", "total", "p50", "p95", "p99"
            );
            for ph in &p.phases {
                let _ = writeln!(
                    out,
                    "  {:<16} {:>7} {:>10} {:>10} {:>10} {:>10}",
                    ph.phase,
                    ph.count,
                    fmt_nanos(ph.total_nanos as f64),
                    fmt_nanos(ph.p50_nanos),
                    fmt_nanos(ph.p95_nanos),
                    fmt_nanos(ph.p99_nanos),
                );
            }
            let _ = writeln!(out, "work counters:");
            for (name, value) in &p.counters {
                let _ = writeln!(out, "  {name} = {value}");
            }
        }
    }

    let _ = writeln!(out, "\n## crowd health");
    out.push_str(&crowd.render());

    let _ = writeln!(out, "\n## audit");
    out.push_str(&audit.render());

    let _ = writeln!(out, "\n## metrics");
    out.push_str(&metrics.render_table());
    out
}

/// Renders a nanosecond count at a human scale (ns/µs/ms/s).
fn fmt_nanos(n: f64) -> String {
    if !n.is_finite() {
        "?".to_string()
    } else if n >= 1e9 {
        format!("{:.3}s", n / 1e9)
    } else if n >= 1e6 {
        format!("{:.3}ms", n / 1e6)
    } else if n >= 1e3 {
        format!("{:.3}µs", n / 1e3)
    } else {
        format!("{n:.0}ns")
    }
}

/// Builds a JSON object from string keys (helper for [`Inspection::to_json`]).
fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn opt_f64(v: Option<f64>) -> Json {
    v.map_or(Json::Null, Json::Num)
}

fn opt_u64(v: Option<u64>) -> Json {
    v.map_or(Json::Null, |n| Json::Num(n as f64))
}

impl Inspection {
    /// The whole inspection as one machine-readable JSON object: run
    /// shape and end, the per-round regret table, numerical health,
    /// the profile (when recorded), the per-worker crowd ledger, and
    /// the audit findings. Key order
    /// is sorted (BTreeMap encoding), so the output is deterministic;
    /// the schema is snapshot-tested.
    pub fn to_json(&self, name: &str) -> Json {
        let shape = self.replay.shape.map_or(Json::Null, |s| {
            obj(vec![
                ("tasks", Json::Num(s.tasks as f64)),
                ("facts", Json::Num(s.facts as f64)),
                ("panel", Json::Num(s.panel as f64)),
                ("budget", Json::Num(s.budget as f64)),
                ("k", Json::Num(s.k as f64)),
                ("entropy", Json::Num(s.entropy)),
                ("quality", Json::Num(s.quality)),
                ("belief_repr", Json::Str(s.belief_repr.name().to_string())),
            ])
        });
        let end = self.replay.end.map_or(Json::Null, |e| {
            obj(vec![
                ("rounds", Json::Num(e.rounds as f64)),
                ("budget_spent", Json::Num(e.budget_spent as f64)),
                ("entropy", Json::Num(e.entropy)),
                ("quality", Json::Num(e.quality)),
                ("reason", Json::Str(e.reason.name().to_string())),
            ])
        });
        let rounds: Vec<Json> = self
            .replay
            .rounds
            .iter()
            .map(|r| {
                let selected: Vec<Json> = r
                    .selected
                    .iter()
                    .map(|s| {
                        obj(vec![
                            ("step", Json::Num(s.step as f64)),
                            ("task", Json::Num(s.task as f64)),
                            ("fact", Json::Num(f64::from(s.fact))),
                            ("gain", Json::Num(s.gain)),
                            ("query_id", Json::Num(s.query_id as f64)),
                        ])
                    })
                    .collect();
                obj(vec![
                    ("round", Json::Num(r.round as f64)),
                    ("k_requested", Json::Num(r.k_requested as f64)),
                    ("k_effective", Json::Num(r.k_effective as f64)),
                    ("entropy_before", Json::Num(r.entropy_before)),
                    ("predicted_entropy", Json::Num(r.predicted_entropy)),
                    ("realized_entropy", opt_f64(r.realized_entropy)),
                    ("regret", opt_f64(r.regret())),
                    ("quality", opt_f64(r.quality)),
                    ("budget_spent", opt_u64(r.budget_spent)),
                    ("answers_requested", Json::Num(r.answers_requested as f64)),
                    ("answers_received", Json::Num(r.answers_received as f64)),
                    ("dispatched", Json::Num(r.dispatched as f64)),
                    ("delivered", Json::Num(r.delivered as f64)),
                    ("timed_out", Json::Num(r.timed_out as f64)),
                    ("dropped", Json::Num(r.dropped as f64)),
                    ("retries", Json::Num(r.retries as f64)),
                    ("faults", Json::Num(r.faults as f64)),
                    ("candidates_scored", Json::Num(r.candidates_scored as f64)),
                    ("selected", Json::Arr(selected)),
                ])
            })
            .collect();
        let health: Vec<Json> = self
            .replay
            .rounds
            .iter()
            .filter_map(|r| r.health.map(|h| (r.round, h)))
            .map(|(round, h)| {
                obj(vec![
                    ("round", Json::Num(round as f64)),
                    ("min_mass", Json::Num(h.min_mass)),
                    ("renorm_scale", Json::Num(h.renorm_scale)),
                    ("log_evidence", Json::Num(h.log_evidence)),
                    ("clamp_count", Json::Num(h.clamp_count as f64)),
                    ("rescued", Json::Bool(h.rescued)),
                ])
            })
            .collect();
        let findings: Vec<Json> = self
            .audit
            .findings
            .iter()
            .map(|f| {
                obj(vec![
                    (
                        "severity",
                        Json::Str(match f.severity {
                            Severity::Error => "error".to_string(),
                            Severity::Warning => "warning".to_string(),
                        }),
                    ),
                    ("code", Json::Str(f.code.to_string())),
                    ("round", opt_u64(f.round.map(|r| r as u64))),
                    ("message", Json::Str(f.message.clone())),
                ])
            })
            .collect();
        let audit = obj(vec![
            ("error_count", Json::Num(self.audit.error_count() as f64)),
            (
                "warning_count",
                Json::Num(self.audit.warning_count() as f64),
            ),
            ("findings", Json::Arr(findings)),
        ]);
        let profile = self.replay.profile.as_ref().map_or(Json::Null, |p| {
            let spans: Vec<Json> = p
                .spans
                .iter()
                .map(|s| {
                    obj(vec![
                        ("path", Json::Str(s.path.clone())),
                        ("count", Json::Num(s.count as f64)),
                        ("total_nanos", Json::Num(s.total_nanos as f64)),
                        ("self_nanos", Json::Num(s.self_nanos as f64)),
                    ])
                })
                .collect();
            let phases: Vec<Json> = p
                .phases
                .iter()
                .map(|ph| {
                    obj(vec![
                        ("phase", Json::Str(ph.phase.clone())),
                        ("count", Json::Num(ph.count as f64)),
                        ("total_nanos", Json::Num(ph.total_nanos as f64)),
                        ("min_nanos", Json::Num(ph.min_nanos as f64)),
                        ("max_nanos", Json::Num(ph.max_nanos as f64)),
                        ("p50_nanos", Json::Num(ph.p50_nanos)),
                        ("p95_nanos", Json::Num(ph.p95_nanos)),
                        ("p99_nanos", Json::Num(ph.p99_nanos)),
                    ])
                })
                .collect();
            let counters: Vec<(&str, Json)> = p
                .counters
                .iter()
                .map(|(n, v)| (n.as_str(), Json::Num(*v as f64)))
                .collect();
            obj(vec![
                ("spans", Json::Arr(spans)),
                ("phases", Json::Arr(phases)),
                ("counters", obj(counters)),
            ])
        });
        let skipped: Vec<Json> = self
            .replay
            .skipped
            .iter()
            .map(|s| {
                obj(vec![
                    ("line", Json::Num(s.line as f64)),
                    ("error", Json::Str(s.error.clone())),
                ])
            })
            .collect();
        obj(vec![
            ("name", Json::Str(name.to_string())),
            ("events", Json::Num(self.replay.events as f64)),
            ("shape", shape),
            ("end", end),
            ("rounds", Json::Arr(rounds)),
            ("health", Json::Arr(health)),
            ("profile", profile),
            ("crowd", self.crowd.to_json()),
            ("audit", audit),
            ("skipped", Json::Arr(skipped)),
            (
                "passes",
                obj(vec![
                    ("plain", Json::Bool(self.passes(false))),
                    ("strict", Json::Bool(self.passes(true))),
                ]),
            ),
        ])
    }
}

/// Flags of the `inspect` subcommand.
struct InspectArgs {
    trace: PathBuf,
    strict: bool,
    json: bool,
    prometheus: Option<PathBuf>,
}

fn parse_inspect_args(args: &[String]) -> Result<InspectArgs, String> {
    const USAGE: &str =
        "usage: hc-eval inspect <run.jsonl> [--strict] [--json] [--prometheus FILE]";
    let mut trace: Option<PathBuf> = None;
    let mut strict = false;
    let mut json = false;
    let mut prometheus: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--strict" => strict = true,
            "--json" => json = true,
            "--prometheus" => {
                let value = it
                    .next()
                    .ok_or_else(|| "missing value for --prometheus".to_string())?;
                prometheus = Some(PathBuf::from(value));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if trace.is_none() && !other.starts_with('-') => {
                trace = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown inspect flag {other:?}")),
        }
    }
    let trace = trace.ok_or_else(|| USAGE.to_string())?;
    Ok(InspectArgs {
        trace,
        strict,
        json,
        prometheus,
    })
}

/// Entry point of `hc-eval inspect`, called from `main` with the
/// arguments after the subcommand word. Prints the report to stdout
/// and returns the exit code per the module contract.
pub fn run_cli(args: &[String]) -> ExitCode {
    let parsed = match parse_inspect_args(args) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&parsed.trace) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", parsed.trace.display());
            return ExitCode::FAILURE;
        }
    };
    let name = parsed.trace.display().to_string();
    let inspection = inspect_str(&name, &text);
    if parsed.json {
        println!("{}", inspection.to_json(&name));
    } else {
        println!("{}", inspection.report);
    }
    if let Some(path) = &parsed.prometheus {
        if let Err(e) = std::fs::write(path, inspection.metrics.to_prometheus()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("prometheus metrics written to {}", path.display());
    }
    if inspection.passes(parsed.strict) {
        ExitCode::SUCCESS
    } else {
        let errors = inspection.audit.error_count();
        let warnings = inspection.audit.warning_count();
        eprintln!("inspect: failing ({errors} error(s), {warnings} warning(s))");
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_core::telemetry::{StopReason, TelemetryEvent};

    fn clean_trace() -> String {
        let events = vec![
            TelemetryEvent::RunStarted {
                tasks: 1,
                facts: 3,
                panel: 1,
                budget: 4,
                k: 1,
                entropy: 2.0,
                quality: -2.0,
                belief_repr: Default::default(),
            },
            TelemetryEvent::RoundSelected {
                round: 1,
                k_requested: 1,
                k_effective: 1,
                queries: vec![(0, 1)],
                entropy_before: 2.0,
                predicted_entropy: 1.5,
            },
            TelemetryEvent::QuerySelected {
                round: 1,
                step: 0,
                task: 0,
                fact: 1,
                gain: 0.5,
                query_id: 1,
            },
            TelemetryEvent::QueryDispatched {
                round: 1,
                task: 0,
                fact: 1,
                worker: 0,
                query_id: 1,
            },
            TelemetryEvent::AnswerDelivered {
                round: 1,
                task: 0,
                fact: 1,
                worker: 0,
                query_id: 1,
                answer: true,
            },
            TelemetryEvent::BeliefUpdated {
                round: 1,
                entropy: 1.4,
                quality: -1.4,
                budget_spent: 1,
                answers_requested: 1,
                answers_received: 1,
            },
            TelemetryEvent::NumericalHealth {
                round: 1,
                min_mass: 0.02,
                renorm_scale: 0.55,
                log_evidence: -0.597_837,
                clamp_count: 0,
                rescued: false,
            },
            TelemetryEvent::RunFinished {
                rounds: 1,
                budget_spent: 1,
                entropy: 1.4,
                quality: -1.4,
                reason: StopReason::MaxRounds,
            },
        ];
        let mut text = String::new();
        for e in &events {
            text.push_str(&e.to_json_line());
            text.push('\n');
        }
        text
    }

    #[test]
    fn clean_trace_passes_and_reports_every_section() {
        let inspection = inspect_str("unit", &clean_trace());
        assert!(inspection.passes(true), "{}", inspection.audit.render());
        assert!(inspection.report.contains("run inspector — unit"));
        assert!(inspection.report.contains("## run shape"));
        assert!(inspection.report.contains("## rounds"));
        assert!(inspection.report.contains("## selection explain"));
        assert!(inspection.report.contains("## numerical health"));
        assert!(inspection.report.contains("1 report(s), 0 rescued round(s)"));
        assert!(inspection.report.contains("## crowd health"));
        assert!(inspection.report.contains("audit: clean"));
        assert!(inspection.report.contains("## metrics"));
        assert!(inspection.report.contains("gain 5.000e-1"));
    }

    #[test]
    fn crowd_section_lists_per_worker_rows() {
        let inspection = inspect_str("unit", &clean_trace());
        // The clean trace has one delivering worker; the ledger renders
        // a row for it and the JSON carries the same counts.
        assert_eq!(inspection.crowd.workers.len(), 1);
        let w = &inspection.crowd.workers[&0];
        assert_eq!(w.dispatched, 1);
        assert_eq!(w.delivered, 1);
        let json = inspection.to_json("unit");
        let crowd = json.get("crowd").expect("crowd key");
        let rows = crowd.get("workers").and_then(Json::as_arr).expect("workers");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("delivered").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn rescued_round_is_surfaced_in_the_report() {
        let mut text = String::new();
        for line in clean_trace().lines() {
            if line.contains("numerical_health") {
                text.push_str(
                    &TelemetryEvent::NumericalHealth {
                        round: 1,
                        min_mass: 1e-14,
                        renorm_scale: 0.4,
                        log_evidence: -730.25,
                        clamp_count: 5,
                        rescued: true,
                    }
                    .to_json_line(),
                );
            } else {
                text.push_str(line);
            }
            text.push('\n');
        }
        let inspection = inspect_str("unit", &text);
        assert!(inspection.report.contains("1 rescued round(s)"));
        assert!(inspection.report.contains("5 clamped cell(s)"));
        assert!(inspection.report.contains("RESCUED"));
        assert!(inspection.report.contains("near_collapse"));
        // A rescue is a warning, not a contract violation: plain
        // inspect passes, strict does not.
        assert!(inspection.passes(false), "{}", inspection.audit.render());
        assert!(!inspection.passes(true));
    }

    #[test]
    fn truncated_trace_fails_but_still_renders() {
        let full = clean_trace();
        let truncated: String = full
            .lines()
            .take(2)
            .flat_map(|l| [l, "\n"])
            .collect();
        let inspection = inspect_str("unit", &truncated);
        assert!(!inspection.passes(false));
        assert!(inspection.audit.error_count() > 0);
        assert!(inspection.report.contains("## rounds"));
        assert!(inspection.report.contains("(no RunFinished event"));
    }

    #[test]
    fn bad_lines_are_reported_not_fatal() {
        let mut text = clean_trace();
        text.push_str("not json\n");
        let inspection = inspect_str("unit", &text);
        assert_eq!(inspection.replay.skipped.len(), 1);
        assert!(inspection.report.contains("skipped line 9"));
        // Parse damage does not invent contract violations here: the
        // garbage line is after RunFinished.
        assert!(inspection.passes(true), "{}", inspection.audit.render());
    }

    #[test]
    fn inspect_arg_parsing() {
        let ok = parse_inspect_args(&[
            "trace.jsonl".to_string(),
            "--strict".to_string(),
            "--json".to_string(),
            "--prometheus".to_string(),
            "out.prom".to_string(),
        ])
        .unwrap();
        assert_eq!(ok.trace, PathBuf::from("trace.jsonl"));
        assert!(ok.strict);
        assert!(ok.json);
        assert_eq!(ok.prometheus, Some(PathBuf::from("out.prom")));
        assert!(!parse_inspect_args(&["trace.jsonl".to_string()]).unwrap().json);
        assert!(parse_inspect_args(&[]).is_err());
        assert!(parse_inspect_args(&["--bogus".to_string()]).is_err());
    }

    use hc_core::telemetry::{PhaseProfile, ProfileSpan};

    /// The clean trace with a `profile_report` inserted before
    /// `run_finished`, as a profiled run would emit it.
    fn profiled_trace() -> String {
        let profile = TelemetryEvent::ProfileReport {
            spans: vec![
                ProfileSpan {
                    path: "select_queries".to_string(),
                    count: 1,
                    total_nanos: 1000,
                    self_nanos: 400,
                },
                ProfileSpan {
                    path: "select_queries/selection".to_string(),
                    count: 1,
                    total_nanos: 600,
                    self_nanos: 600,
                },
            ],
            phases: vec![PhaseProfile {
                phase: "select_queries".to_string(),
                count: 1,
                total_nanos: 1000,
                min_nanos: 1000,
                max_nanos: 1000,
                p50_nanos: 1000.0,
                p95_nanos: 1000.0,
                p99_nanos: 1000.0,
            }],
            counters: vec![
                ("candidate_evals".to_string(), 3),
                ("rescued_updates".to_string(), 0),
            ],
        };
        let mut text = String::new();
        for line in clean_trace().lines() {
            if line.contains("run_finished") {
                text.push_str(&profile.to_json_line());
                text.push('\n');
            }
            text.push_str(line);
            text.push('\n');
        }
        text
    }

    #[test]
    fn profile_section_renders_span_tree_phases_and_counters() {
        let without = inspect_str("unit", &clean_trace());
        assert!(without.report.contains("## profile"));
        assert!(without.report.contains("no profile_report event"));

        let with = inspect_str("unit", &profiled_trace());
        assert!(with.passes(true), "{}", with.audit.render());
        assert!(with.report.contains("## profile"));
        assert!(with.report.contains("span tree (inclusive | self)"));
        // The child path renders indented under its parent, by leaf name.
        assert!(with.report.contains("select_queries"));
        assert!(with.report.contains("  selection"));
        assert!(with.report.contains("phase latency:"));
        assert!(with.report.contains("1.000µs"));
        assert!(with.report.contains("candidate_evals = 3"));
    }

    fn keys(j: &Json) -> Vec<&str> {
        match j {
            Json::Obj(m) => m.keys().map(String::as_str).collect(),
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn json_mode_is_a_stable_schema_snapshot() {
        let inspection = inspect_str("unit", &profiled_trace());
        let rendered = inspection.to_json("unit").to_string();
        // The output is a single line of JSON that parses back.
        assert_eq!(rendered.lines().count(), 1);
        let parsed = hc_core::telemetry::json::parse(&rendered).expect("inspect JSON parses");

        assert_eq!(
            keys(&parsed),
            [
                "audit", "crowd", "end", "events", "health", "name", "passes", "profile",
                "rounds", "shape", "skipped"
            ]
        );
        assert_eq!(
            keys(parsed.get("crowd").unwrap()),
            ["consensus_ties", "drifting", "workers"]
        );
        assert_eq!(
            keys(parsed.get("shape").unwrap()),
            ["belief_repr", "budget", "entropy", "facts", "k", "panel", "quality", "tasks"]
        );
        assert_eq!(
            keys(parsed.get("end").unwrap()),
            ["budget_spent", "entropy", "quality", "reason", "rounds"]
        );
        assert_eq!(
            parsed.get("end").unwrap().get("reason").unwrap().as_str(),
            Some("max_rounds")
        );

        let rounds = parsed.get("rounds").unwrap().as_arr().unwrap();
        assert_eq!(rounds.len(), 1);
        assert_eq!(
            keys(&rounds[0]),
            [
                "answers_received",
                "answers_requested",
                "budget_spent",
                "candidates_scored",
                "delivered",
                "dispatched",
                "dropped",
                "entropy_before",
                "faults",
                "k_effective",
                "k_requested",
                "predicted_entropy",
                "quality",
                "realized_entropy",
                "regret",
                "retries",
                "round",
                "selected",
                "timed_out"
            ]
        );
        let regret = rounds[0].get("regret").unwrap().as_f64().unwrap();
        assert!((regret - (1.4 - 1.5)).abs() < 1e-12, "regret {regret}");
        let selected = rounds[0].get("selected").unwrap().as_arr().unwrap();
        assert_eq!(selected.len(), 1);
        assert_eq!(
            keys(&selected[0]),
            ["fact", "gain", "query_id", "step", "task"]
        );

        let health = parsed.get("health").unwrap().as_arr().unwrap();
        assert_eq!(health.len(), 1);
        assert_eq!(
            keys(&health[0]),
            [
                "clamp_count", "log_evidence", "min_mass", "renorm_scale", "rescued", "round"
            ]
        );

        let profile = parsed.get("profile").unwrap();
        assert_eq!(keys(profile), ["counters", "phases", "spans"]);
        assert_eq!(
            profile
                .get("counters")
                .unwrap()
                .get("candidate_evals")
                .unwrap()
                .as_u64(),
            Some(3)
        );
        assert_eq!(
            keys(&profile.get("spans").unwrap().as_arr().unwrap()[0]),
            ["count", "path", "self_nanos", "total_nanos"]
        );
        assert_eq!(
            keys(&profile.get("phases").unwrap().as_arr().unwrap()[0]),
            [
                "count", "max_nanos", "min_nanos", "p50_nanos", "p95_nanos", "p99_nanos",
                "phase", "total_nanos"
            ]
        );

        let audit = parsed.get("audit").unwrap();
        assert_eq!(keys(audit), ["error_count", "findings", "warning_count"]);
        assert_eq!(audit.get("error_count").unwrap().as_u64(), Some(0));

        let passes = parsed.get("passes").unwrap();
        assert_eq!(passes.get("plain").unwrap().as_bool(), Some(true));
        assert_eq!(passes.get("strict").unwrap().as_bool(), Some(true));

        // A profile-less trace serialises `"profile": null`.
        let plain = inspect_str("unit", &clean_trace());
        assert!(plain
            .to_json("unit")
            .to_string()
            .contains("\"profile\":null"));
    }

    #[test]
    fn json_mode_surfaces_audit_findings() {
        let full = clean_trace();
        let truncated: String = full.lines().take(2).flat_map(|l| [l, "\n"]).collect();
        let inspection = inspect_str("unit", &truncated);
        let json = inspection.to_json("unit");
        let audit = json.get("audit").unwrap();
        assert!(audit.get("error_count").unwrap().as_u64().unwrap() > 0);
        let findings = audit.get("findings").unwrap().as_arr().unwrap();
        assert!(!findings.is_empty());
        assert_eq!(
            keys(&findings[0]),
            ["code", "message", "round", "severity"]
        );
        assert_eq!(
            json.get("passes").unwrap().get("plain").unwrap().as_bool(),
            Some(false)
        );
    }
}
