//! Accuracy/quality-vs-budget curves — the data behind every figure.

use hc_core::belief::MultiBelief;
use hc_core::hc::{run_hc_with_observer, AnswerOracle, HcConfig};
use hc_core::selection::TaskSelector;
use hc_core::worker::ExpertPanel;
use hc_sim::pipeline::dataset_accuracy;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// One sampled point of a curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Cumulative checking budget spent.
    pub budget: u64,
    /// Label accuracy against ground truth at that budget.
    pub accuracy: f64,
    /// Dataset quality `Q = -Σ_t H(O_t)` at that budget.
    pub quality: f64,
}

/// A labeled accuracy/quality-vs-budget series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Curve {
    /// Series label (algorithm / parameter value).
    pub label: String,
    /// Points in increasing budget order.
    pub points: Vec<CurvePoint>,
}

impl Curve {
    /// The curve's value at a budget: the last point with
    /// `point.budget <= budget` (curves are step functions of spent
    /// budget).
    pub fn at(&self, budget: u64) -> Option<CurvePoint> {
        self.points
            .iter()
            .take_while(|p| p.budget <= budget)
            .last()
            .copied()
    }

    /// Resamples the curve at the given checkpoints.
    pub fn sample(&self, checkpoints: &[u64]) -> Curve {
        Curve {
            label: self.label.clone(),
            points: checkpoints
                .iter()
                .filter_map(|&b| self.at(b).map(|p| CurvePoint { budget: b, ..p }))
                .collect(),
        }
    }

    /// Final accuracy (last point).
    pub fn final_accuracy(&self) -> Option<f64> {
        self.points.last().map(|p| p.accuracy)
    }

    /// Final quality (last point).
    pub fn final_quality(&self) -> Option<f64> {
        self.points.last().map(|p| p.quality)
    }
}

/// Runs the HC loop once with the maximum budget and records a curve
/// point after every round (plus the budget-0 starting point).
#[allow(clippy::too_many_arguments)]
pub fn run_hc_curve(
    label: impl Into<String>,
    beliefs: MultiBelief,
    panel: &ExpertPanel,
    selector: &dyn TaskSelector,
    oracle: &mut dyn AnswerOracle,
    truths: &[Vec<bool>],
    k: usize,
    budget: u64,
    rng: &mut dyn RngCore,
) -> hc_core::Result<Curve> {
    let mut points = vec![CurvePoint {
        budget: 0,
        accuracy: dataset_accuracy(&beliefs, truths),
        quality: beliefs.quality(),
    }];
    let config = HcConfig::new(k, budget);
    run_hc_with_observer(
        beliefs,
        panel,
        selector,
        oracle,
        &config,
        rng,
        |state, record| {
            points.push(CurvePoint {
                budget: record.budget_spent,
                accuracy: dataset_accuracy(state, truths),
                quality: record.quality,
            });
        },
    )?;
    Ok(Curve {
        label: label.into(),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> Curve {
        Curve {
            label: "t".into(),
            points: vec![
                CurvePoint {
                    budget: 0,
                    accuracy: 0.8,
                    quality: -10.0,
                },
                CurvePoint {
                    budget: 4,
                    accuracy: 0.85,
                    quality: -8.0,
                },
                CurvePoint {
                    budget: 8,
                    accuracy: 0.9,
                    quality: -6.0,
                },
            ],
        }
    }

    #[test]
    fn at_returns_step_value() {
        let c = curve();
        assert_eq!(c.at(0).unwrap().accuracy, 0.8);
        assert_eq!(c.at(5).unwrap().accuracy, 0.85);
        assert_eq!(c.at(100).unwrap().accuracy, 0.9);
    }

    #[test]
    fn sample_uses_checkpoint_budgets() {
        let c = curve().sample(&[0, 2, 6, 10]);
        let budgets: Vec<u64> = c.points.iter().map(|p| p.budget).collect();
        assert_eq!(budgets, vec![0, 2, 6, 10]);
        assert_eq!(c.points[1].accuracy, 0.8);
        assert_eq!(c.points[2].accuracy, 0.85);
    }

    #[test]
    fn finals_read_last_point() {
        let c = curve();
        assert_eq!(c.final_accuracy(), Some(0.9));
        assert_eq!(c.final_quality(), Some(-6.0));
    }
}
