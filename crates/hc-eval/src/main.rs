//! CLI of the experiment harness.
//!
//! ```text
//! hc-eval [--experiment fig2|…|table3|ext-cost|…|all|ext]
//!         [--scale quick|paper] [--seed N] [--out DIR] [--charts]
//!         [--threads auto|serial|N]
//! hc-eval inspect <run.jsonl> [--strict] [--json] [--prometheus FILE]
//! hc-eval compare <a> <b> [--json] [--fail-on-regress PCT]
//! hc-eval session <run|resume> --out DIR [--checkpoint-every N] …
//! hc-eval corpus <run|resume> --out DIR [--checkpoint-every N] …
//! ```
//!
//! Prints the paper-style tables to stdout (plus ASCII charts with
//! `--charts`) and writes raw curves as JSON under `--out` (default
//! `results/`). The `inspect` subcommand replays and audits a
//! recorded telemetry trace; see [`hc_eval::inspect`]. The `compare`
//! subcommand diffs two traces or two stamped `BENCH_*.json` files and
//! can gate on latency regressions; see [`hc_eval::compare_cli`]. The
//! `session` subcommand runs a crash-safe checkpointed session and
//! resumes it after a kill; see [`hc_eval::session_cli`]. The `corpus`
//! subcommand does the same one level up, for a whole multi-group
//! corpus under the cross-group scheduler; see [`hc_eval::corpus_cli`].

use hc_eval::{
    run_experiment, write_json, ExpSettings, Scale, ALL_EXPERIMENTS, EXTENSION_EXPERIMENTS,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    experiment: String,
    scale: Scale,
    seed: u64,
    out: PathBuf,
    charts: bool,
    threads: hc_core::parallel::Parallelism,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        experiment: "all".to_string(),
        scale: Scale::Paper,
        seed: 42,
        out: PathBuf::from("results"),
        charts: false,
        threads: hc_core::parallel::Parallelism::Auto,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--experiment" | "-e" => args.experiment = value("--experiment")?,
            "--scale" | "-s" => {
                args.scale = match value("--scale")?.as_str() {
                    "quick" => Scale::Quick,
                    "paper" => Scale::Paper,
                    other => return Err(format!("unknown scale {other:?}")),
                }
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?
            }
            "--out" | "-o" => args.out = PathBuf::from(value("--out")?),
            "--charts" => args.charts = true,
            "--threads" | "-t" => {
                args.threads = match value("--threads")?.as_str() {
                    "auto" => hc_core::parallel::Parallelism::Auto,
                    "serial" => hc_core::parallel::Parallelism::Serial,
                    n => hc_core::parallel::Parallelism::Threads(
                        n.parse().map_err(|e| format!("bad thread count: {e}"))?,
                    ),
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: hc-eval [--experiment {}|{}|all|ext] [--scale quick|paper] [--seed N] [--out DIR] [--threads auto|serial|N]",
                    ALL_EXPERIMENTS.join("|"),
                    EXTENSION_EXPERIMENTS.join("|")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    // Subcommand dispatch happens before flag parsing: `inspect` has
    // its own argument grammar.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("inspect") {
        return hc_eval::inspect::run_cli(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("compare") {
        return hc_eval::compare_cli::run_cli(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("session") {
        return hc_eval::session_cli::run_cli(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("corpus") {
        return hc_eval::corpus_cli::run_cli(&raw[1..]);
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut settings = ExpSettings::for_scale(args.scale, args.seed);
    settings.parallelism = args.threads;

    let ids: Vec<&str> = if args.experiment == "all" {
        ALL_EXPERIMENTS.to_vec()
    } else if args.experiment == "ext" {
        EXTENSION_EXPERIMENTS.to_vec()
    } else if ALL_EXPERIMENTS.contains(&args.experiment.as_str())
        || EXTENSION_EXPERIMENTS.contains(&args.experiment.as_str())
    {
        vec![args.experiment.as_str()]
    } else {
        eprintln!(
            "error: unknown experiment {:?} (valid: {}, {}, all, ext)",
            args.experiment,
            ALL_EXPERIMENTS.join(", "),
            EXTENSION_EXPERIMENTS.join(", ")
        );
        return ExitCode::FAILURE;
    };

    for id in ids {
        eprintln!("== running {id} ({:?} scale, seed {}) ==", args.scale, args.seed);
        let started = std::time::Instant::now();
        let output = run_experiment(id, &settings);
        output.print();
        if args.charts {
            for (group, curves) in &output.curves {
                for metric in [hc_eval::Metric::Accuracy, hc_eval::Metric::Quality] {
                    println!("{}", hc_eval::report::ascii_chart(group, curves, metric, 64, 14));
                }
            }
        }
        eprintln!("{id} finished in {:.1}s", started.elapsed().as_secs_f64());
        if let Err(e) = write_json(&args.out, &output.name, &output) {
            eprintln!("warning: could not write {}/{}.json: {e}", args.out.display(), output.name);
        }
        if let Some(events) = &output.telemetry {
            match hc_eval::telemetry::write_jsonl(&args.out, &output.name, events) {
                Ok(path) => {
                    println!("{}", hc_eval::telemetry::summary_table(&output.name, events));
                    eprintln!("telemetry trace written to {}", path.display());
                }
                Err(e) => eprintln!("warning: could not write telemetry trace: {e}"),
            }
        }
    }
    ExitCode::SUCCESS
}
