//! # hc-eval — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation
//! (§IV) on the synthetic corpus; see [`experiments`] for the map from
//! paper result to runner, `EXPERIMENTS.md` in the repository root for
//! paper-vs-measured records, and the `hc-eval` binary for the CLI.

#![warn(missing_docs)]

pub mod compare_cli;
pub mod corpus_cli;
pub mod curve;
pub mod experiments;
pub mod inspect;
pub mod report;
pub mod session_cli;
pub mod settings;
pub mod telemetry;

pub use curve::{run_hc_curve, Curve, CurvePoint};
pub use inspect::{inspect_str, Inspection};
pub use experiments::ExperimentOutput;
pub use report::{curves_table, write_json, Metric};
pub use settings::{ExpSettings, Scale};

/// The paper's experiment ids, in paper order.
pub const ALL_EXPERIMENTS: [&str; 7] = [
    "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "table3",
];

/// Extension experiments beyond the paper (§III-D items and design
/// ablations; see [`experiments::ext`] and
/// [`experiments::ext_faults`], and [`experiments::ext_drift`]).
pub const EXTENSION_EXPERIMENTS: [&str; 8] = [
    "ext-cost",
    "ext-estimation",
    "ext-policy",
    "ext-multitier",
    "ext-allocation",
    "ext-latency",
    "ext-faults",
    "ext-drift",
];

/// Runs one experiment by id.
///
/// # Panics
///
/// Panics on an unknown id; the valid ids are [`ALL_EXPERIMENTS`] and
/// [`EXTENSION_EXPERIMENTS`].
pub fn run_experiment(id: &str, settings: &ExpSettings) -> ExperimentOutput {
    // Install the settings' thread policy for everything the runner
    // does; outputs are bit-identical at any thread count, so this only
    // affects wall-clock.
    let _par = hc_core::parallel::scoped(settings.parallelism);
    match id {
        "fig2" => experiments::fig2::run(settings),
        "fig3" => experiments::fig3::run(settings),
        "fig4" => experiments::fig4::run(settings),
        "fig5" => experiments::fig5::run(settings),
        "fig6" => experiments::fig6::run(settings),
        "fig7" => experiments::fig7::run(settings),
        "table3" => experiments::table3::run(settings),
        "ext-cost" => experiments::ext::cost(settings),
        "ext-estimation" => experiments::ext::estimation(settings),
        "ext-policy" => experiments::ext::policy(settings),
        "ext-multitier" => experiments::ext::multitier(settings),
        "ext-allocation" => experiments::ext::allocation(settings),
        "ext-latency" => experiments::ext::latency(settings),
        "ext-faults" => experiments::ext_faults::run(settings),
        "ext-drift" => experiments::ext_drift::run(settings),
        other => panic!("unknown experiment id {other:?}"),
    }
}
