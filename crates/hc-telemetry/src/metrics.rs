//! A lightweight metrics registry: counters, gauges, and fixed-bucket
//! histograms, with no external dependencies.
//!
//! The registry is deliberately string-keyed and flat so any layer can
//! contribute without coordinating types. [`MetricsRegistry::from_events`]
//! derives the standard HC metric set from an event log, which is how
//! the proptests pin metrics totals to `HcOutcome` fields.

use crate::event::TelemetryEvent;
use crate::json::{write_f64, write_str};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A fixed-bucket histogram over `f64` samples.
///
/// Bucket `i` counts samples `<= bounds[i]`; one overflow bucket counts
/// the rest. Also tracks count/sum/min/max so means are exact even
/// though bucket placement is coarse.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram with the given upper bucket bounds
    /// (must be sorted ascending).
    pub fn new(bounds: Vec<f64>) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        let n = bounds.len() + 1;
        Self {
            bounds,
            counts: vec![0; n],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Ten log-ish buckets suited to values in roughly `[0, 100]`
    /// (entropies, per-round answer counts, regrets).
    pub fn default_bounds() -> Vec<f64> {
        vec![0.0, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 100.0]
    }

    /// Records one sample. Non-finite samples count but skip buckets.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        if !v.is_finite() {
            return;
        }
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
    }

    /// Number of samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of finite samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of finite samples, or NaN when empty.
    pub fn mean(&self) -> f64 {
        let finite: u64 = self.counts.iter().sum();
        if finite == 0 {
            f64::NAN
        } else {
            self.sum / finite as f64
        }
    }

    /// Smallest finite sample, or NaN when empty.
    pub fn min(&self) -> f64 {
        if self.min.is_finite() {
            self.min
        } else {
            f64::NAN
        }
    }

    /// Largest finite sample, or NaN when empty.
    pub fn max(&self) -> f64 {
        if self.max.is_finite() {
            self.max
        } else {
            f64::NAN
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`, clamped) of the
    /// finite samples by linear interpolation inside the bucket the
    /// quantile falls in, Prometheus-style. NaN when no finite sample
    /// was observed.
    ///
    /// Fixed buckets make this an estimate, with two exactness aids:
    /// the result is clamped to the observed `[min, max]`, and a
    /// quantile landing in the overflow bucket interpolates between the
    /// last bound and the observed **max** — the bucket has no upper
    /// edge of its own, and the largest sample is the only honest one.
    /// In particular, when *every* sample overflows (the former silent
    /// lie: the last bound, below all data), the estimate interpolates
    /// across `[min, max]` like any other bucket.
    pub fn quantile(&self, q: f64) -> f64 {
        let finite: u64 = self.counts.iter().sum();
        if finite == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * finite as f64;
        let mut below = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let cumulative = below + c;
            if cumulative as f64 >= target {
                if i == self.bounds.len() {
                    // Overflow bucket: interpolate toward the observed
                    // max, its only honest upper edge. Samples here all
                    // exceed the last bound, so `lower <= max` holds
                    // whenever the bucket is non-empty.
                    let lower = self
                        .bounds
                        .last()
                        .copied()
                        .unwrap_or(self.min)
                        .max(self.min);
                    let frac = ((target - below as f64) / c as f64).clamp(0.0, 1.0);
                    return (lower + (self.max - lower) * frac).clamp(self.min, self.max);
                }
                let upper = self.bounds[i];
                let lower = if i == 0 { self.min } else { self.bounds[i - 1] };
                let frac = ((target - below as f64) / c as f64).clamp(0.0, 1.0);
                return (lower + (upper - lower) * frac).clamp(self.min, self.max);
            }
            below = cumulative;
        }
        self.max
    }

    /// Upper bucket bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }
}

/// String-keyed counters, gauges, and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the named counter.
    pub fn incr(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets the named gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records a sample into the named histogram (created with
    /// [`Histogram::default_bounds`] on first use).
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(Histogram::default_bounds()))
            .observe(value);
    }

    /// Reads a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Reads a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Derives the standard HC metric set from an event log.
    ///
    /// Counters: `rounds`, `queries_dispatched`, `answers_delivered`,
    /// `answers_timed_out`, `answers_dropped`, `retries_scheduled`,
    /// `faults_injected`, `fault.<kind>`, `dry_rounds`, and per-worker
    /// `worker.<id>.delivered` / `.timed_out` / `.dropped` tallies.
    /// Gauges: `budget_spent`, `final_entropy`, `final_quality`,
    /// `dry_streak_max`. Histograms: `round.entropy`,
    /// `round.answers_received`, `round.regret` (predicted − realised
    /// entropy per round, the selector's per-round regret). Explain-mode
    /// runs add `candidates_scored` / `queries_selected` counters and
    /// `selection.scored_gain` / `selection.gain` histograms.
    /// `NumericalHealth` events add `posterior_clamps` /
    /// `rescued_updates` counters and `numerical.min_mass` /
    /// `numerical.renorm_scale` histograms (their `min()` is the
    /// worst-case mass of the run).
    pub fn from_events(events: &[TelemetryEvent]) -> Self {
        let mut m = Self::new();
        let mut dry_streak = 0u64;
        let mut dry_streak_max = 0u64;
        let mut predicted: Option<f64> = None;
        for event in events {
            match event {
                TelemetryEvent::RunStarted { .. } => {}
                TelemetryEvent::RoundSelected {
                    predicted_entropy, ..
                } => {
                    m.incr("rounds", 1);
                    predicted = Some(*predicted_entropy);
                }
                TelemetryEvent::CandidateScored { gain, .. } => {
                    m.incr("candidates_scored", 1);
                    m.observe("selection.scored_gain", *gain);
                }
                TelemetryEvent::QuerySelected { gain, .. } => {
                    m.incr("queries_selected", 1);
                    m.observe("selection.gain", *gain);
                }
                TelemetryEvent::QueryDispatched { .. } => {
                    m.incr("queries_dispatched", 1);
                }
                TelemetryEvent::AnswerDelivered { worker, .. } => {
                    m.incr("answers_delivered", 1);
                    m.incr(&format!("worker.{worker}.delivered"), 1);
                }
                TelemetryEvent::AnswerTimedOut { worker, .. } => {
                    m.incr("answers_timed_out", 1);
                    m.incr(&format!("worker.{worker}.timed_out"), 1);
                }
                TelemetryEvent::AnswerDropped { worker, .. } => {
                    m.incr("answers_dropped", 1);
                    m.incr(&format!("worker.{worker}.dropped"), 1);
                }
                TelemetryEvent::AnswerLatency { latency_secs, .. } => {
                    // One global latency histogram; the per-worker
                    // split lives in the crowd ledger, where histogram
                    // cardinality is not a registry concern.
                    m.observe("latency.answer_secs", *latency_secs);
                }
                TelemetryEvent::RetryScheduled { .. } => {
                    m.incr("retries_scheduled", 1);
                }
                TelemetryEvent::FaultInjected { kind, .. } => {
                    m.incr("faults_injected", 1);
                    m.incr(&format!("fault.{}", kind.name()), 1);
                }
                TelemetryEvent::BeliefUpdated {
                    entropy,
                    budget_spent,
                    answers_received,
                    ..
                } => {
                    m.observe("round.entropy", *entropy);
                    m.observe("round.answers_received", *answers_received as f64);
                    if let Some(p) = predicted.take() {
                        // Regret: how much worse the realised entropy is
                        // than the selector's prediction for this round.
                        m.observe("round.regret", *entropy - p);
                    }
                    m.set_gauge("budget_spent", *budget_spent as f64);
                    if *answers_received == 0 {
                        m.incr("dry_rounds", 1);
                        dry_streak += 1;
                        dry_streak_max = dry_streak_max.max(dry_streak);
                    } else {
                        dry_streak = 0;
                    }
                }
                TelemetryEvent::NumericalHealth {
                    min_mass,
                    renorm_scale,
                    clamp_count,
                    rescued,
                    ..
                } => {
                    m.incr("posterior_clamps", *clamp_count);
                    if *rescued {
                        m.incr("rescued_updates", 1);
                    }
                    m.observe("numerical.min_mass", *min_mass);
                    m.observe("numerical.renorm_scale", *renorm_scale);
                }
                TelemetryEvent::ProfileReport { counters, .. } => {
                    // Surface the run's work counters under a stable
                    // `profile.` prefix so they reach the Prometheus
                    // exposition alongside the derived metrics.
                    for (name, value) in counters {
                        m.incr(&format!("profile.{name}"), *value);
                    }
                }
                TelemetryEvent::RunFinished {
                    budget_spent,
                    entropy,
                    quality,
                    ..
                } => {
                    m.set_gauge("budget_spent", *budget_spent as f64);
                    m.set_gauge("final_entropy", *entropy);
                    m.set_gauge("final_quality", *quality);
                }
                TelemetryEvent::CorpusStarted { .. } => {}
                TelemetryEvent::GroupScheduled { .. } => {
                    m.incr("corpus.steps", 1);
                }
                TelemetryEvent::GroupAdvanced { .. } => {}
                TelemetryEvent::GroupFinished { spent, .. } => {
                    m.incr("corpus.groups_finished", 1);
                    m.observe("corpus.group_spent", *spent as f64);
                }
                TelemetryEvent::CorpusFinished {
                    spent, entropy, ..
                } => {
                    m.set_gauge("budget_spent", *spent as f64);
                    m.set_gauge("final_entropy", *entropy);
                }
            }
        }
        m.set_gauge("dry_streak_max", dry_streak_max as f64);
        m
    }

    /// Renders an aligned plain-text summary table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0)
            .max(6);
        out.push_str("-- counters --\n");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name:<width$}  {v}");
        }
        out.push_str("-- gauges --\n");
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "{name:<width$}  {v:.6}");
        }
        out.push_str("-- histograms --\n");
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{name:<width$}  n={} mean={:.4} min={:.4} max={:.4} p50={:.4} p95={:.4} p99={:.4} p999={:.4}",
                h.count(),
                h.mean(),
                h.min(),
                h.max(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
                h.quantile(0.999),
            );
        }
        out
    }

    /// Serialises the registry as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            write_str(&mut s, name);
            let _ = write!(s, ":{v}");
        }
        s.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            write_str(&mut s, name);
            s.push(':');
            write_f64(&mut s, *v);
        }
        s.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            write_str(&mut s, name);
            let _ = write!(s, ":{{\"count\":{}", h.count());
            s.push_str(",\"sum\":");
            write_f64(&mut s, h.sum());
            s.push_str(",\"mean\":");
            write_f64(&mut s, h.mean());
            s.push_str(",\"min\":");
            write_f64(&mut s, h.min());
            s.push_str(",\"max\":");
            write_f64(&mut s, h.max());
            s.push_str(",\"bounds\":[");
            for (j, b) in h.bounds().iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                write_f64(&mut s, *b);
            }
            s.push_str("],\"counts\":[");
            for (j, c) in h.bucket_counts().iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{c}");
            }
            s.push_str("]}");
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new(vec![1.0, 10.0]);
        h.observe(0.5);
        h.observe(1.0); // boundary lands in the <=1.0 bucket
        h.observe(5.0);
        h.observe(50.0); // overflow
        h.observe(f64::NAN); // counted, bucket-skipped
        assert_eq!(h.count(), 5);
        assert_eq!(h.bucket_counts(), &[2, 1, 1]);
        assert!((h.mean() - 56.5 / 4.0).abs() < 1e-12);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 50.0);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = Histogram::new(vec![10.0, 20.0, 30.0]);
        for v in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0] {
            h.observe(v);
        }
        // All ten samples sit in the first bucket [min=1, 10]: the
        // median interpolates to the bucket's midpoint region.
        let p50 = h.quantile(0.5);
        assert!((4.0..=7.0).contains(&p50), "p50 {p50}");
        assert_eq!(h.quantile(1.0), 10.0);
        assert_eq!(h.quantile(0.0), 1.0, "clamped to the observed min");
        // Spread across buckets: p95 lands in the right bucket.
        let mut spread = Histogram::new(vec![10.0, 20.0, 30.0]);
        for v in [5.0, 12.0, 15.0, 18.0, 22.0, 25.0, 28.0, 29.0, 29.5, 30.0] {
            spread.observe(v);
        }
        let p95 = spread.quantile(0.95);
        assert!((20.0..=30.0).contains(&p95), "p95 {p95}");
        assert!(spread.quantile(0.5) <= p95, "quantiles are monotone");
    }

    #[test]
    fn overflow_quantile_interpolates_toward_the_observed_max() {
        let mut h = Histogram::new(vec![1.0, 10.0]);
        h.observe(0.5);
        h.observe(100.0);
        h.observe(200.0);
        // p99 falls in the overflow bucket: interpolate over
        // [last bound, max] instead of reporting the last bound (10.0,
        // below both overflowing samples).
        let p99 = h.quantile(0.99);
        assert!((10.0..=200.0).contains(&p99), "p99 {p99}");
        assert!(p99 > 100.0, "p99 {p99} should sit near the top sample");
        assert_eq!(h.quantile(1.0), 200.0);
    }

    #[test]
    fn all_overflow_quantiles_span_the_observed_range() {
        // Every sample beyond the last bound — the former behavior
        // reported 10.0 for all quantiles, below ALL the data.
        let mut h = Histogram::new(vec![1.0, 10.0]);
        for v in [50.0, 100.0, 150.0, 200.0] {
            h.observe(v);
        }
        let p50 = h.quantile(0.5);
        assert!((50.0..=200.0).contains(&p50), "p50 {p50}");
        assert!(h.quantile(0.999) >= p50, "quantiles are monotone");
        assert_eq!(h.quantile(1.0), 200.0);
    }

    #[test]
    fn quantile_of_empty_histogram_is_nan() {
        let mut h = Histogram::new(Histogram::default_bounds());
        assert!(h.quantile(0.5).is_nan());
        h.observe(f64::NAN); // still no *finite* sample
        assert!(h.quantile(0.5).is_nan());
    }

    #[test]
    fn empty_histogram_stats_are_nan() {
        let h = Histogram::new(Histogram::default_bounds());
        assert!(h.mean().is_nan());
        assert!(h.min().is_nan());
        assert!(h.max().is_nan());
    }

    #[test]
    fn registry_basics() {
        let mut m = MetricsRegistry::new();
        m.incr("rounds", 2);
        m.incr("rounds", 1);
        m.set_gauge("budget_spent", 7.0);
        m.observe("round.entropy", 1.5);
        assert_eq!(m.counter("rounds"), 3);
        assert_eq!(m.counter("absent"), 0);
        assert_eq!(m.gauge("budget_spent"), Some(7.0));
        assert_eq!(m.histogram("round.entropy").unwrap().count(), 1);
    }

    #[test]
    fn from_events_derives_standard_metrics() {
        let events = crate::event::tests::sample_events();
        let m = MetricsRegistry::from_events(&events);
        assert_eq!(m.counter("rounds"), 1);
        assert_eq!(m.counter("queries_dispatched"), 1);
        assert_eq!(m.counter("answers_delivered"), 1);
        assert_eq!(m.counter("answers_timed_out"), 1);
        assert_eq!(m.counter("answers_dropped"), 1);
        assert_eq!(m.counter("retries_scheduled"), 1);
        assert_eq!(m.counter("faults_injected"), 1);
        assert_eq!(m.counter("fault.timeout"), 1);
        assert_eq!(m.counter("worker.0.delivered"), 1);
        assert_eq!(m.counter("worker.1.timed_out"), 1);
        assert_eq!(m.counter("worker.0.dropped"), 1);
        assert_eq!(m.counter("candidates_scored"), 1);
        assert_eq!(m.counter("queries_selected"), 1);
        assert_eq!(m.histogram("selection.gain").unwrap().count(), 1);
        assert_eq!(m.counter("dry_rounds"), 0);
        assert_eq!(m.gauge("budget_spent"), Some(2.0));
        assert_eq!(m.gauge("final_entropy"), Some(2.75));
        assert_eq!(m.gauge("dry_streak_max"), Some(0.0));
        let regret = m.histogram("round.regret").unwrap();
        assert_eq!(regret.count(), 1);
        // realised 2.75 − predicted 2.5
        assert!((regret.sum() - 0.25).abs() < 1e-12);
        assert_eq!(m.counter("posterior_clamps"), 3);
        assert_eq!(m.counter("rescued_updates"), 1);
        let min_mass = m.histogram("numerical.min_mass").unwrap();
        assert_eq!(min_mass.count(), 1);
        assert_eq!(min_mass.min(), 1.5e-11);
    }

    #[test]
    fn dry_streaks_are_tracked() {
        use crate::event::TelemetryEvent as E;
        let dry = |round| E::BeliefUpdated {
            round,
            entropy: 1.0,
            quality: -1.0,
            budget_spent: 0,
            answers_requested: 2,
            answers_received: 0,
        };
        let wet = |round| E::BeliefUpdated {
            round,
            entropy: 1.0,
            quality: -1.0,
            budget_spent: 1,
            answers_requested: 2,
            answers_received: 2,
        };
        let m = MetricsRegistry::from_events(&[dry(1), dry(2), wet(3), dry(4)]);
        assert_eq!(m.counter("dry_rounds"), 3);
        assert_eq!(m.gauge("dry_streak_max"), Some(2.0));
    }

    #[test]
    fn json_export_is_parseable() {
        let m = MetricsRegistry::from_events(&crate::event::tests::sample_events());
        let text = m.to_json();
        let v = json::parse(&text).expect("valid json");
        assert_eq!(
            v.get("counters").and_then(|c| c.get("rounds")).and_then(|x| x.as_u64()),
            Some(1)
        );
        assert!(v
            .get("histograms")
            .and_then(|h| h.get("round.entropy"))
            .and_then(|h| h.get("count"))
            .is_some());
    }

    #[test]
    fn render_table_lists_every_metric() {
        let m = MetricsRegistry::from_events(&crate::event::tests::sample_events());
        let table = m.render_table();
        assert!(table.contains("rounds"));
        assert!(table.contains("budget_spent"));
        assert!(table.contains("round.entropy"));
        assert!(table.contains("p999="), "tail column present:\n{table}");
    }
}
