//! The typed event model of an HC run.
//!
//! One checking run emits a linear event stream:
//!
//! ```text
//! RunStarted
//!   ┌ RoundSelected                  (one per round)
//!   │   ├ CandidateScored*           (explain mode: gains the argmax saw)
//!   │   └ QuerySelected*             (explain mode: one per chosen query)
//!   │   QueryDispatched              (one per query × panel worker)
//!   │   ├ RetryScheduled / FaultInjected / AnswerLatency   (platform / fault layer)
//!   │   └ AnswerDelivered | AnswerTimedOut | AnswerDropped
//!   ├ BeliefUpdated
//!   └ NumericalHealth              (update-kernel float health report)
//! RunFinished
//! ```
//!
//! The contract the [`crate::audit`] module enforces: every
//! [`TelemetryEvent::QueryDispatched`] is closed by *exactly one* of
//! `AnswerDelivered` / `AnswerTimedOut` / `AnswerDropped` with the same
//! `(round, task, fact, worker, query_id)` key, before the next
//! dispatch opens (the loop is serial).
//!
//! `query_id` is the causal thread: the loop assigns one id per
//! selected query per round (ids count up from 1 across the run), all
//! panel dispatches for that query carry it, and the platform / fault
//! layers stamp their `RetryScheduled` / `FaultInjected` events with
//! the id of the dispatch they interrupted — so a retry storm or an
//! injected fault is attributable to the selection step that caused it.
//! Logs recorded before this field existed decode with `query_id == 0`.
//!
//! Events carry plain ids (task index, fact index, worker id) rather
//! than `hc-core` types so this crate stays dependency-free and every
//! layer of the stack can emit into the same stream.

use crate::json::{self, Json};
use std::fmt::Write as _;

/// Which fault the fault-injection layer fired on an attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker abandoned the assignment.
    Dropout,
    /// The attempt timed out.
    Timeout,
    /// A platform-wide burst outage window swallowed the attempt.
    Burst,
    /// The worker permanently churned out of the crowd.
    Churn,
}

impl FaultKind {
    /// Stable lowercase name used in the JSON encoding.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Dropout => "dropout",
            FaultKind::Timeout => "timeout",
            FaultKind::Burst => "burst",
            FaultKind::Churn => "churn",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "dropout" => Some(FaultKind::Dropout),
            "timeout" => Some(FaultKind::Timeout),
            "burst" => Some(FaultKind::Burst),
            "churn" => Some(FaultKind::Churn),
            _ => None,
        }
    }
}

/// Why the checking loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The remaining budget cannot afford another query (Algorithm 3).
    BudgetExhausted,
    /// No candidate offered positive expected gain (Algorithm 2).
    NoPositiveGain,
    /// The configured `max_rounds` cap was reached.
    MaxRounds,
    /// Too many consecutive rounds delivered zero answers.
    DryRounds,
}

impl StopReason {
    /// Stable lowercase name used in the JSON encoding.
    pub fn name(self) -> &'static str {
        match self {
            StopReason::BudgetExhausted => "budget_exhausted",
            StopReason::NoPositiveGain => "no_positive_gain",
            StopReason::MaxRounds => "max_rounds",
            StopReason::DryRounds => "dry_rounds",
        }
    }

    /// Parses a [`StopReason::name`] back; `None` for unknown names.
    ///
    /// Public because checkpoint payloads (see [`crate::checkpoint`])
    /// store stop reasons by their stable name and must reject foreign
    /// values with a typed error rather than a panic.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "budget_exhausted" => Some(StopReason::BudgetExhausted),
            "no_positive_gain" => Some(StopReason::NoPositiveGain),
            "max_rounds" => Some(StopReason::MaxRounds),
            "dry_rounds" => Some(StopReason::DryRounds),
        _ => None,
        }
    }
}

/// One aggregated span-tree path in a [`TelemetryEvent::ProfileReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSpan {
    /// `/`-joined phase names from the root of the span tree, e.g.
    /// `select_queries/selection/scoring`.
    pub path: String,
    /// Number of spans aggregated into this path.
    pub count: u64,
    /// Inclusive wall-clock nanoseconds.
    pub total_nanos: u64,
    /// Self nanoseconds (inclusive minus direct children's inclusive).
    pub self_nanos: u64,
}

/// Flat latency stats for one phase in a
/// [`TelemetryEvent::ProfileReport`]. Quantiles are estimated from the
/// log-scale buckets at snapshot time so trace consumers never need
/// the raw histograms.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseProfile {
    /// The phase's stable snake_case name.
    pub phase: String,
    /// Number of spans recorded.
    pub count: u64,
    /// Total nanoseconds across all spans.
    pub total_nanos: u64,
    /// Fastest span, in nanoseconds.
    pub min_nanos: u64,
    /// Slowest span, in nanoseconds.
    pub max_nanos: u64,
    /// Estimated median span duration, in nanoseconds.
    pub p50_nanos: f64,
    /// Estimated 95th-percentile span duration, in nanoseconds.
    pub p95_nanos: f64,
    /// Estimated 99th-percentile span duration, in nanoseconds.
    pub p99_nanos: f64,
}

/// Which belief representation a run's posterior state uses, as
/// summarised over all task beliefs at run start.
///
/// Telemetry-side mirror of the `hc-core` representation enum so trace
/// consumers can tell a dense-oracle run from a sparse/factored one
/// without depending on the core crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BeliefReprSummary {
    /// Every task belief is the dense `2^n` vector (the only
    /// representation before sparse/factored existed, hence the decode
    /// default for old traces).
    #[default]
    Dense,
    /// Every task belief is a sparse support-set belief.
    Sparse,
    /// Every task belief is a factored (block-product) belief.
    Factored,
    /// Task beliefs use different representations.
    Mixed,
}

impl BeliefReprSummary {
    /// The stable snake_case name used on the wire.
    pub fn name(self) -> &'static str {
        match self {
            BeliefReprSummary::Dense => "dense",
            BeliefReprSummary::Sparse => "sparse",
            BeliefReprSummary::Factored => "factored",
            BeliefReprSummary::Mixed => "mixed",
        }
    }

    /// Parses a wire name back into the summary, `None` when unknown.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "dense" => Some(BeliefReprSummary::Dense),
            "sparse" => Some(BeliefReprSummary::Sparse),
            "factored" => Some(BeliefReprSummary::Factored),
            "mixed" => Some(BeliefReprSummary::Mixed),
            _ => None,
        }
    }
}

/// One structured event in an HC run's telemetry stream.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// The loop is about to run.
    RunStarted {
        /// Number of tasks in the belief state.
        tasks: usize,
        /// Total facts across all tasks (the global query space).
        facts: usize,
        /// Size of the expert panel.
        panel: usize,
        /// Total checking budget, in cost units.
        budget: u64,
        /// Configured base queries per round.
        k: usize,
        /// Total belief entropy `H(O)` before any checking, in nats.
        entropy: f64,
        /// Dataset quality `-Σ_t H(O_t)` before any checking.
        quality: f64,
        /// Belief representation summary across tasks.
        belief_repr: BeliefReprSummary,
    },
    /// The selector chose this round's query set.
    RoundSelected {
        /// Round number, starting at 1.
        round: usize,
        /// Query count the schedule asked for this round.
        k_requested: usize,
        /// Query count actually affordable and selected.
        k_effective: usize,
        /// The selected `(task, fact)` pairs.
        queries: Vec<(usize, u32)>,
        /// Total belief entropy before the round.
        entropy_before: f64,
        /// The selector's objective `H(O | AS^T)` for the chosen set —
        /// the entropy it *predicts* will remain after the update.
        predicted_entropy: f64,
    },
    /// Explain mode: the greedy argmax evaluated this candidate's
    /// marginal conditional-entropy gain (Equation (35)) at one step.
    ///
    /// Emitted only when selection-explain is enabled; one event per
    /// gain the selector actually computed (the task-dirty / CELF
    /// schedules skip provably unchanged gains, so skipped candidates
    /// keep their score from an earlier step).
    CandidateScored {
        /// Round the scoring belongs to.
        round: usize,
        /// Greedy step (= queries already chosen when scored).
        step: usize,
        /// Task index of the candidate.
        task: usize,
        /// Fact index within the task.
        fact: u32,
        /// The marginal gain the argmax saw for this candidate.
        gain: f64,
    },
    /// Explain mode: the selector committed to this query at one step.
    QuerySelected {
        /// Round the selection belongs to.
        round: usize,
        /// Greedy step the pick happened at (0-based).
        step: usize,
        /// Task index of the chosen query.
        task: usize,
        /// Fact index within the task.
        fact: u32,
        /// The winning gain (NaN for selectors without per-step gains).
        gain: f64,
        /// Causal id threaded through this query's dispatches.
        query_id: u64,
    },
    /// One answer attempt was handed to a worker.
    QueryDispatched {
        /// Round the dispatch belongs to.
        round: usize,
        /// Task index.
        task: usize,
        /// Fact index within the task.
        fact: u32,
        /// Worker id the query was assigned to.
        worker: u32,
        /// Causal id of the selected query this dispatch serves
        /// (0 in logs recorded before the field existed).
        query_id: u64,
    },
    /// A dispatched attempt came back with an answer.
    AnswerDelivered {
        /// Round the dispatch belongs to.
        round: usize,
        /// Task index.
        task: usize,
        /// Fact index within the task.
        fact: u32,
        /// Worker id that was asked (the dispatch key; under
        /// reassignment the *answering* worker may differ).
        worker: u32,
        /// Causal id of the dispatch being closed.
        query_id: u64,
        /// The boolean answer.
        answer: bool,
    },
    /// A dispatched attempt timed out (after any platform retries).
    AnswerTimedOut {
        /// Round the dispatch belongs to.
        round: usize,
        /// Task index.
        task: usize,
        /// Fact index within the task.
        fact: u32,
        /// Worker id that was asked.
        worker: u32,
        /// Causal id of the dispatch being closed.
        query_id: u64,
    },
    /// A dispatched attempt was dropped (after any platform retries).
    AnswerDropped {
        /// Round the dispatch belongs to.
        round: usize,
        /// Task index.
        task: usize,
        /// Fact index within the task.
        fact: u32,
        /// Worker id that was asked.
        worker: u32,
        /// Causal id of the dispatch being closed.
        query_id: u64,
    },
    /// The platform metered the simulated latency of one delivered
    /// answer. Emitted by the platform *before* the loop's own
    /// `AnswerDelivered` closes the dispatch, and attributed to the
    /// worker that actually answered (under reassignment that may
    /// differ from the dispatch-key worker). Carries no round — the
    /// platform does not know it — and, like `RetryScheduled`, is
    /// exempt from the dispatch-closure grammar.
    AnswerLatency {
        /// Task index.
        task: usize,
        /// Fact index within the task.
        fact: u32,
        /// Worker that delivered the answer.
        worker: u32,
        /// Simulated seconds the answer took.
        latency_secs: f64,
        /// Causal id of the dispatch being answered (0 when the
        /// platform is used outside a dispatching loop).
        query_id: u64,
    },
    /// The platform scheduled a retry for a failed attempt.
    RetryScheduled {
        /// Task index.
        task: usize,
        /// Fact index within the task.
        fact: u32,
        /// Worker the retry goes to (may differ under reassignment).
        worker: u32,
        /// Attempt number about to run (1 = first retry).
        attempt: u32,
        /// Backoff charged before this retry, in simulated seconds.
        backoff_secs: f64,
        /// Causal id of the dispatch being retried (0 when the
        /// platform is used outside a dispatching loop).
        query_id: u64,
    },
    /// The fault layer converted an attempt into a failure.
    FaultInjected {
        /// Task index.
        task: usize,
        /// Fact index within the task.
        fact: u32,
        /// Worker whose attempt was failed.
        worker: u32,
        /// Which fault fired.
        kind: FaultKind,
        /// Causal id of the dispatch the fault interrupted (0 when the
        /// fault layer is used outside a dispatching loop).
        query_id: u64,
    },
    /// The round's Bayes update was applied.
    BeliefUpdated {
        /// Round number.
        round: usize,
        /// Total belief entropy after the update (the *realised*
        /// entropy, vs [`TelemetryEvent::RoundSelected`]'s prediction).
        entropy: f64,
        /// Dataset quality after the update.
        quality: f64,
        /// Cumulative budget spent after the round.
        budget_spent: u64,
        /// Answer attempts requested this round.
        answers_requested: usize,
        /// Answers that actually arrived this round.
        answers_received: usize,
    },
    /// Numerical health of the round's Bayes updates — emitted by the
    /// update hot path so the [`crate::audit`] rules can flag runs that
    /// came close to (or needed rescue from) floating-point collapse.
    NumericalHealth {
        /// Round number.
        round: usize,
        /// Smallest posterior cell mass across the round's per-task
        /// renormalisations.
        min_mass: f64,
        /// Smallest pre-normalisation total mass (the renormalisation
        /// scale); values near the subnormal range mean the belief
        /// survived the round only barely.
        renorm_scale: f64,
        /// Total log evidence of the round's answers, summed across
        /// tasks (finite even when the linear mass underflowed).
        log_evidence: f64,
        /// Posterior cells flushed to exact zero despite finite
        /// log-likelihood, summed across tasks.
        clamp_count: u64,
        /// Whether any task's update needed the log-domain rescue path.
        rescued: bool,
    },
    /// End-of-run profile from the session thread's timing state:
    /// the hierarchical span tree, flat per-phase latency stats, and
    /// deterministic work counters. Emitted just before
    /// [`TelemetryEvent::RunFinished`] when profiling is enabled
    /// (`HcConfig::profile`); timings are wall-clock and therefore
    /// **not** reproducible across runs, which is why the event is
    /// opt-in and ignored by the replay fold's state reconstruction.
    ProfileReport {
        /// Span-tree paths in depth-first order.
        spans: Vec<ProfileSpan>,
        /// Per-phase latency stats (phases with at least one span).
        phases: Vec<PhaseProfile>,
        /// Work counters, sorted by counter name.
        counters: Vec<(String, u64)>,
    },
    /// The loop terminated.
    RunFinished {
        /// Rounds executed.
        rounds: usize,
        /// Total budget spent.
        budget_spent: u64,
        /// Final total belief entropy.
        entropy: f64,
        /// Final dataset quality.
        quality: f64,
        /// Why the loop stopped.
        reason: StopReason,
    },
    /// A corpus run began (`hc-core::corpus`): the envelope opener of a
    /// multi-group trace. Between a [`TelemetryEvent::GroupScheduled`]
    /// and its closing [`TelemetryEvent::GroupAdvanced`] /
    /// [`TelemetryEvent::GroupFinished`], every event belongs to that
    /// group's sub-stream; the concatenated segments of one group form
    /// a complete single-run trace.
    CorpusStarted {
        /// Fact groups in the corpus.
        groups: usize,
        /// Total facts across all groups.
        facts: usize,
        /// The shared checking budget (pooled mode) or the sum of the
        /// per-group budgets (per-group mode).
        budget: u64,
        /// Whether the groups draw from one shared pool.
        pooled: bool,
    },
    /// The cross-group scheduler picked a group — opens that group's
    /// next trace segment.
    GroupScheduled {
        /// Group index within the corpus.
        group: usize,
        /// Global scheduler step, 0-based; one per executed segment.
        step: u64,
        /// The fresh predicted entropy gain the group won the pick
        /// with (0 for a pick that only finishes the group).
        gain: f64,
    },
    /// The scheduled group executed one full round and suspended —
    /// closes the segment opened by the matching
    /// [`TelemetryEvent::GroupScheduled`].
    GroupAdvanced {
        /// Group index within the corpus.
        group: usize,
        /// The scheduler step this segment ran under.
        step: u64,
        /// The group's own round counter after the executed round.
        round: usize,
        /// Budget the round consumed.
        spent_delta: u64,
        /// The group's total belief entropy after the round.
        entropy: f64,
    },
    /// The scheduled group terminated — closes its final segment.
    /// Exactly one per group in a complete corpus trace.
    GroupFinished {
        /// Group index within the corpus.
        group: usize,
        /// The scheduler step this segment ran under.
        step: u64,
        /// Why the group's loop stopped.
        reason: StopReason,
        /// The group's total spend over the whole corpus run.
        spent: u64,
        /// The group's final total belief entropy.
        entropy: f64,
    },
    /// The corpus run ended: the envelope closer.
    CorpusFinished {
        /// Scheduler steps executed (= `GroupScheduled` count).
        steps: u64,
        /// Total budget spent across all groups.
        spent: u64,
        /// Groups that reached a terminal state.
        finished: usize,
        /// Final belief entropy summed across all groups.
        entropy: f64,
    },
}

impl TelemetryEvent {
    /// The event's stable snake_case type tag.
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::RunStarted { .. } => "run_started",
            TelemetryEvent::RoundSelected { .. } => "round_selected",
            TelemetryEvent::CandidateScored { .. } => "candidate_scored",
            TelemetryEvent::QuerySelected { .. } => "query_selected",
            TelemetryEvent::QueryDispatched { .. } => "query_dispatched",
            TelemetryEvent::AnswerDelivered { .. } => "answer_delivered",
            TelemetryEvent::AnswerTimedOut { .. } => "answer_timed_out",
            TelemetryEvent::AnswerDropped { .. } => "answer_dropped",
            TelemetryEvent::AnswerLatency { .. } => "answer_latency",
            TelemetryEvent::RetryScheduled { .. } => "retry_scheduled",
            TelemetryEvent::FaultInjected { .. } => "fault_injected",
            TelemetryEvent::BeliefUpdated { .. } => "belief_updated",
            TelemetryEvent::NumericalHealth { .. } => "numerical_health",
            TelemetryEvent::ProfileReport { .. } => "profile_report",
            TelemetryEvent::RunFinished { .. } => "run_finished",
            TelemetryEvent::CorpusStarted { .. } => "corpus_started",
            TelemetryEvent::GroupScheduled { .. } => "group_scheduled",
            TelemetryEvent::GroupAdvanced { .. } => "group_advanced",
            TelemetryEvent::GroupFinished { .. } => "group_finished",
            TelemetryEvent::CorpusFinished { .. } => "corpus_finished",
        }
    }

    /// Builds a [`TelemetryEvent::ProfileReport`] from a thread's
    /// timing snapshot. Phases with no spans are omitted; counters are
    /// emitted for every [`crate::timing::Counter`], sorted by name.
    pub fn profile_report(snap: &crate::timing::TimingSnapshot) -> Self {
        let spans = snap
            .tree_nodes()
            .iter()
            .map(|n| ProfileSpan {
                path: n.path.clone(),
                count: n.count,
                total_nanos: n.total_nanos,
                self_nanos: n.self_nanos,
            })
            .collect();
        let phases = crate::timing::PHASES
            .into_iter()
            .filter(|&p| snap.count(p) > 0)
            .map(|p| {
                let (min_nanos, max_nanos) = snap.min_max_nanos(p).unwrap_or((0, 0));
                PhaseProfile {
                    phase: p.name().to_string(),
                    count: snap.count(p),
                    total_nanos: snap.total_nanos(p),
                    min_nanos,
                    max_nanos,
                    p50_nanos: snap.quantile_nanos(p, 0.50).unwrap_or(f64::NAN),
                    p95_nanos: snap.quantile_nanos(p, 0.95).unwrap_or(f64::NAN),
                    p99_nanos: snap.quantile_nanos(p, 0.99).unwrap_or(f64::NAN),
                }
            })
            .collect();
        let mut counters: Vec<(String, u64)> = crate::timing::COUNTERS
            .into_iter()
            .map(|c| (c.name().to_string(), snap.counter(c)))
            .collect();
        counters.sort();
        TelemetryEvent::ProfileReport {
            spans,
            phases,
            counters,
        }
    }

    /// The round the event belongs to, for events that carry one.
    pub fn round(&self) -> Option<usize> {
        match self {
            TelemetryEvent::RoundSelected { round, .. }
            | TelemetryEvent::CandidateScored { round, .. }
            | TelemetryEvent::QuerySelected { round, .. }
            | TelemetryEvent::QueryDispatched { round, .. }
            | TelemetryEvent::AnswerDelivered { round, .. }
            | TelemetryEvent::AnswerTimedOut { round, .. }
            | TelemetryEvent::AnswerDropped { round, .. }
            | TelemetryEvent::BeliefUpdated { round, .. }
            | TelemetryEvent::NumericalHealth { round, .. } => Some(*round),
            _ => None,
        }
    }

    /// Encodes the event as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"type\":\"");
        s.push_str(self.kind());
        s.push('"');
        match self {
            TelemetryEvent::RunStarted {
                tasks,
                facts,
                panel,
                budget,
                k,
                entropy,
                quality,
                belief_repr,
            } => {
                let _ = write!(
                    s,
                    ",\"tasks\":{tasks},\"facts\":{facts},\"panel\":{panel},\"budget\":{budget},\"k\":{k}"
                );
                push_f64(&mut s, "entropy", *entropy);
                push_f64(&mut s, "quality", *quality);
                let _ = write!(s, ",\"belief_repr\":\"{}\"", belief_repr.name());
            }
            TelemetryEvent::RoundSelected {
                round,
                k_requested,
                k_effective,
                queries,
                entropy_before,
                predicted_entropy,
            } => {
                let _ = write!(
                    s,
                    ",\"round\":{round},\"k_requested\":{k_requested},\"k_effective\":{k_effective},\"queries\":["
                );
                for (i, (task, fact)) in queries.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "[{task},{fact}]");
                }
                s.push(']');
                push_f64(&mut s, "entropy_before", *entropy_before);
                push_f64(&mut s, "predicted_entropy", *predicted_entropy);
            }
            TelemetryEvent::CandidateScored {
                round,
                step,
                task,
                fact,
                gain,
            } => {
                let _ = write!(
                    s,
                    ",\"round\":{round},\"step\":{step},\"task\":{task},\"fact\":{fact}"
                );
                push_f64(&mut s, "gain", *gain);
            }
            TelemetryEvent::QuerySelected {
                round,
                step,
                task,
                fact,
                gain,
                query_id,
            } => {
                let _ = write!(
                    s,
                    ",\"round\":{round},\"step\":{step},\"task\":{task},\"fact\":{fact}"
                );
                push_f64(&mut s, "gain", *gain);
                let _ = write!(s, ",\"query_id\":{query_id}");
            }
            TelemetryEvent::QueryDispatched {
                round,
                task,
                fact,
                worker,
                query_id,
            }
            | TelemetryEvent::AnswerTimedOut {
                round,
                task,
                fact,
                worker,
                query_id,
            }
            | TelemetryEvent::AnswerDropped {
                round,
                task,
                fact,
                worker,
                query_id,
            } => {
                let _ = write!(
                    s,
                    ",\"round\":{round},\"task\":{task},\"fact\":{fact},\"worker\":{worker},\"query_id\":{query_id}"
                );
            }
            TelemetryEvent::AnswerDelivered {
                round,
                task,
                fact,
                worker,
                query_id,
                answer,
            } => {
                let _ = write!(
                    s,
                    ",\"round\":{round},\"task\":{task},\"fact\":{fact},\"worker\":{worker},\"query_id\":{query_id},\"answer\":{answer}"
                );
            }
            TelemetryEvent::AnswerLatency {
                task,
                fact,
                worker,
                latency_secs,
                query_id,
            } => {
                let _ = write!(s, ",\"task\":{task},\"fact\":{fact},\"worker\":{worker}");
                push_f64(&mut s, "latency_secs", *latency_secs);
                let _ = write!(s, ",\"query_id\":{query_id}");
            }
            TelemetryEvent::RetryScheduled {
                task,
                fact,
                worker,
                attempt,
                backoff_secs,
                query_id,
            } => {
                let _ = write!(
                    s,
                    ",\"task\":{task},\"fact\":{fact},\"worker\":{worker},\"attempt\":{attempt}"
                );
                push_f64(&mut s, "backoff_secs", *backoff_secs);
                let _ = write!(s, ",\"query_id\":{query_id}");
            }
            TelemetryEvent::FaultInjected {
                task,
                fact,
                worker,
                kind,
                query_id,
            } => {
                let _ = write!(
                    s,
                    ",\"task\":{task},\"fact\":{fact},\"worker\":{worker},\"kind\":\"{}\",\"query_id\":{query_id}",
                    kind.name()
                );
            }
            TelemetryEvent::BeliefUpdated {
                round,
                entropy,
                quality,
                budget_spent,
                answers_requested,
                answers_received,
            } => {
                let _ = write!(s, ",\"round\":{round}");
                push_f64(&mut s, "entropy", *entropy);
                push_f64(&mut s, "quality", *quality);
                let _ = write!(
                    s,
                    ",\"budget_spent\":{budget_spent},\"answers_requested\":{answers_requested},\"answers_received\":{answers_received}"
                );
            }
            TelemetryEvent::NumericalHealth {
                round,
                min_mass,
                renorm_scale,
                log_evidence,
                clamp_count,
                rescued,
            } => {
                let _ = write!(s, ",\"round\":{round}");
                push_f64(&mut s, "min_mass", *min_mass);
                push_f64(&mut s, "renorm_scale", *renorm_scale);
                push_f64(&mut s, "log_evidence", *log_evidence);
                let _ = write!(s, ",\"clamp_count\":{clamp_count},\"rescued\":{rescued}");
            }
            TelemetryEvent::ProfileReport {
                spans,
                phases,
                counters,
            } => {
                s.push_str(",\"spans\":[");
                for (i, sp) in spans.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str("{\"path\":");
                    json::write_str(&mut s, &sp.path);
                    let _ = write!(
                        s,
                        ",\"count\":{},\"total_nanos\":{},\"self_nanos\":{}}}",
                        sp.count, sp.total_nanos, sp.self_nanos
                    );
                }
                s.push_str("],\"phases\":[");
                for (i, ph) in phases.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str("{\"phase\":");
                    json::write_str(&mut s, &ph.phase);
                    let _ = write!(
                        s,
                        ",\"count\":{},\"total_nanos\":{},\"min_nanos\":{},\"max_nanos\":{}",
                        ph.count, ph.total_nanos, ph.min_nanos, ph.max_nanos
                    );
                    push_f64(&mut s, "p50_nanos", ph.p50_nanos);
                    push_f64(&mut s, "p95_nanos", ph.p95_nanos);
                    push_f64(&mut s, "p99_nanos", ph.p99_nanos);
                    s.push('}');
                }
                s.push_str("],\"counters\":{");
                for (i, (name, value)) in counters.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    json::write_str(&mut s, name);
                    let _ = write!(s, ":{value}");
                }
                s.push('}');
            }
            TelemetryEvent::RunFinished {
                rounds,
                budget_spent,
                entropy,
                quality,
                reason,
            } => {
                let _ = write!(s, ",\"rounds\":{rounds},\"budget_spent\":{budget_spent}");
                push_f64(&mut s, "entropy", *entropy);
                push_f64(&mut s, "quality", *quality);
                let _ = write!(s, ",\"reason\":\"{}\"", reason.name());
            }
            TelemetryEvent::CorpusStarted {
                groups,
                facts,
                budget,
                pooled,
            } => {
                let _ = write!(
                    s,
                    ",\"groups\":{groups},\"facts\":{facts},\"budget\":{budget},\"pooled\":{pooled}"
                );
            }
            TelemetryEvent::GroupScheduled { group, step, gain } => {
                let _ = write!(s, ",\"group\":{group},\"step\":{step}");
                push_f64(&mut s, "gain", *gain);
            }
            TelemetryEvent::GroupAdvanced {
                group,
                step,
                round,
                spent_delta,
                entropy,
            } => {
                let _ = write!(
                    s,
                    ",\"group\":{group},\"step\":{step},\"round\":{round},\"spent_delta\":{spent_delta}"
                );
                push_f64(&mut s, "entropy", *entropy);
            }
            TelemetryEvent::GroupFinished {
                group,
                step,
                reason,
                spent,
                entropy,
            } => {
                let _ = write!(
                    s,
                    ",\"group\":{group},\"step\":{step},\"reason\":\"{}\",\"spent\":{spent}",
                    reason.name()
                );
                push_f64(&mut s, "entropy", *entropy);
            }
            TelemetryEvent::CorpusFinished {
                steps,
                spent,
                finished,
                entropy,
            } => {
                let _ = write!(s, ",\"steps\":{steps},\"spent\":{spent},\"finished\":{finished}");
                push_f64(&mut s, "entropy", *entropy);
            }
        }
        s.push('}');
        s
    }

    /// Decodes one JSONL line produced by [`Self::to_json_line`].
    pub fn from_json_line(line: &str) -> Result<Self, json::ParseError> {
        let v = json::parse(line.trim())?;
        let bad = |what: &str| json::ParseError {
            message: format!("missing or invalid field `{what}`"),
            offset: 0,
        };
        let kind = v.get("type").and_then(Json::as_str).ok_or_else(|| bad("type"))?;
        let f = |name: &str| v.get(name).and_then(Json::as_f64).ok_or_else(|| bad(name));
        let us = |name: &str| v.get(name).and_then(Json::as_usize).ok_or_else(|| bad(name));
        let u64f = |name: &str| v.get(name).and_then(Json::as_u64).ok_or_else(|| bad(name));
        let u32f = |name: &str| v.get(name).and_then(Json::as_u32).ok_or_else(|| bad(name));
        // Back-compat: logs recorded before causal ids existed have no
        // `query_id` field; a present-but-malformed one is an error.
        let qid = || match v.get("query_id") {
            None => Ok(0u64),
            Some(x) => x.as_u64().ok_or_else(|| bad("query_id")),
        };
        match kind {
            "run_started" => Ok(TelemetryEvent::RunStarted {
                tasks: us("tasks")?,
                facts: us("facts")?,
                panel: us("panel")?,
                budget: u64f("budget")?,
                k: us("k")?,
                entropy: f("entropy")?,
                quality: f("quality")?,
                // Absent in traces recorded before sparse/factored
                // beliefs existed — those runs were all dense.
                belief_repr: match v.get("belief_repr") {
                    None => BeliefReprSummary::Dense,
                    Some(x) => x
                        .as_str()
                        .and_then(BeliefReprSummary::parse)
                        .ok_or_else(|| bad("belief_repr"))?,
                },
            }),
            "round_selected" => {
                let queries = v
                    .get("queries")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("queries"))?
                    .iter()
                    .map(|pair| {
                        let pair = pair.as_arr()?;
                        match pair {
                            [t, q] => Some((t.as_usize()?, q.as_u32()?)),
                            _ => None,
                        }
                    })
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| bad("queries"))?;
                Ok(TelemetryEvent::RoundSelected {
                    round: us("round")?,
                    k_requested: us("k_requested")?,
                    k_effective: us("k_effective")?,
                    queries,
                    entropy_before: f("entropy_before")?,
                    predicted_entropy: f("predicted_entropy")?,
                })
            }
            "candidate_scored" => Ok(TelemetryEvent::CandidateScored {
                round: us("round")?,
                step: us("step")?,
                task: us("task")?,
                fact: u32f("fact")?,
                gain: f("gain")?,
            }),
            "query_selected" => Ok(TelemetryEvent::QuerySelected {
                round: us("round")?,
                step: us("step")?,
                task: us("task")?,
                fact: u32f("fact")?,
                gain: f("gain")?,
                query_id: qid()?,
            }),
            "query_dispatched" => Ok(TelemetryEvent::QueryDispatched {
                round: us("round")?,
                task: us("task")?,
                fact: u32f("fact")?,
                worker: u32f("worker")?,
                query_id: qid()?,
            }),
            "answer_delivered" => Ok(TelemetryEvent::AnswerDelivered {
                round: us("round")?,
                task: us("task")?,
                fact: u32f("fact")?,
                worker: u32f("worker")?,
                query_id: qid()?,
                answer: v.get("answer").and_then(Json::as_bool).ok_or_else(|| bad("answer"))?,
            }),
            "answer_timed_out" => Ok(TelemetryEvent::AnswerTimedOut {
                round: us("round")?,
                task: us("task")?,
                fact: u32f("fact")?,
                worker: u32f("worker")?,
                query_id: qid()?,
            }),
            "answer_dropped" => Ok(TelemetryEvent::AnswerDropped {
                round: us("round")?,
                task: us("task")?,
                fact: u32f("fact")?,
                worker: u32f("worker")?,
                query_id: qid()?,
            }),
            "answer_latency" => Ok(TelemetryEvent::AnswerLatency {
                task: us("task")?,
                fact: u32f("fact")?,
                worker: u32f("worker")?,
                latency_secs: f("latency_secs")?,
                query_id: qid()?,
            }),
            "retry_scheduled" => Ok(TelemetryEvent::RetryScheduled {
                task: us("task")?,
                fact: u32f("fact")?,
                worker: u32f("worker")?,
                attempt: u32f("attempt")?,
                backoff_secs: f("backoff_secs")?,
                query_id: qid()?,
            }),
            "fault_injected" => Ok(TelemetryEvent::FaultInjected {
                task: us("task")?,
                fact: u32f("fact")?,
                worker: u32f("worker")?,
                kind: v
                    .get("kind")
                    .and_then(Json::as_str)
                    .and_then(FaultKind::from_name)
                    .ok_or_else(|| bad("kind"))?,
                query_id: qid()?,
            }),
            "belief_updated" => Ok(TelemetryEvent::BeliefUpdated {
                round: us("round")?,
                entropy: f("entropy")?,
                quality: f("quality")?,
                budget_spent: u64f("budget_spent")?,
                answers_requested: us("answers_requested")?,
                answers_received: us("answers_received")?,
            }),
            "numerical_health" => Ok(TelemetryEvent::NumericalHealth {
                round: us("round")?,
                min_mass: f("min_mass")?,
                renorm_scale: f("renorm_scale")?,
                log_evidence: f("log_evidence")?,
                clamp_count: u64f("clamp_count")?,
                rescued: v
                    .get("rescued")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| bad("rescued"))?,
            }),
            "profile_report" => {
                let span_of = |x: &Json| -> Option<ProfileSpan> {
                    Some(ProfileSpan {
                        path: x.get("path")?.as_str()?.to_string(),
                        count: x.get("count")?.as_u64()?,
                        total_nanos: x.get("total_nanos")?.as_u64()?,
                        self_nanos: x.get("self_nanos")?.as_u64()?,
                    })
                };
                let phase_of = |x: &Json| -> Option<PhaseProfile> {
                    Some(PhaseProfile {
                        phase: x.get("phase")?.as_str()?.to_string(),
                        count: x.get("count")?.as_u64()?,
                        total_nanos: x.get("total_nanos")?.as_u64()?,
                        min_nanos: x.get("min_nanos")?.as_u64()?,
                        max_nanos: x.get("max_nanos")?.as_u64()?,
                        p50_nanos: x.get("p50_nanos")?.as_f64()?,
                        p95_nanos: x.get("p95_nanos")?.as_f64()?,
                        p99_nanos: x.get("p99_nanos")?.as_f64()?,
                    })
                };
                let spans = v
                    .get("spans")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("spans"))?
                    .iter()
                    .map(span_of)
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| bad("spans"))?;
                let phases = v
                    .get("phases")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("phases"))?
                    .iter()
                    .map(phase_of)
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| bad("phases"))?;
                let counters = match v.get("counters") {
                    Some(Json::Obj(map)) => map
                        .iter()
                        .map(|(k, x)| Some((k.clone(), x.as_u64()?)))
                        .collect::<Option<Vec<_>>>()
                        .ok_or_else(|| bad("counters"))?,
                    _ => return Err(bad("counters")),
                };
                Ok(TelemetryEvent::ProfileReport {
                    spans,
                    phases,
                    counters,
                })
            }
            "run_finished" => Ok(TelemetryEvent::RunFinished {
                rounds: us("rounds")?,
                budget_spent: u64f("budget_spent")?,
                entropy: f("entropy")?,
                quality: f("quality")?,
                reason: v
                    .get("reason")
                    .and_then(Json::as_str)
                    .and_then(StopReason::from_name)
                    .ok_or_else(|| bad("reason"))?,
            }),
            "corpus_started" => Ok(TelemetryEvent::CorpusStarted {
                groups: us("groups")?,
                facts: us("facts")?,
                budget: u64f("budget")?,
                pooled: v
                    .get("pooled")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| bad("pooled"))?,
            }),
            "group_scheduled" => Ok(TelemetryEvent::GroupScheduled {
                group: us("group")?,
                step: u64f("step")?,
                gain: f("gain")?,
            }),
            "group_advanced" => Ok(TelemetryEvent::GroupAdvanced {
                group: us("group")?,
                step: u64f("step")?,
                round: us("round")?,
                spent_delta: u64f("spent_delta")?,
                entropy: f("entropy")?,
            }),
            "group_finished" => Ok(TelemetryEvent::GroupFinished {
                group: us("group")?,
                step: u64f("step")?,
                reason: v
                    .get("reason")
                    .and_then(Json::as_str)
                    .and_then(StopReason::from_name)
                    .ok_or_else(|| bad("reason"))?,
                spent: u64f("spent")?,
                entropy: f("entropy")?,
            }),
            "corpus_finished" => Ok(TelemetryEvent::CorpusFinished {
                steps: u64f("steps")?,
                spent: u64f("spent")?,
                finished: us("finished")?,
                entropy: f("entropy")?,
            }),
            other => Err(json::ParseError {
                message: format!("unknown event type `{other}`"),
                offset: 0,
            }),
        }
    }
}

fn push_f64(s: &mut String, name: &str, v: f64) {
    s.push_str(",\"");
    s.push_str(name);
    s.push_str("\":");
    json::write_f64(s, v);
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn sample_events() -> Vec<TelemetryEvent> {
        vec![
            TelemetryEvent::RunStarted {
                tasks: 2,
                facts: 5,
                panel: 2,
                budget: 10,
                k: 1,
                entropy: 3.25,
                quality: -3.25,
                belief_repr: BeliefReprSummary::Dense,
            },
            TelemetryEvent::RoundSelected {
                round: 1,
                k_requested: 1,
                k_effective: 1,
                queries: vec![(0, 2), (1, 0)],
                entropy_before: 3.25,
                predicted_entropy: 2.5,
            },
            TelemetryEvent::CandidateScored {
                round: 1,
                step: 0,
                task: 0,
                fact: 2,
                gain: 0.75,
            },
            TelemetryEvent::QuerySelected {
                round: 1,
                step: 0,
                task: 0,
                fact: 2,
                gain: 0.75,
                query_id: 1,
            },
            TelemetryEvent::QueryDispatched {
                round: 1,
                task: 0,
                fact: 2,
                worker: 0,
                query_id: 1,
            },
            TelemetryEvent::RetryScheduled {
                task: 0,
                fact: 2,
                worker: 1,
                attempt: 1,
                backoff_secs: 30.0,
                query_id: 1,
            },
            TelemetryEvent::FaultInjected {
                task: 0,
                fact: 2,
                worker: 0,
                kind: FaultKind::Timeout,
                query_id: 1,
            },
            TelemetryEvent::AnswerLatency {
                task: 0,
                fact: 2,
                worker: 0,
                latency_secs: 21.5,
                query_id: 1,
            },
            TelemetryEvent::AnswerDelivered {
                round: 1,
                task: 0,
                fact: 2,
                worker: 0,
                query_id: 1,
                answer: true,
            },
            TelemetryEvent::AnswerTimedOut {
                round: 1,
                task: 1,
                fact: 0,
                worker: 1,
                query_id: 2,
            },
            TelemetryEvent::AnswerDropped {
                round: 1,
                task: 1,
                fact: 0,
                worker: 0,
                query_id: 2,
            },
            TelemetryEvent::CorpusStarted {
                groups: 3,
                facts: 15,
                budget: 60,
                pooled: true,
            },
            TelemetryEvent::GroupScheduled {
                group: 1,
                step: 0,
                gain: 0.5,
            },
            TelemetryEvent::GroupAdvanced {
                group: 1,
                step: 0,
                round: 1,
                spent_delta: 2,
                entropy: 2.75,
            },
            TelemetryEvent::GroupFinished {
                group: 1,
                step: 7,
                reason: StopReason::BudgetExhausted,
                spent: 20,
                entropy: 0.25,
            },
            TelemetryEvent::CorpusFinished {
                steps: 8,
                spent: 60,
                finished: 3,
                entropy: 1.5,
            },
            TelemetryEvent::BeliefUpdated {
                round: 1,
                entropy: 2.75,
                quality: -2.75,
                budget_spent: 2,
                answers_requested: 4,
                answers_received: 1,
            },
            TelemetryEvent::NumericalHealth {
                round: 1,
                min_mass: 1.5e-11,
                renorm_scale: 0.125,
                log_evidence: -2.079_441_541_679_835_7,
                clamp_count: 3,
                rescued: true,
            },
            TelemetryEvent::ProfileReport {
                spans: vec![
                    ProfileSpan {
                        path: "select_queries".to_string(),
                        count: 1,
                        total_nanos: 1500,
                        self_nanos: 500,
                    },
                    ProfileSpan {
                        path: "select_queries/selection".to_string(),
                        count: 1,
                        total_nanos: 1000,
                        self_nanos: 1000,
                    },
                ],
                phases: vec![PhaseProfile {
                    phase: "selection".to_string(),
                    count: 1,
                    total_nanos: 1000,
                    min_nanos: 1000,
                    max_nanos: 1000,
                    p50_nanos: 1000.0,
                    p95_nanos: 1000.0,
                    p99_nanos: 1000.0,
                }],
                counters: vec![
                    ("candidate_evals".to_string(), 12),
                    ("chunks_dispatched".to_string(), 0),
                    ("patterns_touched".to_string(), 64),
                    ("rescued_updates".to_string(), 1),
                ],
            },
            TelemetryEvent::RunFinished {
                rounds: 1,
                budget_spent: 2,
                entropy: 2.75,
                quality: -2.75,
                reason: StopReason::BudgetExhausted,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        for event in sample_events() {
            let line = event.to_json_line();
            let back = TelemetryEvent::from_json_line(&line)
                .unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, event, "via {line}");
        }
    }

    #[test]
    fn kind_names_are_stable() {
        let kinds: Vec<&str> = sample_events().iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                "run_started",
                "round_selected",
                "candidate_scored",
                "query_selected",
                "query_dispatched",
                "retry_scheduled",
                "fault_injected",
                "answer_latency",
                "answer_delivered",
                "answer_timed_out",
                "answer_dropped",
                "corpus_started",
                "group_scheduled",
                "group_advanced",
                "group_finished",
                "corpus_finished",
                "belief_updated",
                "numerical_health",
                "profile_report",
                "run_finished",
            ]
        );
    }

    #[test]
    fn round_accessor_covers_round_scoped_events() {
        for event in sample_events() {
            match event.kind() {
                "run_started" | "run_finished" | "retry_scheduled" | "fault_injected"
                | "answer_latency" | "profile_report" | "corpus_started" | "group_scheduled"
                | "group_advanced" | "group_finished" | "corpus_finished" => {
                    // Corpus envelope events carry group-local or
                    // scheduler-level counters, never a run round.
                    assert_eq!(event.round(), None);
                }
                _ => assert_eq!(event.round(), Some(1)),
            }
        }
    }

    #[test]
    fn unknown_type_is_an_error() {
        assert!(TelemetryEvent::from_json_line(r#"{"type":"nope"}"#).is_err());
        assert!(TelemetryEvent::from_json_line("{}").is_err());
        assert!(TelemetryEvent::from_json_line("not json").is_err());
    }

    #[test]
    fn missing_fields_are_errors() {
        assert!(TelemetryEvent::from_json_line(r#"{"type":"query_dispatched","round":1}"#).is_err());
    }

    #[test]
    fn pre_query_id_logs_decode_with_id_zero() {
        // A PR-2-era line without the field.
        let line = r#"{"type":"query_dispatched","round":1,"task":0,"fact":2,"worker":0}"#;
        match TelemetryEvent::from_json_line(line).expect("old logs still parse") {
            TelemetryEvent::QueryDispatched { query_id, .. } => assert_eq!(query_id, 0),
            other => panic!("wrong variant: {other:?}"),
        }
        // A present-but-malformed query_id is an error, not a default.
        let bad = r#"{"type":"query_dispatched","round":1,"task":0,"fact":2,"worker":0,"query_id":-3}"#;
        assert!(TelemetryEvent::from_json_line(bad).is_err());
    }

    #[test]
    fn old_fault_and_retry_lines_keep_their_worker_attribution() {
        // A pre-crowd-health trace: fault/retry lines in the oldest
        // shape (no query_id, no answer_latency lines anywhere). The
        // worker id those events always carried must decode, round-trip,
        // and fold into the crowd ledger's per-worker counters.
        let old_trace = [
            r#"{"type":"query_dispatched","round":1,"task":0,"fact":0,"worker":3}"#,
            r#"{"type":"fault_injected","task":0,"fact":0,"worker":3,"kind":"timeout"}"#,
            r#"{"type":"retry_scheduled","task":0,"fact":0,"worker":3,"attempt":1,"backoff_secs":30.0}"#,
            r#"{"type":"answer_timed_out","round":1,"task":0,"fact":0,"worker":3}"#,
        ];
        let events: Vec<TelemetryEvent> = old_trace
            .iter()
            .map(|line| TelemetryEvent::from_json_line(line).expect("old logs still parse"))
            .collect();
        match (&events[1], &events[2]) {
            (
                TelemetryEvent::FaultInjected {
                    worker: fw,
                    query_id: fq,
                    ..
                },
                TelemetryEvent::RetryScheduled {
                    worker: rw,
                    query_id: rq,
                    ..
                },
            ) => {
                assert_eq!((*fw, *rw), (3, 3));
                assert_eq!((*fq, *rq), (0, 0), "missing causal ids default to 0");
            }
            other => panic!("wrong variants: {other:?}"),
        }
        // The re-encoded lines decode to the same events (the modern
        // encoding adds query_id:0, which is the same trace).
        for event in &events {
            let back = TelemetryEvent::from_json_line(&event.to_json_line()).expect("round-trips");
            assert_eq!(&back, event);
        }
        // Worker attribution survives into the folded ledger.
        let ledger = crate::crowd::CrowdLedger::from_events(&events);
        let w = ledger.workers.get(&3).expect("worker 3 has a row");
        assert_eq!(w.dispatched, 1);
        assert_eq!(w.faults, 1);
        assert_eq!(w.retries, 1);
        assert_eq!(w.timed_out, 1);
        assert_eq!(w.delivered, 0);
    }

    #[test]
    fn nan_gain_round_trips_through_json() {
        // Non-greedy selectors report NaN gains in explain mode; the
        // encoding (null) must survive a round trip.
        let event = TelemetryEvent::QuerySelected {
            round: 2,
            step: 1,
            task: 0,
            fact: 1,
            gain: f64::NAN,
            query_id: 9,
        };
        let line = event.to_json_line();
        match TelemetryEvent::from_json_line(&line).expect("parses") {
            TelemetryEvent::QuerySelected { gain, query_id, .. } => {
                assert!(gain.is_nan());
                assert_eq!(query_id, 9);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn profile_report_builds_from_a_snapshot_and_round_trips() {
        use crate::timing::{self, Counter, Phase};
        timing::set_enabled(true);
        timing::reset();
        {
            let _outer = timing::span(Phase::SelectQueries);
            let _inner = timing::span(Phase::Selection);
        }
        timing::add(Counter::CandidateEvals, 7);
        let snap = timing::snapshot();
        timing::set_enabled(false);
        timing::reset();

        let event = TelemetryEvent::profile_report(&snap);
        let line = event.to_json_line();
        let back = TelemetryEvent::from_json_line(&line).expect("parses");
        assert_eq!(back, event, "via {line}");
        match &event {
            TelemetryEvent::ProfileReport {
                spans,
                phases,
                counters,
            } => {
                let paths: Vec<&str> = spans.iter().map(|s| s.path.as_str()).collect();
                assert_eq!(paths, vec!["select_queries", "select_queries/selection"]);
                // Only sampled phases appear.
                assert_eq!(phases.len(), 2);
                assert!(counters.contains(&("candidate_evals".to_string(), 7)));
                assert!(counters.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn malformed_profile_reports_are_errors() {
        for line in [
            r#"{"type":"profile_report"}"#,
            r#"{"type":"profile_report","spans":[],"phases":[]}"#,
            r#"{"type":"profile_report","spans":[{"path":"x"}],"phases":[],"counters":{}}"#,
            r#"{"type":"profile_report","spans":[],"phases":[],"counters":{"a":-1}}"#,
        ] {
            assert!(TelemetryEvent::from_json_line(line).is_err(), "{line}");
        }
    }
}
