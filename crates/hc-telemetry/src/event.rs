//! The typed event model of an HC run.
//!
//! One checking run emits a linear event stream:
//!
//! ```text
//! RunStarted
//!   ┌ RoundSelected                  (one per round)
//!   │   ├ CandidateScored*           (explain mode: gains the argmax saw)
//!   │   └ QuerySelected*             (explain mode: one per chosen query)
//!   │   QueryDispatched              (one per query × panel worker)
//!   │   ├ RetryScheduled / FaultInjected   (platform / fault layer)
//!   │   └ AnswerDelivered | AnswerTimedOut | AnswerDropped
//!   ├ BeliefUpdated
//!   └ NumericalHealth              (update-kernel float health report)
//! RunFinished
//! ```
//!
//! The contract the [`crate::audit`] module enforces: every
//! [`TelemetryEvent::QueryDispatched`] is closed by *exactly one* of
//! `AnswerDelivered` / `AnswerTimedOut` / `AnswerDropped` with the same
//! `(round, task, fact, worker, query_id)` key, before the next
//! dispatch opens (the loop is serial).
//!
//! `query_id` is the causal thread: the loop assigns one id per
//! selected query per round (ids count up from 1 across the run), all
//! panel dispatches for that query carry it, and the platform / fault
//! layers stamp their `RetryScheduled` / `FaultInjected` events with
//! the id of the dispatch they interrupted — so a retry storm or an
//! injected fault is attributable to the selection step that caused it.
//! Logs recorded before this field existed decode with `query_id == 0`.
//!
//! Events carry plain ids (task index, fact index, worker id) rather
//! than `hc-core` types so this crate stays dependency-free and every
//! layer of the stack can emit into the same stream.

use crate::json::{self, Json};
use std::fmt::Write as _;

/// Which fault the fault-injection layer fired on an attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker abandoned the assignment.
    Dropout,
    /// The attempt timed out.
    Timeout,
    /// A platform-wide burst outage window swallowed the attempt.
    Burst,
    /// The worker permanently churned out of the crowd.
    Churn,
}

impl FaultKind {
    /// Stable lowercase name used in the JSON encoding.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Dropout => "dropout",
            FaultKind::Timeout => "timeout",
            FaultKind::Burst => "burst",
            FaultKind::Churn => "churn",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "dropout" => Some(FaultKind::Dropout),
            "timeout" => Some(FaultKind::Timeout),
            "burst" => Some(FaultKind::Burst),
            "churn" => Some(FaultKind::Churn),
            _ => None,
        }
    }
}

/// Why the checking loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The remaining budget cannot afford another query (Algorithm 3).
    BudgetExhausted,
    /// No candidate offered positive expected gain (Algorithm 2).
    NoPositiveGain,
    /// The configured `max_rounds` cap was reached.
    MaxRounds,
    /// Too many consecutive rounds delivered zero answers.
    DryRounds,
}

impl StopReason {
    /// Stable lowercase name used in the JSON encoding.
    pub fn name(self) -> &'static str {
        match self {
            StopReason::BudgetExhausted => "budget_exhausted",
            StopReason::NoPositiveGain => "no_positive_gain",
            StopReason::MaxRounds => "max_rounds",
            StopReason::DryRounds => "dry_rounds",
        }
    }

    /// Parses a [`StopReason::name`] back; `None` for unknown names.
    ///
    /// Public because checkpoint payloads (see [`crate::checkpoint`])
    /// store stop reasons by their stable name and must reject foreign
    /// values with a typed error rather than a panic.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "budget_exhausted" => Some(StopReason::BudgetExhausted),
            "no_positive_gain" => Some(StopReason::NoPositiveGain),
            "max_rounds" => Some(StopReason::MaxRounds),
            "dry_rounds" => Some(StopReason::DryRounds),
        _ => None,
        }
    }
}

/// One structured event in an HC run's telemetry stream.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// The loop is about to run.
    RunStarted {
        /// Number of tasks in the belief state.
        tasks: usize,
        /// Total facts across all tasks (the global query space).
        facts: usize,
        /// Size of the expert panel.
        panel: usize,
        /// Total checking budget, in cost units.
        budget: u64,
        /// Configured base queries per round.
        k: usize,
        /// Total belief entropy `H(O)` before any checking, in nats.
        entropy: f64,
        /// Dataset quality `-Σ_t H(O_t)` before any checking.
        quality: f64,
    },
    /// The selector chose this round's query set.
    RoundSelected {
        /// Round number, starting at 1.
        round: usize,
        /// Query count the schedule asked for this round.
        k_requested: usize,
        /// Query count actually affordable and selected.
        k_effective: usize,
        /// The selected `(task, fact)` pairs.
        queries: Vec<(usize, u32)>,
        /// Total belief entropy before the round.
        entropy_before: f64,
        /// The selector's objective `H(O | AS^T)` for the chosen set —
        /// the entropy it *predicts* will remain after the update.
        predicted_entropy: f64,
    },
    /// Explain mode: the greedy argmax evaluated this candidate's
    /// marginal conditional-entropy gain (Equation (35)) at one step.
    ///
    /// Emitted only when selection-explain is enabled; one event per
    /// gain the selector actually computed (the task-dirty / CELF
    /// schedules skip provably unchanged gains, so skipped candidates
    /// keep their score from an earlier step).
    CandidateScored {
        /// Round the scoring belongs to.
        round: usize,
        /// Greedy step (= queries already chosen when scored).
        step: usize,
        /// Task index of the candidate.
        task: usize,
        /// Fact index within the task.
        fact: u32,
        /// The marginal gain the argmax saw for this candidate.
        gain: f64,
    },
    /// Explain mode: the selector committed to this query at one step.
    QuerySelected {
        /// Round the selection belongs to.
        round: usize,
        /// Greedy step the pick happened at (0-based).
        step: usize,
        /// Task index of the chosen query.
        task: usize,
        /// Fact index within the task.
        fact: u32,
        /// The winning gain (NaN for selectors without per-step gains).
        gain: f64,
        /// Causal id threaded through this query's dispatches.
        query_id: u64,
    },
    /// One answer attempt was handed to a worker.
    QueryDispatched {
        /// Round the dispatch belongs to.
        round: usize,
        /// Task index.
        task: usize,
        /// Fact index within the task.
        fact: u32,
        /// Worker id the query was assigned to.
        worker: u32,
        /// Causal id of the selected query this dispatch serves
        /// (0 in logs recorded before the field existed).
        query_id: u64,
    },
    /// A dispatched attempt came back with an answer.
    AnswerDelivered {
        /// Round the dispatch belongs to.
        round: usize,
        /// Task index.
        task: usize,
        /// Fact index within the task.
        fact: u32,
        /// Worker id that was asked (the dispatch key; under
        /// reassignment the *answering* worker may differ).
        worker: u32,
        /// Causal id of the dispatch being closed.
        query_id: u64,
        /// The boolean answer.
        answer: bool,
    },
    /// A dispatched attempt timed out (after any platform retries).
    AnswerTimedOut {
        /// Round the dispatch belongs to.
        round: usize,
        /// Task index.
        task: usize,
        /// Fact index within the task.
        fact: u32,
        /// Worker id that was asked.
        worker: u32,
        /// Causal id of the dispatch being closed.
        query_id: u64,
    },
    /// A dispatched attempt was dropped (after any platform retries).
    AnswerDropped {
        /// Round the dispatch belongs to.
        round: usize,
        /// Task index.
        task: usize,
        /// Fact index within the task.
        fact: u32,
        /// Worker id that was asked.
        worker: u32,
        /// Causal id of the dispatch being closed.
        query_id: u64,
    },
    /// The platform scheduled a retry for a failed attempt.
    RetryScheduled {
        /// Task index.
        task: usize,
        /// Fact index within the task.
        fact: u32,
        /// Worker the retry goes to (may differ under reassignment).
        worker: u32,
        /// Attempt number about to run (1 = first retry).
        attempt: u32,
        /// Backoff charged before this retry, in simulated seconds.
        backoff_secs: f64,
        /// Causal id of the dispatch being retried (0 when the
        /// platform is used outside a dispatching loop).
        query_id: u64,
    },
    /// The fault layer converted an attempt into a failure.
    FaultInjected {
        /// Task index.
        task: usize,
        /// Fact index within the task.
        fact: u32,
        /// Worker whose attempt was failed.
        worker: u32,
        /// Which fault fired.
        kind: FaultKind,
        /// Causal id of the dispatch the fault interrupted (0 when the
        /// fault layer is used outside a dispatching loop).
        query_id: u64,
    },
    /// The round's Bayes update was applied.
    BeliefUpdated {
        /// Round number.
        round: usize,
        /// Total belief entropy after the update (the *realised*
        /// entropy, vs [`TelemetryEvent::RoundSelected`]'s prediction).
        entropy: f64,
        /// Dataset quality after the update.
        quality: f64,
        /// Cumulative budget spent after the round.
        budget_spent: u64,
        /// Answer attempts requested this round.
        answers_requested: usize,
        /// Answers that actually arrived this round.
        answers_received: usize,
    },
    /// Numerical health of the round's Bayes updates — emitted by the
    /// update hot path so the [`crate::audit`] rules can flag runs that
    /// came close to (or needed rescue from) floating-point collapse.
    NumericalHealth {
        /// Round number.
        round: usize,
        /// Smallest posterior cell mass across the round's per-task
        /// renormalisations.
        min_mass: f64,
        /// Smallest pre-normalisation total mass (the renormalisation
        /// scale); values near the subnormal range mean the belief
        /// survived the round only barely.
        renorm_scale: f64,
        /// Total log evidence of the round's answers, summed across
        /// tasks (finite even when the linear mass underflowed).
        log_evidence: f64,
        /// Posterior cells flushed to exact zero despite finite
        /// log-likelihood, summed across tasks.
        clamp_count: u64,
        /// Whether any task's update needed the log-domain rescue path.
        rescued: bool,
    },
    /// The loop terminated.
    RunFinished {
        /// Rounds executed.
        rounds: usize,
        /// Total budget spent.
        budget_spent: u64,
        /// Final total belief entropy.
        entropy: f64,
        /// Final dataset quality.
        quality: f64,
        /// Why the loop stopped.
        reason: StopReason,
    },
}

impl TelemetryEvent {
    /// The event's stable snake_case type tag.
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::RunStarted { .. } => "run_started",
            TelemetryEvent::RoundSelected { .. } => "round_selected",
            TelemetryEvent::CandidateScored { .. } => "candidate_scored",
            TelemetryEvent::QuerySelected { .. } => "query_selected",
            TelemetryEvent::QueryDispatched { .. } => "query_dispatched",
            TelemetryEvent::AnswerDelivered { .. } => "answer_delivered",
            TelemetryEvent::AnswerTimedOut { .. } => "answer_timed_out",
            TelemetryEvent::AnswerDropped { .. } => "answer_dropped",
            TelemetryEvent::RetryScheduled { .. } => "retry_scheduled",
            TelemetryEvent::FaultInjected { .. } => "fault_injected",
            TelemetryEvent::BeliefUpdated { .. } => "belief_updated",
            TelemetryEvent::NumericalHealth { .. } => "numerical_health",
            TelemetryEvent::RunFinished { .. } => "run_finished",
        }
    }

    /// The round the event belongs to, for events that carry one.
    pub fn round(&self) -> Option<usize> {
        match self {
            TelemetryEvent::RoundSelected { round, .. }
            | TelemetryEvent::CandidateScored { round, .. }
            | TelemetryEvent::QuerySelected { round, .. }
            | TelemetryEvent::QueryDispatched { round, .. }
            | TelemetryEvent::AnswerDelivered { round, .. }
            | TelemetryEvent::AnswerTimedOut { round, .. }
            | TelemetryEvent::AnswerDropped { round, .. }
            | TelemetryEvent::BeliefUpdated { round, .. }
            | TelemetryEvent::NumericalHealth { round, .. } => Some(*round),
            _ => None,
        }
    }

    /// Encodes the event as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"type\":\"");
        s.push_str(self.kind());
        s.push('"');
        match self {
            TelemetryEvent::RunStarted {
                tasks,
                facts,
                panel,
                budget,
                k,
                entropy,
                quality,
            } => {
                let _ = write!(
                    s,
                    ",\"tasks\":{tasks},\"facts\":{facts},\"panel\":{panel},\"budget\":{budget},\"k\":{k}"
                );
                push_f64(&mut s, "entropy", *entropy);
                push_f64(&mut s, "quality", *quality);
            }
            TelemetryEvent::RoundSelected {
                round,
                k_requested,
                k_effective,
                queries,
                entropy_before,
                predicted_entropy,
            } => {
                let _ = write!(
                    s,
                    ",\"round\":{round},\"k_requested\":{k_requested},\"k_effective\":{k_effective},\"queries\":["
                );
                for (i, (task, fact)) in queries.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "[{task},{fact}]");
                }
                s.push(']');
                push_f64(&mut s, "entropy_before", *entropy_before);
                push_f64(&mut s, "predicted_entropy", *predicted_entropy);
            }
            TelemetryEvent::CandidateScored {
                round,
                step,
                task,
                fact,
                gain,
            } => {
                let _ = write!(
                    s,
                    ",\"round\":{round},\"step\":{step},\"task\":{task},\"fact\":{fact}"
                );
                push_f64(&mut s, "gain", *gain);
            }
            TelemetryEvent::QuerySelected {
                round,
                step,
                task,
                fact,
                gain,
                query_id,
            } => {
                let _ = write!(
                    s,
                    ",\"round\":{round},\"step\":{step},\"task\":{task},\"fact\":{fact}"
                );
                push_f64(&mut s, "gain", *gain);
                let _ = write!(s, ",\"query_id\":{query_id}");
            }
            TelemetryEvent::QueryDispatched {
                round,
                task,
                fact,
                worker,
                query_id,
            }
            | TelemetryEvent::AnswerTimedOut {
                round,
                task,
                fact,
                worker,
                query_id,
            }
            | TelemetryEvent::AnswerDropped {
                round,
                task,
                fact,
                worker,
                query_id,
            } => {
                let _ = write!(
                    s,
                    ",\"round\":{round},\"task\":{task},\"fact\":{fact},\"worker\":{worker},\"query_id\":{query_id}"
                );
            }
            TelemetryEvent::AnswerDelivered {
                round,
                task,
                fact,
                worker,
                query_id,
                answer,
            } => {
                let _ = write!(
                    s,
                    ",\"round\":{round},\"task\":{task},\"fact\":{fact},\"worker\":{worker},\"query_id\":{query_id},\"answer\":{answer}"
                );
            }
            TelemetryEvent::RetryScheduled {
                task,
                fact,
                worker,
                attempt,
                backoff_secs,
                query_id,
            } => {
                let _ = write!(
                    s,
                    ",\"task\":{task},\"fact\":{fact},\"worker\":{worker},\"attempt\":{attempt}"
                );
                push_f64(&mut s, "backoff_secs", *backoff_secs);
                let _ = write!(s, ",\"query_id\":{query_id}");
            }
            TelemetryEvent::FaultInjected {
                task,
                fact,
                worker,
                kind,
                query_id,
            } => {
                let _ = write!(
                    s,
                    ",\"task\":{task},\"fact\":{fact},\"worker\":{worker},\"kind\":\"{}\",\"query_id\":{query_id}",
                    kind.name()
                );
            }
            TelemetryEvent::BeliefUpdated {
                round,
                entropy,
                quality,
                budget_spent,
                answers_requested,
                answers_received,
            } => {
                let _ = write!(s, ",\"round\":{round}");
                push_f64(&mut s, "entropy", *entropy);
                push_f64(&mut s, "quality", *quality);
                let _ = write!(
                    s,
                    ",\"budget_spent\":{budget_spent},\"answers_requested\":{answers_requested},\"answers_received\":{answers_received}"
                );
            }
            TelemetryEvent::NumericalHealth {
                round,
                min_mass,
                renorm_scale,
                log_evidence,
                clamp_count,
                rescued,
            } => {
                let _ = write!(s, ",\"round\":{round}");
                push_f64(&mut s, "min_mass", *min_mass);
                push_f64(&mut s, "renorm_scale", *renorm_scale);
                push_f64(&mut s, "log_evidence", *log_evidence);
                let _ = write!(s, ",\"clamp_count\":{clamp_count},\"rescued\":{rescued}");
            }
            TelemetryEvent::RunFinished {
                rounds,
                budget_spent,
                entropy,
                quality,
                reason,
            } => {
                let _ = write!(s, ",\"rounds\":{rounds},\"budget_spent\":{budget_spent}");
                push_f64(&mut s, "entropy", *entropy);
                push_f64(&mut s, "quality", *quality);
                let _ = write!(s, ",\"reason\":\"{}\"", reason.name());
            }
        }
        s.push('}');
        s
    }

    /// Decodes one JSONL line produced by [`Self::to_json_line`].
    pub fn from_json_line(line: &str) -> Result<Self, json::ParseError> {
        let v = json::parse(line.trim())?;
        let bad = |what: &str| json::ParseError {
            message: format!("missing or invalid field `{what}`"),
            offset: 0,
        };
        let kind = v.get("type").and_then(Json::as_str).ok_or_else(|| bad("type"))?;
        let f = |name: &str| v.get(name).and_then(Json::as_f64).ok_or_else(|| bad(name));
        let us = |name: &str| v.get(name).and_then(Json::as_usize).ok_or_else(|| bad(name));
        let u64f = |name: &str| v.get(name).and_then(Json::as_u64).ok_or_else(|| bad(name));
        let u32f = |name: &str| v.get(name).and_then(Json::as_u32).ok_or_else(|| bad(name));
        // Back-compat: logs recorded before causal ids existed have no
        // `query_id` field; a present-but-malformed one is an error.
        let qid = || match v.get("query_id") {
            None => Ok(0u64),
            Some(x) => x.as_u64().ok_or_else(|| bad("query_id")),
        };
        match kind {
            "run_started" => Ok(TelemetryEvent::RunStarted {
                tasks: us("tasks")?,
                facts: us("facts")?,
                panel: us("panel")?,
                budget: u64f("budget")?,
                k: us("k")?,
                entropy: f("entropy")?,
                quality: f("quality")?,
            }),
            "round_selected" => {
                let queries = v
                    .get("queries")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("queries"))?
                    .iter()
                    .map(|pair| {
                        let pair = pair.as_arr()?;
                        match pair {
                            [t, q] => Some((t.as_usize()?, q.as_u32()?)),
                            _ => None,
                        }
                    })
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| bad("queries"))?;
                Ok(TelemetryEvent::RoundSelected {
                    round: us("round")?,
                    k_requested: us("k_requested")?,
                    k_effective: us("k_effective")?,
                    queries,
                    entropy_before: f("entropy_before")?,
                    predicted_entropy: f("predicted_entropy")?,
                })
            }
            "candidate_scored" => Ok(TelemetryEvent::CandidateScored {
                round: us("round")?,
                step: us("step")?,
                task: us("task")?,
                fact: u32f("fact")?,
                gain: f("gain")?,
            }),
            "query_selected" => Ok(TelemetryEvent::QuerySelected {
                round: us("round")?,
                step: us("step")?,
                task: us("task")?,
                fact: u32f("fact")?,
                gain: f("gain")?,
                query_id: qid()?,
            }),
            "query_dispatched" => Ok(TelemetryEvent::QueryDispatched {
                round: us("round")?,
                task: us("task")?,
                fact: u32f("fact")?,
                worker: u32f("worker")?,
                query_id: qid()?,
            }),
            "answer_delivered" => Ok(TelemetryEvent::AnswerDelivered {
                round: us("round")?,
                task: us("task")?,
                fact: u32f("fact")?,
                worker: u32f("worker")?,
                query_id: qid()?,
                answer: v.get("answer").and_then(Json::as_bool).ok_or_else(|| bad("answer"))?,
            }),
            "answer_timed_out" => Ok(TelemetryEvent::AnswerTimedOut {
                round: us("round")?,
                task: us("task")?,
                fact: u32f("fact")?,
                worker: u32f("worker")?,
                query_id: qid()?,
            }),
            "answer_dropped" => Ok(TelemetryEvent::AnswerDropped {
                round: us("round")?,
                task: us("task")?,
                fact: u32f("fact")?,
                worker: u32f("worker")?,
                query_id: qid()?,
            }),
            "retry_scheduled" => Ok(TelemetryEvent::RetryScheduled {
                task: us("task")?,
                fact: u32f("fact")?,
                worker: u32f("worker")?,
                attempt: u32f("attempt")?,
                backoff_secs: f("backoff_secs")?,
                query_id: qid()?,
            }),
            "fault_injected" => Ok(TelemetryEvent::FaultInjected {
                task: us("task")?,
                fact: u32f("fact")?,
                worker: u32f("worker")?,
                kind: v
                    .get("kind")
                    .and_then(Json::as_str)
                    .and_then(FaultKind::from_name)
                    .ok_or_else(|| bad("kind"))?,
                query_id: qid()?,
            }),
            "belief_updated" => Ok(TelemetryEvent::BeliefUpdated {
                round: us("round")?,
                entropy: f("entropy")?,
                quality: f("quality")?,
                budget_spent: u64f("budget_spent")?,
                answers_requested: us("answers_requested")?,
                answers_received: us("answers_received")?,
            }),
            "numerical_health" => Ok(TelemetryEvent::NumericalHealth {
                round: us("round")?,
                min_mass: f("min_mass")?,
                renorm_scale: f("renorm_scale")?,
                log_evidence: f("log_evidence")?,
                clamp_count: u64f("clamp_count")?,
                rescued: v
                    .get("rescued")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| bad("rescued"))?,
            }),
            "run_finished" => Ok(TelemetryEvent::RunFinished {
                rounds: us("rounds")?,
                budget_spent: u64f("budget_spent")?,
                entropy: f("entropy")?,
                quality: f("quality")?,
                reason: v
                    .get("reason")
                    .and_then(Json::as_str)
                    .and_then(StopReason::from_name)
                    .ok_or_else(|| bad("reason"))?,
            }),
            other => Err(json::ParseError {
                message: format!("unknown event type `{other}`"),
                offset: 0,
            }),
        }
    }
}

fn push_f64(s: &mut String, name: &str, v: f64) {
    s.push_str(",\"");
    s.push_str(name);
    s.push_str("\":");
    json::write_f64(s, v);
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn sample_events() -> Vec<TelemetryEvent> {
        vec![
            TelemetryEvent::RunStarted {
                tasks: 2,
                facts: 5,
                panel: 2,
                budget: 10,
                k: 1,
                entropy: 3.25,
                quality: -3.25,
            },
            TelemetryEvent::RoundSelected {
                round: 1,
                k_requested: 1,
                k_effective: 1,
                queries: vec![(0, 2), (1, 0)],
                entropy_before: 3.25,
                predicted_entropy: 2.5,
            },
            TelemetryEvent::CandidateScored {
                round: 1,
                step: 0,
                task: 0,
                fact: 2,
                gain: 0.75,
            },
            TelemetryEvent::QuerySelected {
                round: 1,
                step: 0,
                task: 0,
                fact: 2,
                gain: 0.75,
                query_id: 1,
            },
            TelemetryEvent::QueryDispatched {
                round: 1,
                task: 0,
                fact: 2,
                worker: 0,
                query_id: 1,
            },
            TelemetryEvent::RetryScheduled {
                task: 0,
                fact: 2,
                worker: 1,
                attempt: 1,
                backoff_secs: 30.0,
                query_id: 1,
            },
            TelemetryEvent::FaultInjected {
                task: 0,
                fact: 2,
                worker: 0,
                kind: FaultKind::Timeout,
                query_id: 1,
            },
            TelemetryEvent::AnswerDelivered {
                round: 1,
                task: 0,
                fact: 2,
                worker: 0,
                query_id: 1,
                answer: true,
            },
            TelemetryEvent::AnswerTimedOut {
                round: 1,
                task: 1,
                fact: 0,
                worker: 1,
                query_id: 2,
            },
            TelemetryEvent::AnswerDropped {
                round: 1,
                task: 1,
                fact: 0,
                worker: 0,
                query_id: 2,
            },
            TelemetryEvent::BeliefUpdated {
                round: 1,
                entropy: 2.75,
                quality: -2.75,
                budget_spent: 2,
                answers_requested: 4,
                answers_received: 1,
            },
            TelemetryEvent::NumericalHealth {
                round: 1,
                min_mass: 1.5e-11,
                renorm_scale: 0.125,
                log_evidence: -2.079_441_541_679_835_7,
                clamp_count: 3,
                rescued: true,
            },
            TelemetryEvent::RunFinished {
                rounds: 1,
                budget_spent: 2,
                entropy: 2.75,
                quality: -2.75,
                reason: StopReason::BudgetExhausted,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        for event in sample_events() {
            let line = event.to_json_line();
            let back = TelemetryEvent::from_json_line(&line)
                .unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, event, "via {line}");
        }
    }

    #[test]
    fn kind_names_are_stable() {
        let kinds: Vec<&str> = sample_events().iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                "run_started",
                "round_selected",
                "candidate_scored",
                "query_selected",
                "query_dispatched",
                "retry_scheduled",
                "fault_injected",
                "answer_delivered",
                "answer_timed_out",
                "answer_dropped",
                "belief_updated",
                "numerical_health",
                "run_finished",
            ]
        );
    }

    #[test]
    fn round_accessor_covers_round_scoped_events() {
        for event in sample_events() {
            match event.kind() {
                "run_started" | "run_finished" | "retry_scheduled" | "fault_injected" => {
                    assert_eq!(event.round(), None)
                }
                _ => assert_eq!(event.round(), Some(1)),
            }
        }
    }

    #[test]
    fn unknown_type_is_an_error() {
        assert!(TelemetryEvent::from_json_line(r#"{"type":"nope"}"#).is_err());
        assert!(TelemetryEvent::from_json_line("{}").is_err());
        assert!(TelemetryEvent::from_json_line("not json").is_err());
    }

    #[test]
    fn missing_fields_are_errors() {
        assert!(TelemetryEvent::from_json_line(r#"{"type":"query_dispatched","round":1}"#).is_err());
    }

    #[test]
    fn pre_query_id_logs_decode_with_id_zero() {
        // A PR-2-era line without the field.
        let line = r#"{"type":"query_dispatched","round":1,"task":0,"fact":2,"worker":0}"#;
        match TelemetryEvent::from_json_line(line).expect("old logs still parse") {
            TelemetryEvent::QueryDispatched { query_id, .. } => assert_eq!(query_id, 0),
            other => panic!("wrong variant: {other:?}"),
        }
        // A present-but-malformed query_id is an error, not a default.
        let bad = r#"{"type":"query_dispatched","round":1,"task":0,"fact":2,"worker":0,"query_id":-3}"#;
        assert!(TelemetryEvent::from_json_line(bad).is_err());
    }

    #[test]
    fn nan_gain_round_trips_through_json() {
        // Non-greedy selectors report NaN gains in explain mode; the
        // encoding (null) must survive a round trip.
        let event = TelemetryEvent::QuerySelected {
            round: 2,
            step: 1,
            task: 0,
            fact: 1,
            gain: f64::NAN,
            query_id: 9,
        };
        let line = event.to_json_line();
        match TelemetryEvent::from_json_line(&line).expect("parses") {
            TelemetryEvent::QuerySelected { gain, query_id, .. } => {
                assert!(gain.is_nan());
                assert_eq!(query_id, 9);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
