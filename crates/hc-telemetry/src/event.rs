//! The typed event model of an HC run.
//!
//! One checking run emits a linear event stream:
//!
//! ```text
//! RunStarted
//!   ┌ RoundSelected                  (one per round)
//!   │   QueryDispatched              (one per query × panel worker)
//!   │   ├ RetryScheduled / FaultInjected   (platform / fault layer)
//!   │   └ AnswerDelivered | AnswerTimedOut | AnswerDropped
//!   └ BeliefUpdated
//! RunFinished
//! ```
//!
//! The invariant tests lean on: every [`TelemetryEvent::QueryDispatched`]
//! is closed by *exactly one* of `AnswerDelivered` / `AnswerTimedOut` /
//! `AnswerDropped` with the same `(round, task, fact, worker)` key.
//!
//! Events carry plain ids (task index, fact index, worker id) rather
//! than `hc-core` types so this crate stays dependency-free and every
//! layer of the stack can emit into the same stream.

use crate::json::{self, Json};
use std::fmt::Write as _;

/// Which fault the fault-injection layer fired on an attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker abandoned the assignment.
    Dropout,
    /// The attempt timed out.
    Timeout,
    /// A platform-wide burst outage window swallowed the attempt.
    Burst,
    /// The worker permanently churned out of the crowd.
    Churn,
}

impl FaultKind {
    /// Stable lowercase name used in the JSON encoding.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Dropout => "dropout",
            FaultKind::Timeout => "timeout",
            FaultKind::Burst => "burst",
            FaultKind::Churn => "churn",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "dropout" => Some(FaultKind::Dropout),
            "timeout" => Some(FaultKind::Timeout),
            "burst" => Some(FaultKind::Burst),
            "churn" => Some(FaultKind::Churn),
            _ => None,
        }
    }
}

/// Why the checking loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The remaining budget cannot afford another query (Algorithm 3).
    BudgetExhausted,
    /// No candidate offered positive expected gain (Algorithm 2).
    NoPositiveGain,
    /// The configured `max_rounds` cap was reached.
    MaxRounds,
    /// Too many consecutive rounds delivered zero answers.
    DryRounds,
}

impl StopReason {
    /// Stable lowercase name used in the JSON encoding.
    pub fn name(self) -> &'static str {
        match self {
            StopReason::BudgetExhausted => "budget_exhausted",
            StopReason::NoPositiveGain => "no_positive_gain",
            StopReason::MaxRounds => "max_rounds",
            StopReason::DryRounds => "dry_rounds",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "budget_exhausted" => Some(StopReason::BudgetExhausted),
            "no_positive_gain" => Some(StopReason::NoPositiveGain),
            "max_rounds" => Some(StopReason::MaxRounds),
            "dry_rounds" => Some(StopReason::DryRounds),
        _ => None,
        }
    }
}

/// One structured event in an HC run's telemetry stream.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// The loop is about to run.
    RunStarted {
        /// Number of tasks in the belief state.
        tasks: usize,
        /// Total facts across all tasks (the global query space).
        facts: usize,
        /// Size of the expert panel.
        panel: usize,
        /// Total checking budget, in cost units.
        budget: u64,
        /// Configured base queries per round.
        k: usize,
        /// Total belief entropy `H(O)` before any checking, in nats.
        entropy: f64,
        /// Dataset quality `-Σ_t H(O_t)` before any checking.
        quality: f64,
    },
    /// The selector chose this round's query set.
    RoundSelected {
        /// Round number, starting at 1.
        round: usize,
        /// Query count the schedule asked for this round.
        k_requested: usize,
        /// Query count actually affordable and selected.
        k_effective: usize,
        /// The selected `(task, fact)` pairs.
        queries: Vec<(usize, u32)>,
        /// Total belief entropy before the round.
        entropy_before: f64,
        /// The selector's objective `H(O | AS^T)` for the chosen set —
        /// the entropy it *predicts* will remain after the update.
        predicted_entropy: f64,
    },
    /// One answer attempt was handed to a worker.
    QueryDispatched {
        /// Round the dispatch belongs to.
        round: usize,
        /// Task index.
        task: usize,
        /// Fact index within the task.
        fact: u32,
        /// Worker id the query was assigned to.
        worker: u32,
    },
    /// A dispatched attempt came back with an answer.
    AnswerDelivered {
        /// Round the dispatch belongs to.
        round: usize,
        /// Task index.
        task: usize,
        /// Fact index within the task.
        fact: u32,
        /// Worker id that was asked (the dispatch key; under
        /// reassignment the *answering* worker may differ).
        worker: u32,
        /// The boolean answer.
        answer: bool,
    },
    /// A dispatched attempt timed out (after any platform retries).
    AnswerTimedOut {
        /// Round the dispatch belongs to.
        round: usize,
        /// Task index.
        task: usize,
        /// Fact index within the task.
        fact: u32,
        /// Worker id that was asked.
        worker: u32,
    },
    /// A dispatched attempt was dropped (after any platform retries).
    AnswerDropped {
        /// Round the dispatch belongs to.
        round: usize,
        /// Task index.
        task: usize,
        /// Fact index within the task.
        fact: u32,
        /// Worker id that was asked.
        worker: u32,
    },
    /// The platform scheduled a retry for a failed attempt.
    RetryScheduled {
        /// Task index.
        task: usize,
        /// Fact index within the task.
        fact: u32,
        /// Worker the retry goes to (may differ under reassignment).
        worker: u32,
        /// Attempt number about to run (1 = first retry).
        attempt: u32,
        /// Backoff charged before this retry, in simulated seconds.
        backoff_secs: f64,
    },
    /// The fault layer converted an attempt into a failure.
    FaultInjected {
        /// Task index.
        task: usize,
        /// Fact index within the task.
        fact: u32,
        /// Worker whose attempt was failed.
        worker: u32,
        /// Which fault fired.
        kind: FaultKind,
    },
    /// The round's Bayes update was applied.
    BeliefUpdated {
        /// Round number.
        round: usize,
        /// Total belief entropy after the update (the *realised*
        /// entropy, vs [`TelemetryEvent::RoundSelected`]'s prediction).
        entropy: f64,
        /// Dataset quality after the update.
        quality: f64,
        /// Cumulative budget spent after the round.
        budget_spent: u64,
        /// Answer attempts requested this round.
        answers_requested: usize,
        /// Answers that actually arrived this round.
        answers_received: usize,
    },
    /// The loop terminated.
    RunFinished {
        /// Rounds executed.
        rounds: usize,
        /// Total budget spent.
        budget_spent: u64,
        /// Final total belief entropy.
        entropy: f64,
        /// Final dataset quality.
        quality: f64,
        /// Why the loop stopped.
        reason: StopReason,
    },
}

impl TelemetryEvent {
    /// The event's stable snake_case type tag.
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::RunStarted { .. } => "run_started",
            TelemetryEvent::RoundSelected { .. } => "round_selected",
            TelemetryEvent::QueryDispatched { .. } => "query_dispatched",
            TelemetryEvent::AnswerDelivered { .. } => "answer_delivered",
            TelemetryEvent::AnswerTimedOut { .. } => "answer_timed_out",
            TelemetryEvent::AnswerDropped { .. } => "answer_dropped",
            TelemetryEvent::RetryScheduled { .. } => "retry_scheduled",
            TelemetryEvent::FaultInjected { .. } => "fault_injected",
            TelemetryEvent::BeliefUpdated { .. } => "belief_updated",
            TelemetryEvent::RunFinished { .. } => "run_finished",
        }
    }

    /// The round the event belongs to, for events that carry one.
    pub fn round(&self) -> Option<usize> {
        match self {
            TelemetryEvent::RoundSelected { round, .. }
            | TelemetryEvent::QueryDispatched { round, .. }
            | TelemetryEvent::AnswerDelivered { round, .. }
            | TelemetryEvent::AnswerTimedOut { round, .. }
            | TelemetryEvent::AnswerDropped { round, .. }
            | TelemetryEvent::BeliefUpdated { round, .. } => Some(*round),
            _ => None,
        }
    }

    /// Encodes the event as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"type\":\"");
        s.push_str(self.kind());
        s.push('"');
        match self {
            TelemetryEvent::RunStarted {
                tasks,
                facts,
                panel,
                budget,
                k,
                entropy,
                quality,
            } => {
                let _ = write!(
                    s,
                    ",\"tasks\":{tasks},\"facts\":{facts},\"panel\":{panel},\"budget\":{budget},\"k\":{k}"
                );
                push_f64(&mut s, "entropy", *entropy);
                push_f64(&mut s, "quality", *quality);
            }
            TelemetryEvent::RoundSelected {
                round,
                k_requested,
                k_effective,
                queries,
                entropy_before,
                predicted_entropy,
            } => {
                let _ = write!(
                    s,
                    ",\"round\":{round},\"k_requested\":{k_requested},\"k_effective\":{k_effective},\"queries\":["
                );
                for (i, (task, fact)) in queries.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "[{task},{fact}]");
                }
                s.push(']');
                push_f64(&mut s, "entropy_before", *entropy_before);
                push_f64(&mut s, "predicted_entropy", *predicted_entropy);
            }
            TelemetryEvent::QueryDispatched {
                round,
                task,
                fact,
                worker,
            }
            | TelemetryEvent::AnswerTimedOut {
                round,
                task,
                fact,
                worker,
            }
            | TelemetryEvent::AnswerDropped {
                round,
                task,
                fact,
                worker,
            } => {
                let _ = write!(
                    s,
                    ",\"round\":{round},\"task\":{task},\"fact\":{fact},\"worker\":{worker}"
                );
            }
            TelemetryEvent::AnswerDelivered {
                round,
                task,
                fact,
                worker,
                answer,
            } => {
                let _ = write!(
                    s,
                    ",\"round\":{round},\"task\":{task},\"fact\":{fact},\"worker\":{worker},\"answer\":{answer}"
                );
            }
            TelemetryEvent::RetryScheduled {
                task,
                fact,
                worker,
                attempt,
                backoff_secs,
            } => {
                let _ = write!(
                    s,
                    ",\"task\":{task},\"fact\":{fact},\"worker\":{worker},\"attempt\":{attempt}"
                );
                push_f64(&mut s, "backoff_secs", *backoff_secs);
            }
            TelemetryEvent::FaultInjected {
                task,
                fact,
                worker,
                kind,
            } => {
                let _ = write!(
                    s,
                    ",\"task\":{task},\"fact\":{fact},\"worker\":{worker},\"kind\":\"{}\"",
                    kind.name()
                );
            }
            TelemetryEvent::BeliefUpdated {
                round,
                entropy,
                quality,
                budget_spent,
                answers_requested,
                answers_received,
            } => {
                let _ = write!(s, ",\"round\":{round}");
                push_f64(&mut s, "entropy", *entropy);
                push_f64(&mut s, "quality", *quality);
                let _ = write!(
                    s,
                    ",\"budget_spent\":{budget_spent},\"answers_requested\":{answers_requested},\"answers_received\":{answers_received}"
                );
            }
            TelemetryEvent::RunFinished {
                rounds,
                budget_spent,
                entropy,
                quality,
                reason,
            } => {
                let _ = write!(s, ",\"rounds\":{rounds},\"budget_spent\":{budget_spent}");
                push_f64(&mut s, "entropy", *entropy);
                push_f64(&mut s, "quality", *quality);
                let _ = write!(s, ",\"reason\":\"{}\"", reason.name());
            }
        }
        s.push('}');
        s
    }

    /// Decodes one JSONL line produced by [`Self::to_json_line`].
    pub fn from_json_line(line: &str) -> Result<Self, json::ParseError> {
        let v = json::parse(line.trim())?;
        let bad = |what: &str| json::ParseError {
            message: format!("missing or invalid field `{what}`"),
            offset: 0,
        };
        let kind = v.get("type").and_then(Json::as_str).ok_or_else(|| bad("type"))?;
        let f = |name: &str| v.get(name).and_then(Json::as_f64).ok_or_else(|| bad(name));
        let us = |name: &str| v.get(name).and_then(Json::as_usize).ok_or_else(|| bad(name));
        let u64f = |name: &str| v.get(name).and_then(Json::as_u64).ok_or_else(|| bad(name));
        let u32f = |name: &str| v.get(name).and_then(Json::as_u32).ok_or_else(|| bad(name));
        match kind {
            "run_started" => Ok(TelemetryEvent::RunStarted {
                tasks: us("tasks")?,
                facts: us("facts")?,
                panel: us("panel")?,
                budget: u64f("budget")?,
                k: us("k")?,
                entropy: f("entropy")?,
                quality: f("quality")?,
            }),
            "round_selected" => {
                let queries = v
                    .get("queries")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("queries"))?
                    .iter()
                    .map(|pair| {
                        let pair = pair.as_arr()?;
                        match pair {
                            [t, q] => Some((t.as_usize()?, q.as_u32()?)),
                            _ => None,
                        }
                    })
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| bad("queries"))?;
                Ok(TelemetryEvent::RoundSelected {
                    round: us("round")?,
                    k_requested: us("k_requested")?,
                    k_effective: us("k_effective")?,
                    queries,
                    entropy_before: f("entropy_before")?,
                    predicted_entropy: f("predicted_entropy")?,
                })
            }
            "query_dispatched" => Ok(TelemetryEvent::QueryDispatched {
                round: us("round")?,
                task: us("task")?,
                fact: u32f("fact")?,
                worker: u32f("worker")?,
            }),
            "answer_delivered" => Ok(TelemetryEvent::AnswerDelivered {
                round: us("round")?,
                task: us("task")?,
                fact: u32f("fact")?,
                worker: u32f("worker")?,
                answer: v.get("answer").and_then(Json::as_bool).ok_or_else(|| bad("answer"))?,
            }),
            "answer_timed_out" => Ok(TelemetryEvent::AnswerTimedOut {
                round: us("round")?,
                task: us("task")?,
                fact: u32f("fact")?,
                worker: u32f("worker")?,
            }),
            "answer_dropped" => Ok(TelemetryEvent::AnswerDropped {
                round: us("round")?,
                task: us("task")?,
                fact: u32f("fact")?,
                worker: u32f("worker")?,
            }),
            "retry_scheduled" => Ok(TelemetryEvent::RetryScheduled {
                task: us("task")?,
                fact: u32f("fact")?,
                worker: u32f("worker")?,
                attempt: u32f("attempt")?,
                backoff_secs: f("backoff_secs")?,
            }),
            "fault_injected" => Ok(TelemetryEvent::FaultInjected {
                task: us("task")?,
                fact: u32f("fact")?,
                worker: u32f("worker")?,
                kind: v
                    .get("kind")
                    .and_then(Json::as_str)
                    .and_then(FaultKind::from_name)
                    .ok_or_else(|| bad("kind"))?,
            }),
            "belief_updated" => Ok(TelemetryEvent::BeliefUpdated {
                round: us("round")?,
                entropy: f("entropy")?,
                quality: f("quality")?,
                budget_spent: u64f("budget_spent")?,
                answers_requested: us("answers_requested")?,
                answers_received: us("answers_received")?,
            }),
            "run_finished" => Ok(TelemetryEvent::RunFinished {
                rounds: us("rounds")?,
                budget_spent: u64f("budget_spent")?,
                entropy: f("entropy")?,
                quality: f("quality")?,
                reason: v
                    .get("reason")
                    .and_then(Json::as_str)
                    .and_then(StopReason::from_name)
                    .ok_or_else(|| bad("reason"))?,
            }),
            other => Err(json::ParseError {
                message: format!("unknown event type `{other}`"),
                offset: 0,
            }),
        }
    }
}

fn push_f64(s: &mut String, name: &str, v: f64) {
    s.push_str(",\"");
    s.push_str(name);
    s.push_str("\":");
    json::write_f64(s, v);
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn sample_events() -> Vec<TelemetryEvent> {
        vec![
            TelemetryEvent::RunStarted {
                tasks: 2,
                facts: 5,
                panel: 2,
                budget: 10,
                k: 1,
                entropy: 3.25,
                quality: -3.25,
            },
            TelemetryEvent::RoundSelected {
                round: 1,
                k_requested: 1,
                k_effective: 1,
                queries: vec![(0, 2), (1, 0)],
                entropy_before: 3.25,
                predicted_entropy: 2.5,
            },
            TelemetryEvent::QueryDispatched {
                round: 1,
                task: 0,
                fact: 2,
                worker: 0,
            },
            TelemetryEvent::RetryScheduled {
                task: 0,
                fact: 2,
                worker: 1,
                attempt: 1,
                backoff_secs: 30.0,
            },
            TelemetryEvent::FaultInjected {
                task: 0,
                fact: 2,
                worker: 0,
                kind: FaultKind::Timeout,
            },
            TelemetryEvent::AnswerDelivered {
                round: 1,
                task: 0,
                fact: 2,
                worker: 0,
                answer: true,
            },
            TelemetryEvent::AnswerTimedOut {
                round: 1,
                task: 1,
                fact: 0,
                worker: 1,
            },
            TelemetryEvent::AnswerDropped {
                round: 1,
                task: 1,
                fact: 0,
                worker: 0,
            },
            TelemetryEvent::BeliefUpdated {
                round: 1,
                entropy: 2.75,
                quality: -2.75,
                budget_spent: 2,
                answers_requested: 4,
                answers_received: 1,
            },
            TelemetryEvent::RunFinished {
                rounds: 1,
                budget_spent: 2,
                entropy: 2.75,
                quality: -2.75,
                reason: StopReason::BudgetExhausted,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        for event in sample_events() {
            let line = event.to_json_line();
            let back = TelemetryEvent::from_json_line(&line)
                .unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, event, "via {line}");
        }
    }

    #[test]
    fn kind_names_are_stable() {
        let kinds: Vec<&str> = sample_events().iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                "run_started",
                "round_selected",
                "query_dispatched",
                "retry_scheduled",
                "fault_injected",
                "answer_delivered",
                "answer_timed_out",
                "answer_dropped",
                "belief_updated",
                "run_finished",
            ]
        );
    }

    #[test]
    fn round_accessor_covers_round_scoped_events() {
        for event in sample_events() {
            match event.kind() {
                "run_started" | "run_finished" | "retry_scheduled" | "fault_injected" => {
                    assert_eq!(event.round(), None)
                }
                _ => assert_eq!(event.round(), Some(1)),
            }
        }
    }

    #[test]
    fn unknown_type_is_an_error() {
        assert!(TelemetryEvent::from_json_line(r#"{"type":"nope"}"#).is_err());
        assert!(TelemetryEvent::from_json_line("{}").is_err());
        assert!(TelemetryEvent::from_json_line("not json").is_err());
    }

    #[test]
    fn missing_fields_are_errors() {
        assert!(TelemetryEvent::from_json_line(r#"{"type":"query_dispatched","round":1}"#).is_err());
    }
}
