//! Prometheus text-format exposition for [`MetricsRegistry`].
//!
//! [`render`] serialises a registry into the Prometheus text exposition
//! format (version 0.0.4): every metric gets `# HELP` and `# TYPE`
//! headers, names are prefixed `hc_` and sanitised to the Prometheus
//! charset, counters get the `_total` suffix, and histograms are
//! expanded into cumulative `_bucket{le="..."}` series plus
//! `_sum`/`_count`.
//!
//! Escaping follows the exposition format exactly: label values escape
//! backslash, double-quote, and newline ([`escape_label`] — the full
//! triple, since labels are quoted); help text escapes backslash and
//! newline ([`escape_help`] — quotes are legal in unquoted help text).
//! Registry names are free-form strings and flow into help text
//! verbatim, so a hostile name can never break line framing.
//!
//! Two registry naming conventions are folded into labels instead of
//! flat names so dashboards can aggregate across them:
//!
//! * `fault.<kind>` counters become `hc_faults_total{kind="<kind>"}`;
//! * `worker.<id>.<outcome>` counters become
//!   `hc_worker_outcomes_total{worker="<id>",outcome="<outcome>"}`.
//!
//! Per-worker label cardinality is bounded at exposition time: only the
//! [`MAX_WORKER_SERIES`] workers with the largest total counter volume
//! keep their own `worker="<id>"` label; everything else is rolled up
//! into `worker="other"` per outcome (see [`MAX_WORKER_SERIES`] for the
//! rationale and caveats). The registry itself stays exact — the bound
//! applies only to the rendered exposition.
//!
//! Output is deterministic: the registry stores metrics in `BTreeMap`s,
//! and this module preserves that ordering.

use crate::metrics::{Histogram, MetricsRegistry};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum number of distinct `worker="<id>"` label values exposed by
/// [`render`]. Prometheus treats every label value as a separate time
/// series, so an unbounded crowd (thousands of workers, or a hostile
/// trace with synthetic worker names) would blow up scrape cardinality.
/// The top `MAX_WORKER_SERIES` workers by total counter volume (ties
/// broken by label, ascending) keep their own series; the rest are
/// summed into a per-outcome `worker="other"` rollup.
///
/// Caveat: a genuine worker whose label is literally `other` merges
/// with the rollup series. Registry names produced by this codebase use
/// numeric worker ids, so the collision only arises with hand-crafted
/// registries.
pub const MAX_WORKER_SERIES: usize = 16;

/// Applies the [`MAX_WORKER_SERIES`] bound to collected
/// `(worker, outcome, value)` rows: rows for the top-K workers by
/// total volume pass through in their original (BTreeMap, i.e.
/// deterministic) order; all other rows are summed into trailing
/// `("other", outcome, sum)` rows, sorted by outcome.
fn bound_worker_series(rows: Vec<(String, String, u64)>) -> Vec<(String, String, u64)> {
    let mut volume: BTreeMap<&str, u64> = BTreeMap::new();
    for (worker, _, value) in &rows {
        *volume.entry(worker).or_default() += value;
    }
    if volume.len() <= MAX_WORKER_SERIES {
        return rows;
    }
    let mut ranked: Vec<(&str, u64)> = volume.into_iter().collect();
    // Highest volume first; the BTreeMap order makes label-ascending
    // the tiebreak, so the cut is deterministic.
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let kept: Vec<String> = ranked
        .iter()
        .take(MAX_WORKER_SERIES)
        .map(|(w, _)| (*w).to_string())
        .collect();
    let mut bounded = Vec::with_capacity(rows.len());
    let mut rollup: BTreeMap<String, u64> = BTreeMap::new();
    for (worker, outcome, value) in rows {
        if kept.iter().any(|k| *k == worker) {
            bounded.push((worker, outcome, value));
        } else {
            *rollup.entry(outcome).or_default() += value;
        }
    }
    for (outcome, value) in rollup {
        bounded.push(("other".to_string(), outcome, value));
    }
    bounded
}

/// Renders the registry in Prometheus text exposition format.
///
/// Non-finite values are written with the Prometheus literals `NaN`,
/// `+Inf`, and `-Inf`. Histogram samples that were non-finite (and so
/// never landed in a bounded bucket) appear only in the `+Inf` bucket
/// and `_count`; `_sum` covers finite samples.
pub fn render(metrics: &MetricsRegistry) -> String {
    let mut out = String::new();
    let mut faults: Vec<(String, u64)> = Vec::new();
    let mut workers: Vec<(String, String, u64)> = Vec::new();

    for (name, value) in metrics.counters() {
        if let Some(kind) = name.strip_prefix("fault.") {
            faults.push((kind.to_string(), value));
            continue;
        }
        if let Some((worker, outcome)) = split_worker_counter(name) {
            workers.push((worker.to_string(), outcome.to_string(), value));
            continue;
        }
        let metric = format!("hc_{}_total", sanitize(name));
        let _ = writeln!(
            out,
            "# HELP {metric} Registry counter \"{}\".",
            escape_help(name)
        );
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {value}");
    }
    if !faults.is_empty() {
        let _ = writeln!(out, "# HELP hc_faults_total Injected faults by kind.");
        let _ = writeln!(out, "# TYPE hc_faults_total counter");
        for (kind, value) in &faults {
            let _ = writeln!(out, "hc_faults_total{{kind=\"{}\"}} {value}", escape_label(kind));
        }
    }
    let workers = bound_worker_series(workers);
    if !workers.is_empty() {
        let _ = writeln!(
            out,
            "# HELP hc_worker_outcomes_total Per-worker answer outcomes (top {MAX_WORKER_SERIES} workers by volume; the rest roll up into worker=\"other\")."
        );
        let _ = writeln!(out, "# TYPE hc_worker_outcomes_total counter");
        for (worker, outcome, value) in &workers {
            let _ = writeln!(
                out,
                "hc_worker_outcomes_total{{worker=\"{}\",outcome=\"{}\"}} {value}",
                escape_label(worker),
                escape_label(outcome)
            );
        }
    }

    for (name, value) in metrics.gauges() {
        let metric = format!("hc_{}", sanitize(name));
        let _ = writeln!(
            out,
            "# HELP {metric} Registry gauge \"{}\".",
            escape_help(name)
        );
        let _ = writeln!(out, "# TYPE {metric} gauge");
        let _ = write!(out, "{metric} ");
        write_value(&mut out, value);
        out.push('\n');
    }

    for (name, histogram) in metrics.histograms() {
        render_histogram(&mut out, name, histogram);
    }
    out
}

impl MetricsRegistry {
    /// Renders this registry in Prometheus text exposition format.
    ///
    /// Convenience wrapper around [`render`].
    pub fn to_prometheus(&self) -> String {
        render(self)
    }
}

fn render_histogram(out: &mut String, name: &str, histogram: &Histogram) {
    let metric = format!("hc_{}", sanitize(name));
    let _ = writeln!(
        out,
        "# HELP {metric} Registry histogram \"{}\".",
        escape_help(name)
    );
    let _ = writeln!(out, "# TYPE {metric} histogram");
    let mut cumulative = 0u64;
    for (bound, count) in histogram.bounds().iter().zip(histogram.bucket_counts()) {
        cumulative += count;
        let _ = write!(out, "{metric}_bucket{{le=\"");
        write_value(out, *bound);
        let _ = writeln!(out, "\"}} {cumulative}");
    }
    // The +Inf bucket covers everything observed, including non-finite
    // samples that skipped the bounded buckets.
    let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {}", histogram.count());
    let _ = write!(out, "{metric}_sum ");
    write_value(out, histogram.sum());
    out.push('\n');
    let _ = writeln!(out, "{metric}_count {}", histogram.count());
}

/// Splits a `worker.<id>.<outcome>` counter name, if it is one.
fn split_worker_counter(name: &str) -> Option<(&str, &str)> {
    let rest = name.strip_prefix("worker.")?;
    rest.split_once('.')
}

/// Maps a registry metric name onto the Prometheus charset
/// (`[a-zA-Z0-9_:]`); everything else becomes `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect()
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline — labels are quoted, so all three would break the sample).
fn escape_label(value: &str) -> String {
    let mut s = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => s.push_str("\\\\"),
            '"' => s.push_str("\\\""),
            '\n' => s.push_str("\\n"),
            _ => s.push(c),
        }
    }
    s
}

/// Escapes `# HELP` text per the exposition format (backslash and
/// newline only — help text is unquoted, so double quotes are legal
/// and pass through).
fn escape_help(value: &str) -> String {
    let mut s = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            _ => s.push(c),
        }
    }
    s
}

/// Writes a sample value using Prometheus float literals.
fn write_value(out: &mut String, value: f64) {
    if value.is_nan() {
        out.push_str("NaN");
    } else if value == f64::INFINITY {
        out.push_str("+Inf");
    } else if value == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        crate::json::write_f64(out, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.incr("rounds", 3);
        m.incr("fault.timeout", 2);
        m.incr("fault.drop", 1);
        m.incr("worker.0.delivered", 5);
        m.incr("worker.1.timed_out", 1);
        m.set_gauge("final_entropy", 0.5);
        m.observe("round.entropy", 0.3);
        m.observe("round.entropy", 7.0);
        m
    }

    #[test]
    fn counters_gain_the_total_suffix() {
        let text = render(&sample_registry());
        assert!(text.contains("# TYPE hc_rounds_total counter\nhc_rounds_total 3\n"));
    }

    #[test]
    fn fault_and_worker_counters_become_labels() {
        let text = render(&sample_registry());
        assert!(text.contains("hc_faults_total{kind=\"timeout\"} 2"));
        assert!(text.contains("hc_faults_total{kind=\"drop\"} 1"));
        assert!(text.contains("hc_worker_outcomes_total{worker=\"0\",outcome=\"delivered\"} 5"));
        assert!(text.contains("hc_worker_outcomes_total{worker=\"1\",outcome=\"timed_out\"} 1"));
        // The flat names never leak through.
        assert!(!text.contains("fault.timeout"));
        assert!(!text.contains("hc_worker_0"));
    }

    #[test]
    fn histograms_expand_to_cumulative_buckets() {
        let text = render(&sample_registry());
        assert!(text.contains("# TYPE hc_round_entropy histogram"));
        // 0.3 <= 0.5 bound, 7.0 <= 10.0 bound (default bounds).
        assert!(text.contains("hc_round_entropy_bucket{le=\"0.5\"} 1"));
        assert!(text.contains("hc_round_entropy_bucket{le=\"10.0\"} 2"));
        assert!(text.contains("hc_round_entropy_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("hc_round_entropy_count 2"));
        assert!(text.contains("hc_round_entropy_sum 7.3"));
        // Cumulative bucket counts never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("hc_round_entropy_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "buckets must be cumulative: {line}");
            last = v;
        }
    }

    #[test]
    fn nonfinite_values_use_prometheus_literals() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("broken", f64::NAN);
        m.set_gauge("hot", f64::INFINITY);
        m.set_gauge("cold", f64::NEG_INFINITY);
        let text = render(&m);
        assert!(text.contains("hc_broken NaN"));
        assert!(text.contains("hc_hot +Inf"));
        assert!(text.contains("hc_cold -Inf"));
    }

    #[test]
    fn names_are_sanitized_and_output_is_deterministic() {
        let mut m = MetricsRegistry::new();
        m.incr("selection.scored_gain-v2", 1);
        let text = render(&m);
        assert!(text.contains("hc_selection_scored_gain_v2_total 1"));
        assert_eq!(render(&sample_registry()), render(&sample_registry()));
    }

    #[test]
    fn to_prometheus_matches_render() {
        let m = sample_registry();
        assert_eq!(m.to_prometheus(), render(&m));
    }

    #[test]
    fn every_metric_gets_a_help_line_before_its_type_line() {
        let text = render(&sample_registry());
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let metric = rest.split(' ').next().unwrap();
                let help = lines[i.checked_sub(1).expect("TYPE is never first")];
                assert!(
                    help.starts_with(&format!("# HELP {metric} ")),
                    "{metric}: HELP must directly precede TYPE, got {help:?}"
                );
            }
        }
        assert!(text.contains("# HELP hc_rounds_total Registry counter \"rounds\"."));
        assert!(text.contains("# HELP hc_faults_total Injected faults by kind."));
    }

    /// Inverse of [`escape_label`] for round-trip testing.
    fn unescape_label(value: &str) -> String {
        let mut s = String::with_capacity(value.len());
        let mut chars = value.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                s.push(c);
                continue;
            }
            match chars.next() {
                Some('\\') => s.push('\\'),
                Some('"') => s.push('"'),
                Some('n') => s.push('\n'),
                other => panic!("invalid escape \\{other:?} in {value:?}"),
            }
        }
        s
    }

    #[test]
    fn malicious_label_values_round_trip_and_stay_on_one_line() {
        let nasty = [
            "line\nbreak",
            "quote\"inject\"} 999",
            "back\\slash",
            "\\n literal then real\n",
            "all\\three\"at\nonce\\\"",
        ];
        for kind in nasty {
            assert_eq!(unescape_label(&escape_label(kind)), kind, "{kind:?}");
            let mut m = MetricsRegistry::new();
            m.incr(&format!("fault.{kind}"), 7);
            let text = render(&m);
            // The sample must be exactly one line, parseable back to
            // the original kind.
            let sample = text
                .lines()
                .find(|l| l.starts_with("hc_faults_total{kind=\""))
                .expect("sample rendered");
            assert!(sample.ends_with("\"} 7"), "framing intact: {sample:?}");
            let inner = sample
                .strip_prefix("hc_faults_total{kind=\"")
                .unwrap()
                .strip_suffix("\"} 7")
                .unwrap();
            assert_eq!(unescape_label(inner), kind);
        }
    }

    #[test]
    fn worker_series_are_bounded_with_an_other_rollup() {
        let mut m = MetricsRegistry::new();
        // 20 workers: worker i delivers i+1 answers, and the busiest
        // four also time out once each.
        for i in 0..20u32 {
            m.incr(&format!("worker.{i}.delivered"), u64::from(i) + 1);
        }
        for i in 16..20u32 {
            m.incr(&format!("worker.{i}.timed_out"), 1);
        }
        let text = render(&m);
        let series: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("hc_worker_outcomes_total{"))
            .collect();
        let distinct: std::collections::BTreeSet<&str> = series
            .iter()
            .map(|l| {
                l.strip_prefix("hc_worker_outcomes_total{worker=\"")
                    .unwrap()
                    .split('"')
                    .next()
                    .unwrap()
            })
            .collect();
        assert_eq!(distinct.len(), MAX_WORKER_SERIES + 1, "{distinct:?}");
        assert!(distinct.contains("other"));
        // The busiest workers keep their own series; the four smallest
        // (volume 1..=4) fold into the rollup.
        assert!(distinct.contains("19"));
        assert!(distinct.contains("4"));
        for dropped in ["0", "1", "2"] {
            assert!(!distinct.contains(dropped), "worker {dropped} should roll up");
        }
        assert!(text.contains("hc_worker_outcomes_total{worker=\"other\",outcome=\"delivered\"} 10"));
        // No count is lost: exposed series sum to the registry total.
        let exposed: u64 = series
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(exposed, (1..=20).sum::<u64>() + 4);
    }

    #[test]
    fn few_workers_keep_their_own_series() {
        let text = render(&sample_registry());
        assert!(!text.contains("{worker=\"other\""));
        assert_eq!(
            bound_worker_series(vec![("9".into(), "delivered".into(), 3)]),
            vec![("9".to_string(), "delivered".to_string(), 3)]
        );
    }

    #[test]
    fn adversarial_worker_names_escape_and_stay_bounded() {
        let mut m = MetricsRegistry::new();
        // 20 hostile worker labels, each trying to break line framing
        // or smuggle in extra series.
        for i in 0..20u32 {
            m.incr(&format!("worker.w{i}\"}} 999\nhc_fake{{x=\"y.delivered"), u64::from(i) + 1);
        }
        let text = render(&m);
        let series: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("hc_worker_outcomes_total{"))
            .collect();
        assert_eq!(series.len(), MAX_WORKER_SERIES + 1);
        for line in &series {
            assert!(line.rsplit(' ').next().unwrap().parse::<u64>().is_ok(), "{line:?}");
        }
        // The newline in the label is escaped, so no line ever *starts*
        // with the smuggled metric name.
        assert!(
            !text.lines().any(|l| l.starts_with("hc_fake")),
            "label escaped its quotes"
        );
        // The nastiest labels still round-trip through the escaper.
        let worker_label = series[0]
            .strip_prefix("hc_worker_outcomes_total{worker=\"")
            .unwrap();
        let end = worker_label.find("\",outcome=").unwrap();
        assert!(unescape_label(&worker_label[..end]).starts_with('w'));
    }

    #[test]
    fn malicious_metric_names_cannot_break_help_framing() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("evil\nname \\ with \"quotes\"", 1.0);
        let text = render(&m);
        // One HELP line, one TYPE line, one sample — injection would
        // add a fourth.
        assert_eq!(text.lines().count(), 3, "{text:?}");
        assert!(text.contains("Registry gauge \"evil\\nname \\\\ with \"quotes\"\"."));
    }
}
