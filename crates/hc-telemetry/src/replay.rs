//! Replay: fold a recorded event stream back into per-round run state.
//!
//! A JSONL trace is the run's source of truth — [`ReplayedRun`]
//! reconstructs from it exactly what [`crate::event`]'s emitters saw:
//! the entropy trajectory, cumulative spend, per-round delivery
//! counts, selection-explain data, and which dispatches were left
//! open. Because the JSON encoding round-trips `f64`s bit-exactly,
//! the reconstructed entropies and spend equal the live run's
//! `HcOutcome`/`RoundRecord` values *exactly*, not approximately.
//!
//! Parsing is tolerant by design: [`ReplayedRun::from_jsonl`] skips
//! malformed lines and reports them in [`ReplayedRun::skipped`]
//! instead of aborting, so one corrupt line does not make a long
//! trace unreadable. Strict validation is the [`crate::audit`]
//! module's job.

use crate::event::{BeliefReprSummary, PhaseProfile, ProfileSpan, StopReason, TelemetryEvent};

/// The run-level facts recorded by `RunStarted`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunShape {
    /// Number of tasks in the belief state.
    pub tasks: usize,
    /// Total facts across all tasks.
    pub facts: usize,
    /// Size of the expert panel.
    pub panel: usize,
    /// Total checking budget.
    pub budget: u64,
    /// Configured base queries per round.
    pub k: usize,
    /// Total belief entropy before any checking.
    pub entropy: f64,
    /// Dataset quality before any checking.
    pub quality: f64,
    /// Belief representation summary across tasks.
    pub belief_repr: BeliefReprSummary,
}

/// The run-level facts recorded by `RunFinished`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunEnd {
    /// Rounds executed.
    pub rounds: usize,
    /// Total budget spent.
    pub budget_spent: u64,
    /// Final total belief entropy.
    pub entropy: f64,
    /// Final dataset quality.
    pub quality: f64,
    /// Why the loop stopped.
    pub reason: StopReason,
}

/// One explain-mode selection: the query the selector committed to at
/// one greedy step, with its winning gain and causal id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectedQuery {
    /// Greedy step the pick happened at (0-based).
    pub step: usize,
    /// Task index.
    pub task: usize,
    /// Fact index within the task.
    pub fact: u32,
    /// The winning gain (NaN for selectors without per-step gains).
    pub gain: f64,
    /// Causal id threaded through this query's dispatches.
    pub query_id: u64,
}

/// Numerical-health facts recorded by a round's `NumericalHealth`
/// event — the update kernel's floating-point self-report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundHealth {
    /// Smallest posterior cell mass across the round's renormalisations.
    pub min_mass: f64,
    /// Smallest pre-normalisation total mass (renormalisation scale).
    pub renorm_scale: f64,
    /// Total log evidence of the round's answers.
    pub log_evidence: f64,
    /// Posterior cells flushed to zero despite finite log-likelihood.
    pub clamp_count: u64,
    /// Whether the log-domain rescue path was needed.
    pub rescued: bool,
}

/// Reconstructed state of one round.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundState {
    /// Round number, starting at 1.
    pub round: usize,
    /// The selected `(task, fact)` pairs.
    pub queries: Vec<(usize, u32)>,
    /// Query count the schedule asked for.
    pub k_requested: usize,
    /// Query count actually selected.
    pub k_effective: usize,
    /// Total belief entropy before the round.
    pub entropy_before: f64,
    /// The selector's predicted post-round entropy.
    pub predicted_entropy: f64,
    /// Entropy realised by the update (`None` until `BeliefUpdated`).
    pub realized_entropy: Option<f64>,
    /// Dataset quality after the update.
    pub quality: Option<f64>,
    /// Cumulative budget spent after the round.
    pub budget_spent: Option<u64>,
    /// Answer attempts the update accounted as requested.
    pub answers_requested: usize,
    /// Answers the update accounted as received.
    pub answers_received: usize,
    /// `QueryDispatched` events observed in the round.
    pub dispatched: usize,
    /// `AnswerDelivered` events observed in the round.
    pub delivered: usize,
    /// `AnswerTimedOut` events observed in the round.
    pub timed_out: usize,
    /// `AnswerDropped` events observed in the round.
    pub dropped: usize,
    /// `RetryScheduled` events attributed to the round.
    pub retries: usize,
    /// `FaultInjected` events attributed to the round.
    pub faults: usize,
    /// Explain mode: gains the argmax evaluated this round.
    pub candidates_scored: usize,
    /// Explain mode: the per-step picks with their winning gains.
    pub selected: Vec<SelectedQuery>,
    /// Numerical health of the round's updates (`None` until a
    /// `NumericalHealth` event is seen — older logs have none).
    pub health: Option<RoundHealth>,
}

impl RoundState {
    /// Per-round selection regret `realized − predicted` entropy;
    /// `None` until the round's update was seen.
    pub fn regret(&self) -> Option<f64> {
        self.realized_entropy.map(|r| r - self.predicted_entropy)
    }
}

/// The profiling facts recorded by a `ProfileReport` event: the span
/// tree, per-phase latency stats, and work counters of the run that
/// wrote the trace. Wall-clock numbers — informative, not replayable
/// state (two traces of the same seeded run differ here and nowhere
/// else).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunProfile {
    /// Span-tree paths in depth-first order.
    pub spans: Vec<ProfileSpan>,
    /// Per-phase latency stats (sampled phases only).
    pub phases: Vec<PhaseProfile>,
    /// Work counters, sorted by counter name.
    pub counters: Vec<(String, u64)>,
}

impl RunProfile {
    /// Looks up a phase's stats by its stable name.
    pub fn phase(&self, name: &str) -> Option<&PhaseProfile> {
        self.phases.iter().find(|p| p.phase == name)
    }

    /// Looks up a work counter by its stable name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

/// A line [`ReplayedRun::from_jsonl`] could not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedLine {
    /// 1-based line number in the input.
    pub line: usize,
    /// The parse error, rendered.
    pub error: String,
    /// Whether this is a *torn tail*: the final non-empty line of the
    /// input, unparseable, with no terminating newline — the signature
    /// of a process killed mid-write. Recovery tolerates exactly this
    /// shape; any other unparseable line is generic corruption.
    pub torn: bool,
}

/// A dispatch that was never closed, keyed like the audit contract:
/// `(round, task, fact, worker, query_id)`.
pub type OpenDispatch = (usize, usize, u32, u32, u64);

/// A full run reconstructed from its event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplayedRun {
    /// `RunStarted` facts (`None` on a truncated log).
    pub shape: Option<RunShape>,
    /// Per-round reconstructed state, in round order.
    pub rounds: Vec<RoundState>,
    /// `RunFinished` facts (`None` on a truncated log).
    pub end: Option<RunEnd>,
    /// Dispatches never closed by a delivery/timeout/drop event.
    pub open_dispatches: Vec<OpenDispatch>,
    /// End-of-run profile (`None` unless the run had profiling on).
    pub profile: Option<RunProfile>,
    /// Events folded in.
    pub events: usize,
    /// Lines skipped as unparseable (only via [`Self::from_jsonl`]).
    pub skipped: Vec<SkippedLine>,
}

impl ReplayedRun {
    /// Folds an in-memory event stream.
    pub fn from_events(events: &[TelemetryEvent]) -> Self {
        let mut run = ReplayedRun::default();
        for event in events {
            run.fold(event);
        }
        run
    }

    /// Parses a JSONL trace, skipping (and reporting) bad lines.
    pub fn from_jsonl(text: &str) -> Self {
        let (events, skipped) = parse_jsonl(text);
        let mut run = Self::from_events(&events);
        run.skipped = skipped;
        run
    }

    /// The run's final entropy: `RunFinished` when present, else the
    /// last update's realised entropy, else the starting entropy.
    pub fn final_entropy(&self) -> Option<f64> {
        self.end
            .map(|e| e.entropy)
            .or_else(|| self.rounds.iter().rev().find_map(|r| r.realized_entropy))
            .or_else(|| self.shape.map(|s| s.entropy))
    }

    /// Total budget spent: `RunFinished` when present, else the last
    /// update's cumulative spend, else 0.
    pub fn total_spent(&self) -> u64 {
        self.end
            .map(|e| e.budget_spent)
            .or_else(|| self.rounds.iter().rev().find_map(|r| r.budget_spent))
            .unwrap_or(0)
    }

    /// The realised entropy after each completed round, in order.
    pub fn entropy_trajectory(&self) -> Vec<f64> {
        self.rounds.iter().filter_map(|r| r.realized_entropy).collect()
    }

    /// Cumulative spend after each completed round, in order.
    pub fn spend_trajectory(&self) -> Vec<u64> {
        self.rounds.iter().filter_map(|r| r.budget_spent).collect()
    }

    fn current_round(&mut self) -> Option<&mut RoundState> {
        self.rounds.last_mut()
    }

    fn close_dispatch(&mut self, key: OpenDispatch) {
        if let Some(pos) = self.open_dispatches.iter().position(|&k| k == key) {
            self.open_dispatches.remove(pos);
        }
    }

    fn fold(&mut self, event: &TelemetryEvent) {
        self.events += 1;
        match event {
            TelemetryEvent::RunStarted {
                tasks,
                facts,
                panel,
                budget,
                k,
                entropy,
                quality,
                belief_repr,
            } => {
                self.shape = Some(RunShape {
                    tasks: *tasks,
                    facts: *facts,
                    panel: *panel,
                    budget: *budget,
                    k: *k,
                    entropy: *entropy,
                    quality: *quality,
                    belief_repr: *belief_repr,
                });
            }
            TelemetryEvent::RoundSelected {
                round,
                k_requested,
                k_effective,
                queries,
                entropy_before,
                predicted_entropy,
            } => {
                self.rounds.push(RoundState {
                    round: *round,
                    queries: queries.clone(),
                    k_requested: *k_requested,
                    k_effective: *k_effective,
                    entropy_before: *entropy_before,
                    predicted_entropy: *predicted_entropy,
                    ..RoundState::default()
                });
            }
            TelemetryEvent::CandidateScored { .. } => {
                if let Some(r) = self.current_round() {
                    r.candidates_scored += 1;
                }
            }
            TelemetryEvent::QuerySelected {
                step,
                task,
                fact,
                gain,
                query_id,
                ..
            } => {
                if let Some(r) = self.current_round() {
                    r.selected.push(SelectedQuery {
                        step: *step,
                        task: *task,
                        fact: *fact,
                        gain: *gain,
                        query_id: *query_id,
                    });
                }
            }
            TelemetryEvent::QueryDispatched {
                round,
                task,
                fact,
                worker,
                query_id,
            } => {
                self.open_dispatches
                    .push((*round, *task, *fact, *worker, *query_id));
                if let Some(r) = self.current_round() {
                    r.dispatched += 1;
                }
            }
            TelemetryEvent::AnswerDelivered {
                round,
                task,
                fact,
                worker,
                query_id,
                ..
            } => {
                self.close_dispatch((*round, *task, *fact, *worker, *query_id));
                if let Some(r) = self.current_round() {
                    r.delivered += 1;
                }
            }
            TelemetryEvent::AnswerTimedOut {
                round,
                task,
                fact,
                worker,
                query_id,
            } => {
                self.close_dispatch((*round, *task, *fact, *worker, *query_id));
                if let Some(r) = self.current_round() {
                    r.timed_out += 1;
                }
            }
            TelemetryEvent::AnswerDropped {
                round,
                task,
                fact,
                worker,
                query_id,
            } => {
                self.close_dispatch((*round, *task, *fact, *worker, *query_id));
                if let Some(r) = self.current_round() {
                    r.dropped += 1;
                }
            }
            TelemetryEvent::AnswerLatency { .. } => {
                // Latency metering carries no replayable round state;
                // the crowd ledger consumes it instead.
            }
            TelemetryEvent::RetryScheduled { .. } => {
                if let Some(r) = self.current_round() {
                    r.retries += 1;
                }
            }
            TelemetryEvent::FaultInjected { .. } => {
                if let Some(r) = self.current_round() {
                    r.faults += 1;
                }
            }
            TelemetryEvent::BeliefUpdated {
                round,
                entropy,
                quality,
                budget_spent,
                answers_requested,
                answers_received,
            } => {
                // Attach to the matching open round; a stray update
                // for an unknown round is ignored (the audit flags it).
                if let Some(r) = self
                    .rounds
                    .iter_mut()
                    .rev()
                    .find(|r| r.round == *round)
                {
                    r.realized_entropy = Some(*entropy);
                    r.quality = Some(*quality);
                    r.budget_spent = Some(*budget_spent);
                    r.answers_requested = *answers_requested;
                    r.answers_received = *answers_received;
                }
            }
            TelemetryEvent::NumericalHealth {
                round,
                min_mass,
                renorm_scale,
                log_evidence,
                clamp_count,
                rescued,
            } => {
                if let Some(r) = self
                    .rounds
                    .iter_mut()
                    .rev()
                    .find(|r| r.round == *round)
                {
                    r.health = Some(RoundHealth {
                        min_mass: *min_mass,
                        renorm_scale: *renorm_scale,
                        log_evidence: *log_evidence,
                        clamp_count: *clamp_count,
                        rescued: *rescued,
                    });
                }
            }
            TelemetryEvent::ProfileReport {
                spans,
                phases,
                counters,
            } => {
                self.profile = Some(RunProfile {
                    spans: spans.clone(),
                    phases: phases.clone(),
                    counters: counters.clone(),
                });
            }
            TelemetryEvent::RunFinished {
                rounds,
                budget_spent,
                entropy,
                quality,
                reason,
            } => {
                self.end = Some(RunEnd {
                    rounds: *rounds,
                    budget_spent: *budget_spent,
                    entropy: *entropy,
                    quality: *quality,
                    reason: *reason,
                });
            }
            // Corpus envelope events carry scheduler-level bookkeeping,
            // not single-run state; the per-group sub-streams between
            // them fold normally. `hc-eval inspect` summarises corpus
            // traces through the audit's per-group demux instead.
            TelemetryEvent::CorpusStarted { .. }
            | TelemetryEvent::GroupScheduled { .. }
            | TelemetryEvent::GroupAdvanced { .. }
            | TelemetryEvent::GroupFinished { .. }
            | TelemetryEvent::CorpusFinished { .. } => {}
        }
    }
}

/// Parses a JSONL trace into events, collecting unparseable lines as
/// [`SkippedLine`]s instead of failing. Blank lines are ignored, as are
/// intact embedded checkpoint lines (see [`crate::checkpoint`]) — a
/// trace with checkpoints is still a pure event stream to replay. A
/// trailing line torn by a crash is reported with
/// [`SkippedLine::torn`] set.
pub fn parse_jsonl(text: &str) -> (Vec<TelemetryEvent>, Vec<SkippedLine>) {
    let mut events = Vec::new();
    let mut skipped = Vec::new();
    let last_nonempty = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, _)| i)
        .last();
    let terminated = text.ends_with('\n');
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if crate::checkpoint::is_checkpoint_line(line)
            && crate::checkpoint::CheckpointFrame::from_json_line(line).is_ok()
        {
            continue;
        }
        match TelemetryEvent::from_json_line(line) {
            Ok(event) => events.push(event),
            Err(e) => skipped.push(SkippedLine {
                line: idx + 1,
                error: e.to_string(),
                torn: Some(idx) == last_nonempty && !terminated,
            }),
        }
    }
    (events, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::tests::sample_events;

    #[test]
    fn folds_the_sample_stream_into_one_round() {
        let run = ReplayedRun::from_events(&sample_events());
        let shape = run.shape.expect("RunStarted folded");
        assert_eq!(shape.tasks, 2);
        assert_eq!(shape.budget, 10);
        assert_eq!(run.rounds.len(), 1);
        let r = &run.rounds[0];
        assert_eq!(r.round, 1);
        assert_eq!(r.queries, vec![(0, 2), (1, 0)]);
        assert_eq!(r.dispatched, 1);
        assert_eq!(r.delivered, 1);
        assert_eq!(r.timed_out, 1);
        assert_eq!(r.dropped, 1);
        assert_eq!(r.retries, 1);
        assert_eq!(r.faults, 1);
        assert_eq!(r.candidates_scored, 1);
        assert_eq!(r.selected.len(), 1);
        assert_eq!(r.selected[0].query_id, 1);
        assert_eq!(r.realized_entropy, Some(2.75));
        assert_eq!(r.budget_spent, Some(2));
        assert_eq!(r.regret(), Some(2.75 - 2.5));
        let health = r.health.expect("NumericalHealth folded");
        assert_eq!(health.clamp_count, 3);
        assert!(health.rescued);
        assert_eq!(health.renorm_scale, 0.125);
        let end = run.end.expect("RunFinished folded");
        assert_eq!(end.budget_spent, 2);
        assert_eq!(run.final_entropy(), Some(2.75));
        assert_eq!(run.total_spent(), 2);
        assert_eq!(run.entropy_trajectory(), vec![2.75]);
        assert_eq!(run.spend_trajectory(), vec![2]);
        // The sample stream closes the dispatch it opens; the timeout
        // and drop close nothing (their dispatches are not in the
        // sample), which replay tolerates.
        assert!(run.open_dispatches.is_empty());
        // The sample's ProfileReport is surfaced, not folded into state.
        let profile = run.profile.as_ref().expect("ProfileReport folded");
        assert_eq!(profile.spans.len(), 2);
        assert_eq!(profile.counter("candidate_evals"), Some(12));
        assert_eq!(profile.counter("unknown"), None);
        assert!(profile.phase("selection").is_some());
        assert!(profile.phase("nope").is_none());
    }

    #[test]
    fn jsonl_replay_skips_and_reports_bad_lines() {
        let mut text = String::new();
        for event in sample_events() {
            text.push_str(&event.to_json_line());
            text.push('\n');
        }
        let good = ReplayedRun::from_jsonl(&text);
        assert!(good.skipped.is_empty());
        assert_eq!(good.events, sample_events().len());

        // Corrupt the middle: truncated JSON, unknown kind, garbage.
        let lines: Vec<&str> = text.lines().collect();
        let mut corrupt = String::new();
        for (i, line) in lines.iter().enumerate() {
            if i == 2 {
                corrupt.push_str(&line[..line.len() / 2]);
                corrupt.push('\n');
                corrupt.push_str("{\"type\":\"mystery_event\"}\n");
                corrupt.push_str("ü!! not json at all\n");
            } else {
                corrupt.push_str(line);
                corrupt.push('\n');
            }
        }
        let run = ReplayedRun::from_jsonl(&corrupt);
        assert_eq!(run.skipped.len(), 3, "{:?}", run.skipped);
        assert_eq!(run.skipped[0].line, 3);
        assert_eq!(run.events, sample_events().len() - 1);
        // The surviving events still reconstruct the run frame.
        assert!(run.shape.is_some());
        assert!(run.end.is_some());
    }

    #[test]
    fn truncated_log_falls_back_to_the_last_update() {
        let mut events = sample_events();
        events.pop(); // drop RunFinished
        let run = ReplayedRun::from_events(&events);
        assert!(run.end.is_none());
        assert_eq!(run.final_entropy(), Some(2.75), "from BeliefUpdated");
        assert_eq!(run.total_spent(), 2);
        // Drop the profile, health report, and the update too: only
        // the starting entropy remains.
        events.pop(); // ProfileReport
        events.pop(); // NumericalHealth
        events.pop(); // BeliefUpdated
        let bare = ReplayedRun::from_events(&events);
        assert_eq!(bare.final_entropy(), Some(3.25), "from RunStarted");
        assert_eq!(bare.total_spent(), 0);
    }

    #[test]
    fn unclosed_dispatches_are_reported_open() {
        let events = vec![TelemetryEvent::QueryDispatched {
            round: 1,
            task: 0,
            fact: 1,
            worker: 2,
            query_id: 7,
        }];
        let run = ReplayedRun::from_events(&events);
        assert_eq!(run.open_dispatches, vec![(1, 0, 1, 2, 7)]);
        assert_eq!(run.final_entropy(), None);
    }

    #[test]
    fn empty_input_is_an_empty_run() {
        let run = ReplayedRun::from_jsonl("");
        assert_eq!(run, ReplayedRun::default());
    }

    #[test]
    fn a_torn_tail_is_classified_as_torn() {
        let mut text = String::new();
        for event in sample_events() {
            text.push_str(&event.to_json_line());
            text.push('\n');
        }
        // Crash mid-write: half of one more line, no newline.
        let extra = sample_events()[2].to_json_line();
        text.push_str(&extra[..extra.len() / 2]);
        let run = ReplayedRun::from_jsonl(&text);
        assert_eq!(run.skipped.len(), 1, "{:?}", run.skipped);
        assert!(run.skipped[0].torn, "trailing unterminated line is torn");
        assert_eq!(run.events, sample_events().len(), "prefix fully replayed");

        // The same garbage followed by a newline is NOT torn…
        let terminated = format!("{text}\n");
        let run = ReplayedRun::from_jsonl(&terminated);
        assert!(!run.skipped[0].torn, "newline-terminated garbage is generic corruption");

        // …and neither is a mid-stream bad line even without a final newline.
        let mut mid = String::new();
        for (i, event) in sample_events().iter().enumerate() {
            if i == 2 {
                mid.push_str("ü!! not json\n");
            }
            mid.push_str(&event.to_json_line());
            if i + 1 < sample_events().len() {
                mid.push('\n');
            }
        }
        let run = ReplayedRun::from_jsonl(&mid);
        assert_eq!(run.skipped.len(), 1);
        assert!(!run.skipped[0].torn, "mid-stream corruption is not a torn tail");
    }

    #[test]
    fn embedded_checkpoint_lines_are_ignored_by_replay() {
        use crate::checkpoint::CheckpointFrame;
        let mut text = String::new();
        for (i, event) in sample_events().iter().enumerate() {
            text.push_str(&event.to_json_line());
            text.push('\n');
            if i == 3 {
                let frame = CheckpointFrame::new("hc-session", 1, "state".to_string());
                text.push_str(&frame.to_json_line());
                text.push('\n');
            }
        }
        let run = ReplayedRun::from_jsonl(&text);
        assert!(run.skipped.is_empty(), "{:?}", run.skipped);
        assert_eq!(run.events, sample_events().len());
        // A *corrupt* checkpoint line is still reported as skipped.
        let frame = CheckpointFrame::new("hc-session", 1, "state".to_string());
        let bad = frame.to_json_line().replace("state", "statx");
        let text = format!("{bad}\n{text}");
        let run = ReplayedRun::from_jsonl(&text);
        assert_eq!(run.skipped.len(), 1);
        assert_eq!(run.skipped[0].line, 1);
    }
}
