//! Zero-dependency observability for the hierarchical-crowdsourcing
//! stack: structured run events, pluggable sinks, a metrics registry,
//! and hot-path timing histograms.
//!
//! The crate is a leaf — it depends on nothing and speaks in plain ids
//! (`task: usize`, `fact: u32`, `worker: u32`) — so every other crate
//! (`hc-core`'s loop, `hc-sim`'s platform and fault layer, `hc-eval`'s
//! experiments) can emit into one stream without a dependency cycle.
//!
//! # The pieces
//!
//! - [`TelemetryEvent`] — the typed event model of one checking run,
//!   with a stable JSONL encoding ([`TelemetryEvent::to_json_line`] /
//!   [`TelemetryEvent::from_json_line`]).
//! - [`TelemetrySink`] — where events go. [`NullSink`] is the disabled
//!   default (`enabled() == false`, so emitters skip event
//!   construction entirely); [`RecordingSink`] keeps the log in
//!   memory; [`FileSink`] streams JSONL to disk; [`SharedRecorder`]
//!   fans multiple layers into one ordered log.
//! - [`MetricsRegistry`] — string-keyed counters, gauges, and
//!   fixed-bucket [`Histogram`]s; [`MetricsRegistry::from_events`]
//!   derives the standard HC metric set from an event log, and
//!   [`MetricsRegistry::to_prometheus`] exposes it in Prometheus text
//!   format.
//! - [`replay`] — folds a recorded stream (or raw JSONL) back into
//!   per-round run state: entropy/spend trajectories, per-round query
//!   accounting, still-open dispatches.
//! - [`crowd`] — per-worker crowd health: fold a trace into worker
//!   ledgers (deliveries, failures, retries, latency, agreement with
//!   the crowd consensus with Wilson intervals) and run a CUSUM drift
//!   detector over each worker's agreement stream.
//! - [`audit`] — invariant checks and anomaly detection over a stream:
//!   dispatch-closure violations, round-order breaks, non-finite
//!   values, spend inconsistencies as errors; entropy stalls, retry
//!   storms, starved workers, torn trailing lines as warnings.
//! - [`checkpoint`] — versioned, CRC-checksummed checkpoint frames
//!   (embedded in a trace or as atomically-replaced snapshot files)
//!   with typed rejection of torn, corrupt, or foreign frames.
//! - [`timing`] — thread-local monotonic spans around the hot paths
//!   (selection, conditional entropy, Bayes updates), aggregated both
//!   as flat per-phase latency histograms and as a hierarchical span
//!   tree (inclusive vs self time), plus deterministic work counters;
//!   a snapshot becomes a [`TelemetryEvent::ProfileReport`].
//! - [`compare`] — diffs two runs (JSONL traces or stamped
//!   `BENCH_*.json` documents): trajectory divergence, per-phase
//!   latency deltas, counter ratios, and a regression gate.
//!
//! # Example
//!
//! ```
//! use hc_telemetry::{MetricsRegistry, RecordingSink, TelemetryEvent, TelemetrySink};
//!
//! let mut sink = RecordingSink::new();
//! if sink.enabled() {
//!     sink.record(&TelemetryEvent::QueryDispatched {
//!         round: 1,
//!         task: 0,
//!         fact: 3,
//!         worker: 2,
//!         query_id: 1,
//!     });
//! }
//! let metrics = MetricsRegistry::from_events(sink.events());
//! assert_eq!(metrics.counter("queries_dispatched"), 1);
//! ```

#![warn(missing_docs)]

pub mod audit;
pub mod checkpoint;
pub mod compare;
pub mod crowd;
pub mod event;
pub mod json;
pub mod metrics;
pub mod prometheus;
pub mod replay;
pub mod sink;
pub mod timing;

pub use audit::{
    audit, audit_jsonl, audit_jsonl_with, audit_with, AuditConfig, AuditReport, Finding, Severity,
};
pub use checkpoint::{CheckpointError, CheckpointFrame, CHECKPOINT_VERSION};
pub use crowd::{
    wilson_half_width, wilson_interval, CrowdConfig, CrowdLedger, WorkerDriftSuspected,
    WorkerLedger,
};
pub use compare::{compare_str, CompareReport, CounterDelta, MetricDelta, TrajectoryDiff};
pub use event::{BeliefReprSummary, FaultKind, PhaseProfile, ProfileSpan, StopReason, TelemetryEvent};
pub use metrics::{Histogram, MetricsRegistry};
pub use replay::{ReplayedRun, RoundHealth, RoundState, RunEnd, RunProfile, RunShape, SkippedLine};
pub use sink::{FileSink, NullSink, RecordingSink, SharedRecorder, TelemetrySink};
pub use timing::{Counter, Phase, SpanNode, TimingSnapshot, COUNTERS, PHASES};
