//! Sinks: where [`TelemetryEvent`]s go.
//!
//! The contract that keeps telemetry free when unused: emitters must
//! gate event *construction* on [`TelemetrySink::enabled`]. `NullSink`
//! reports `false`, so a disabled run never allocates a `Vec` of query
//! pairs or formats a JSON line — the instrumented loop does one
//! virtual call per emission site and nothing else.

use crate::checkpoint::CheckpointFrame;
use crate::event::TelemetryEvent;
use crate::json;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// A destination for telemetry events.
pub trait TelemetrySink {
    /// Whether this sink wants events at all.
    ///
    /// Emitters should check this before building an event; when it
    /// returns `false` the event payload is never constructed.
    fn enabled(&self) -> bool {
        true
    }

    /// Accepts one event.
    fn record(&mut self, event: &TelemetryEvent);

    /// Flushes any buffered output. Default: no-op.
    fn flush(&mut self) {}
}

/// The disabled sink: reports `enabled() == false` and drops everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: &TelemetryEvent) {}
}

/// An in-memory sink that keeps every event, in order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordingSink {
    events: Vec<TelemetryEvent>,
}

impl RecordingSink {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TelemetryEvent] {
        &self.events
    }

    /// Consumes the sink, returning the recorded events.
    pub fn into_events(self) -> Vec<TelemetryEvent> {
        self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialises the whole log as JSONL (one event per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL log back into a recorder; blank lines are skipped.
    pub fn from_jsonl(text: &str) -> Result<Self, json::ParseError> {
        let mut events = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            events.push(TelemetryEvent::from_json_line(line)?);
        }
        Ok(Self { events })
    }
}

impl TelemetrySink for RecordingSink {
    fn record(&mut self, event: &TelemetryEvent) {
        self.events.push(event.clone());
    }
}

/// A JSONL file sink; one event per line, buffered, flushed on drop.
///
/// The [`TelemetrySink`] contract has no error channel, so write and
/// flush failures cannot propagate at the call site; instead the sink
/// remembers the *first* I/O error it hits and surfaces it through
/// [`FileSink::last_error`] — or, without polling, through
/// [`FileSink::close`], which consumes the sink and returns that first
/// deferred error (a plain drop would lose it silently).
///
/// Durability: a `RunFinished` record and every
/// [`FileSink::write_checkpoint`] call flush the buffer *and* `fsync`
/// the file, so a completed run (or any round up to the last
/// checkpoint) survives a crash of the process or the OS. Ordinary
/// events are only buffered — a crash mid-round may tear the trailing
/// line, which the replay/audit layer tolerates as a `torn_tail`.
#[derive(Debug)]
pub struct FileSink {
    writer: BufWriter<File>,
    last_error: Option<std::io::Error>,
    lines: u64,
}

impl FileSink {
    /// Creates (truncating) the file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        Ok(Self {
            writer: BufWriter::new(File::create(path)?),
            last_error: None,
            lines: 0,
        })
    }

    /// Opens `path` for appending (creating it if absent), e.g. to
    /// continue a trace after a crash+resume. [`FileSink::lines_written`]
    /// starts at the number of lines already in the file, so it keeps
    /// reporting the file's total line count.
    pub fn append<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let existing = match File::open(&path) {
            Ok(file) => BufReader::new(file).lines().count() as u64,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
            Err(e) => return Err(e),
        };
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self {
            writer: BufWriter::new(file),
            last_error: None,
            lines: existing,
        })
    }

    /// The first write/flush error encountered, if any. `None` means
    /// every record and flush so far succeeded.
    pub fn last_error(&self) -> Option<&std::io::Error> {
        self.last_error.as_ref()
    }

    /// Total lines in the file (pre-existing on [`FileSink::append`]
    /// plus every event and checkpoint line written since). This is the
    /// stitch point a resume records: truncating the trace to this many
    /// lines drops anything written — possibly torn — after it.
    pub fn lines_written(&self) -> u64 {
        self.lines
    }

    /// Flushes the buffer and `fsync`s the file to disk.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_all()
    }

    /// Writes an embedded checkpoint line, then flushes and `fsync`s
    /// (checkpoints are durability barriers by contract).
    pub fn write_checkpoint(&mut self, frame: &CheckpointFrame) -> std::io::Result<()> {
        let result = writeln!(self.writer, "{}", frame.to_json_line()).and_then(|()| {
            self.lines += 1;
            self.sync()
        });
        if let Err(e) = &result {
            self.note_kind(e.kind());
        }
        result
    }

    /// Flushes and closes the sink, surfacing the first deferred I/O
    /// error (if any) instead of dropping it on the floor.
    pub fn close(mut self) -> std::io::Result<()> {
        let result = self.writer.flush();
        self.note(result);
        match self.last_error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn note(&mut self, result: std::io::Result<()>) {
        if let Err(e) = result {
            if self.last_error.is_none() {
                self.last_error = Some(e);
            }
        }
    }

    fn note_kind(&mut self, kind: std::io::ErrorKind) {
        if self.last_error.is_none() {
            self.last_error = Some(std::io::Error::from(kind));
        }
    }
}

impl TelemetrySink for FileSink {
    fn record(&mut self, event: &TelemetryEvent) {
        let result = writeln!(self.writer, "{}", event.to_json_line());
        self.lines += 1;
        self.note(result);
        // A finished run must survive a crash: fsync at the frame edge.
        if matches!(event, TelemetryEvent::RunFinished { .. }) {
            let result = self.sync();
            self.note(result);
        }
    }

    fn flush(&mut self) {
        let result = self.writer.flush();
        self.note(result);
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

/// A cloneable handle to a shared [`RecordingSink`].
///
/// The HC loop, the simulated platform, and the fault layer each hold
/// their own sink reference; cloning a `SharedRecorder` into all three
/// fans their events into one ordered log (the stack is
/// single-threaded, so emission order is the lock-acquisition order).
#[derive(Debug, Clone, Default)]
pub struct SharedRecorder {
    inner: Arc<Mutex<RecordingSink>>,
}

impl SharedRecorder {
    /// Creates an empty shared recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the events recorded so far.
    pub fn snapshot(&self) -> Vec<TelemetryEvent> {
        self.inner.lock().expect("telemetry lock poisoned").events().to_vec()
    }

    /// Extracts the log, consuming this handle. If other clones are
    /// still alive the log is copied out instead.
    pub fn into_events(self) -> Vec<TelemetryEvent> {
        match Arc::try_unwrap(self.inner) {
            Ok(mutex) => mutex.into_inner().expect("telemetry lock poisoned").into_events(),
            Err(arc) => arc.lock().expect("telemetry lock poisoned").events().to_vec(),
        }
    }
}

impl TelemetrySink for SharedRecorder {
    fn record(&mut self, event: &TelemetryEvent) {
        self.inner.lock().expect("telemetry lock poisoned").record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StopReason;

    fn finish() -> TelemetryEvent {
        TelemetryEvent::RunFinished {
            rounds: 3,
            budget_spent: 12,
            entropy: 0.5,
            quality: -0.5,
            reason: StopReason::MaxRounds,
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        let sink = NullSink;
        assert!(!sink.enabled());
    }

    #[test]
    fn recording_sink_keeps_order() {
        let mut sink = RecordingSink::new();
        assert!(sink.enabled());
        assert!(sink.is_empty());
        let a = TelemetryEvent::QueryDispatched {
            round: 1,
            task: 0,
            fact: 0,
            worker: 0,
            query_id: 1,
        };
        sink.record(&a);
        sink.record(&finish());
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.events()[0], a);
        assert_eq!(sink.events()[1], finish());
    }

    #[test]
    fn recording_sink_jsonl_round_trip() {
        let mut sink = RecordingSink::new();
        for event in crate::event::tests::sample_events() {
            sink.record(&event);
        }
        let text = sink.to_jsonl();
        let back = RecordingSink::from_jsonl(&text).expect("round trip");
        assert_eq!(back, sink);
        // Blank lines are tolerated.
        let padded = format!("\n{text}\n\n");
        assert_eq!(RecordingSink::from_jsonl(&padded).expect("padded"), sink);
    }

    #[test]
    fn file_sink_writes_parseable_jsonl() {
        let path = std::env::temp_dir().join(format!(
            "hc_telemetry_sink_test_{}.jsonl",
            std::process::id()
        ));
        {
            let mut sink = FileSink::create(&path).expect("create");
            for event in crate::event::tests::sample_events() {
                sink.record(&event);
            }
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        let back = RecordingSink::from_jsonl(&text).expect("parse");
        assert_eq!(back.into_events(), crate::event::tests::sample_events());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_sink_reports_no_error_on_a_healthy_file() {
        let path = std::env::temp_dir().join(format!(
            "hc_telemetry_sink_ok_{}.jsonl",
            std::process::id()
        ));
        let mut sink = FileSink::create(&path).expect("create");
        sink.record(&finish());
        sink.flush();
        assert!(sink.last_error().is_none());
        drop(sink);
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn file_sink_remembers_the_first_write_error() {
        // /dev/full accepts the open but fails every write with ENOSPC,
        // so the failure surfaces at the latest on flush.
        let mut sink = FileSink::create("/dev/full").expect("open /dev/full");
        for _ in 0..4096 {
            sink.record(&finish());
        }
        sink.flush();
        let err = sink.last_error().expect("writes to /dev/full must fail");
        let first_kind = err.kind();
        // Further flushes keep the *first* error.
        sink.flush();
        assert_eq!(sink.last_error().unwrap().kind(), first_kind);
    }

    #[test]
    fn close_surfaces_the_deferred_error() {
        // Healthy file: close is Ok.
        let path = std::env::temp_dir().join(format!(
            "hc_telemetry_sink_close_{}.jsonl",
            std::process::id()
        ));
        let mut sink = FileSink::create(&path).expect("create");
        sink.record(&finish());
        sink.close().expect("healthy close");
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn close_fails_on_a_full_device() {
        let mut sink = FileSink::create("/dev/full").expect("open /dev/full");
        for _ in 0..4096 {
            sink.record(&finish());
        }
        assert!(sink.close().is_err(), "deferred ENOSPC must surface at close");
    }

    #[test]
    fn line_counter_tracks_events_and_checkpoints_across_append() {
        let path = std::env::temp_dir().join(format!(
            "hc_telemetry_sink_lines_{}.jsonl",
            std::process::id()
        ));
        let mut sink = FileSink::create(&path).expect("create");
        assert_eq!(sink.lines_written(), 0);
        sink.record(&finish());
        let frame = CheckpointFrame::new("test", 1, "p".to_string());
        sink.write_checkpoint(&frame).expect("checkpoint");
        assert_eq!(sink.lines_written(), 2);
        sink.close().expect("close");

        // Re-open for append: the counter resumes at the file's total.
        let mut sink = FileSink::append(&path).expect("append");
        assert_eq!(sink.lines_written(), 2);
        sink.record(&finish());
        assert_eq!(sink.lines_written(), 3);
        sink.close().expect("close");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text.lines().count(), 3);
        // The embedded checkpoint round-trips from the trace.
        let latest = crate::checkpoint::latest_in_jsonl(&text).expect("embedded frame");
        assert_eq!(latest, frame);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shared_recorder_fans_in_from_clones() {
        let mut a = SharedRecorder::new();
        let mut b = a.clone();
        a.record(&finish());
        b.record(&finish());
        assert_eq!(a.snapshot().len(), 2);
        drop(b);
        assert_eq!(a.into_events().len(), 2);
    }
}
