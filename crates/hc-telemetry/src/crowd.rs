//! Crowd health: fold an event stream into per-worker ledgers with
//! agreement-based accuracy estimates, Wilson confidence intervals,
//! latency histograms, and a CUSUM drift detector.
//!
//! The θ-split assumes worker accuracies are known and static; this
//! module is the measurement layer that checks both assumptions from
//! the trace alone. Ground truth is never available at audit time, so
//! *agreement with the crowd consensus* stands in for accuracy: a
//! first pass pools every [`TelemetryEvent::AnswerDelivered`] into
//! per-`(task, fact)` vote tallies, and a second pass scores each
//! answer against the **leave-one-out majority** — the consensus of
//! the *other* voters on that fact, so a worker never agrees with
//! itself (a lone voter, or an exactly split remainder, is a tie and
//! is excluded). The resulting 0/1 agreement stream per worker feeds:
//!
//! - a point estimate with a Wilson score interval
//!   ([`wilson_interval`]) — honest uncertainty at small counts, the
//!   input every adaptive allocation policy consumes;
//! - a one-sided CUSUM detector ([`CrowdConfig`]) that alarms when a
//!   worker's recent agreement falls persistently below its own
//!   baseline — the "which worker is degrading?" primitive.
//!
//! Everything here is a deterministic fold over the trace: the same
//! JSONL bytes produce the same ledger (and the same
//! [`CrowdLedger::to_json`] bytes) at any thread count.

use crate::event::TelemetryEvent;
use crate::json::Json;
use crate::metrics::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Wilson score interval for a binomial proportion, as `(low, high)`.
///
/// Unlike the normal approximation, the interval stays inside `[0, 1]`
/// and keeps honest width at small `total` — `(0.0, 1.0)` when no
/// trials were observed. `z` is the standard-normal critical value
/// (1.96 for 95% confidence).
pub fn wilson_interval(correct: u64, total: u64, z: f64) -> (f64, f64) {
    if total == 0 {
        return (0.0, 1.0);
    }
    let n = total as f64;
    let p = correct.min(total) as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((centre - half).max(0.0), (centre + half).min(1.0))
}

/// Half the width of the [`wilson_interval`] — the `±` uncertainty a
/// report quotes next to the point estimate.
pub fn wilson_half_width(correct: u64, total: u64, z: f64) -> f64 {
    let (low, high) = wilson_interval(correct, total, z);
    (high - low) / 2.0
}

/// Knobs for the ledger fold and the drift detector.
///
/// The CUSUM is one-sided and downward: with baseline agreement `p0`
/// (the mean of the worker's first [`Self::drift_window`] comparable
/// answers) the statistic evolves as
/// `S ← max(0, S + (p0 − aᵢ − slack))` over subsequent agreement bits
/// `aᵢ`, and alarms when `S > threshold`. `slack` absorbs baseline
/// noise; `threshold` trades detection latency against false alarms —
/// the default 2.5 needs roughly three near-consecutive disagreements
/// beyond slack before it can fire, which a healthy high-agreement
/// worker essentially never produces by chance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrowdConfig {
    /// Critical value for the Wilson intervals (1.96 ≈ 95%).
    pub wilson_z: f64,
    /// Baseline window: comparable answers used to estimate `p0`, and
    /// the "recent agreement" window quoted when an alarm fires.
    pub drift_window: usize,
    /// Allowance subtracted from every CUSUM increment.
    pub drift_slack: f64,
    /// Alarm level for the CUSUM statistic.
    pub drift_threshold: f64,
    /// Minimum comparable answers before the detector may alarm.
    pub drift_min_answers: usize,
}

impl Default for CrowdConfig {
    fn default() -> Self {
        CrowdConfig {
            wilson_z: 1.96,
            drift_window: 10,
            drift_slack: 0.1,
            drift_threshold: 2.5,
            drift_min_answers: 10,
        }
    }
}

/// A CUSUM alarm: one worker's agreement stream fell persistently
/// below its own baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerDriftSuspected {
    /// The drifting worker.
    pub worker: u32,
    /// 0-based index into the worker's *comparable* answer stream at
    /// which the alarm fired (detection latency, in answers, counts
    /// from the change point to here).
    pub at_answer: usize,
    /// Baseline agreement `p0` over the first window.
    pub baseline: f64,
    /// Mean agreement over the last window at alarm time.
    pub recent: f64,
    /// The CUSUM statistic when it crossed the threshold.
    pub cusum: f64,
}

/// Per-worker tallies folded from one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerLedger {
    /// The worker id the tallies belong to.
    pub worker: u32,
    /// Dispatches keyed to this worker.
    pub dispatched: u64,
    /// Answers this worker delivered.
    pub delivered: u64,
    /// Dispatches to this worker that timed out.
    pub timed_out: u64,
    /// Dispatches to this worker that were dropped.
    pub dropped: u64,
    /// Retries scheduled against this worker.
    pub retries: u64,
    /// Faults injected on this worker's attempts.
    pub faults: u64,
    /// Delivered answers that had a consensus to compare against.
    pub comparable: u64,
    /// Of those, answers agreeing with the consensus.
    pub agreements: u64,
    /// The accuracy the worker was *hired at* (from the panel / fault
    /// plan), when the caller supplies it; the gap between declared
    /// and observed agreement is the re-tiering signal.
    pub declared_accuracy: Option<f64>,
    /// Simulated per-answer latency, when the trace carries
    /// [`TelemetryEvent::AnswerLatency`] events.
    pub latency: Histogram,
    /// The first drift alarm on this worker's agreement stream, if any.
    pub drift: Option<WorkerDriftSuspected>,
}

impl WorkerLedger {
    fn new(worker: u32) -> Self {
        WorkerLedger {
            worker,
            dispatched: 0,
            delivered: 0,
            timed_out: 0,
            dropped: 0,
            retries: 0,
            faults: 0,
            comparable: 0,
            agreements: 0,
            declared_accuracy: None,
            latency: Histogram::new(Histogram::default_bounds()),
            drift: None,
        }
    }

    /// Observed agreement-with-consensus rate; NaN with no comparable
    /// answers.
    pub fn agreement(&self) -> f64 {
        if self.comparable == 0 {
            f64::NAN
        } else {
            self.agreements as f64 / self.comparable as f64
        }
    }

    /// Wilson interval around [`Self::agreement`] at critical value `z`.
    pub fn wilson(&self, z: f64) -> (f64, f64) {
        wilson_interval(self.agreements, self.comparable, z)
    }
}

/// The folded crowd-health state of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct CrowdLedger {
    /// Per-worker ledgers, keyed (and therefore rendered) by id.
    pub workers: BTreeMap<u32, WorkerLedger>,
    /// Delivered answers excluded from agreement because the
    /// leave-one-out vote on their `(task, fact)` was tied (including
    /// the lone-voter case, where no other votes exist).
    pub consensus_ties: u64,
    /// The configuration the fold ran with.
    pub config: CrowdConfig,
}

impl CrowdLedger {
    /// Folds `events` with the default [`CrowdConfig`].
    pub fn from_events(events: &[TelemetryEvent]) -> Self {
        Self::from_events_with(events, &CrowdConfig::default())
    }

    /// Folds `events` with explicit knobs.
    ///
    /// Two deterministic passes: pooled vote tallies per
    /// `(task, fact)` first, then per-worker leave-one-out scoring in
    /// stream order, feeding the CUSUM per worker.
    pub fn from_events_with(events: &[TelemetryEvent], config: &CrowdConfig) -> Self {
        // Pass 1: (true_votes, false_votes) per (task, fact).
        let mut votes: BTreeMap<(usize, u32), (u64, u64)> = BTreeMap::new();
        for event in events {
            if let TelemetryEvent::AnswerDelivered {
                task, fact, answer, ..
            } = event
            {
                let entry = votes.entry((*task, *fact)).or_insert((0, 0));
                if *answer {
                    entry.0 += 1;
                } else {
                    entry.1 += 1;
                }
            }
        }
        // Leave-one-out: the consensus *this* answer is scored against
        // excludes the answer itself, so a worker cannot vouch for its
        // own vote and single-voter facts drop out as ties.
        let consensus = |task: usize, fact: u32, answer: bool| -> Option<bool> {
            let (mut yes, mut no) = votes.get(&(task, fact)).copied().unwrap_or((0, 0));
            if answer {
                yes = yes.saturating_sub(1);
            } else {
                no = no.saturating_sub(1);
            }
            match yes.cmp(&no) {
                std::cmp::Ordering::Greater => Some(true),
                std::cmp::Ordering::Less => Some(false),
                std::cmp::Ordering::Equal => None,
            }
        };

        // Pass 2: per-worker tallies plus agreement bit-streams.
        let mut ledger = CrowdLedger {
            workers: BTreeMap::new(),
            consensus_ties: 0,
            config: *config,
        };
        let mut streams: BTreeMap<u32, Vec<u8>> = BTreeMap::new();
        for event in events {
            match event {
                TelemetryEvent::QueryDispatched { worker, .. } => {
                    ledger.entry(*worker).dispatched += 1;
                }
                TelemetryEvent::AnswerDelivered {
                    task,
                    fact,
                    worker,
                    answer,
                    ..
                } => {
                    let w = ledger.entry(*worker);
                    w.delivered += 1;
                    match consensus(*task, *fact, *answer) {
                        Some(c) => {
                            w.comparable += 1;
                            let agree = *answer == c;
                            if agree {
                                w.agreements += 1;
                            }
                            streams.entry(*worker).or_default().push(u8::from(agree));
                        }
                        None => ledger.consensus_ties += 1,
                    }
                }
                TelemetryEvent::AnswerTimedOut { worker, .. } => {
                    ledger.entry(*worker).timed_out += 1;
                }
                TelemetryEvent::AnswerDropped { worker, .. } => {
                    ledger.entry(*worker).dropped += 1;
                }
                TelemetryEvent::RetryScheduled { worker, .. } => {
                    ledger.entry(*worker).retries += 1;
                }
                TelemetryEvent::FaultInjected { worker, .. } => {
                    ledger.entry(*worker).faults += 1;
                }
                TelemetryEvent::AnswerLatency {
                    worker,
                    latency_secs,
                    ..
                } => {
                    ledger.entry(*worker).latency.observe(*latency_secs);
                }
                _ => {}
            }
        }
        for (worker, bits) in &streams {
            ledger
                .workers
                .get_mut(worker)
                .expect("stream implies ledger entry")
                .drift = detect_drift(*worker, bits, config);
        }
        ledger
    }

    /// Attaches declared (hiring-time) accuracies, e.g. from the
    /// expert panel; unknown worker ids create empty ledger rows so
    /// hired-but-never-asked workers still show up in reports.
    pub fn with_declared<I: IntoIterator<Item = (u32, f64)>>(mut self, declared: I) -> Self {
        for (worker, accuracy) in declared {
            self.entry(worker).declared_accuracy = Some(accuracy);
        }
        self
    }

    /// The ledger row for `worker`, created on first touch.
    fn entry(&mut self, worker: u32) -> &mut WorkerLedger {
        self.workers
            .entry(worker)
            .or_insert_with(|| WorkerLedger::new(worker))
    }

    /// Workers with a drift alarm, in id order.
    pub fn drifting(&self) -> impl Iterator<Item = &WorkerDriftSuspected> {
        self.workers.values().filter_map(|w| w.drift.as_ref())
    }

    /// Renders an aligned plain-text table, one row per worker.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.workers.is_empty() {
            out.push_str("no worker-attributed events in the trace\n");
            return out;
        }
        let _ = writeln!(
            out,
            "{:<8} {:>9} {:>9} {:>8} {:>8} {:>8} {:>7} {:>7}  {:<17} {:>9}  {:>11} drift",
            "worker",
            "dispatch",
            "delivered",
            "timeout",
            "dropped",
            "retries",
            "faults",
            "agree",
            "wilson95",
            "declared",
            "lat p50/p95"
        );
        for w in self.workers.values() {
            let (low, high) = w.wilson(self.config.wilson_z);
            let agree = if w.comparable == 0 {
                "-".to_string()
            } else {
                format!("{:.3}", w.agreement())
            };
            let wilson = if w.comparable == 0 {
                "-".to_string()
            } else {
                format!("[{low:.3}, {high:.3}]")
            };
            let declared = match w.declared_accuracy {
                Some(d) => format!("{d:.3}"),
                None => "-".to_string(),
            };
            let lat = if w.latency.count() == 0 {
                "-".to_string()
            } else {
                format!(
                    "{:.1}/{:.1}s",
                    w.latency.quantile(0.5),
                    w.latency.quantile(0.95)
                )
            };
            let drift = match &w.drift {
                Some(d) => format!(
                    "SUSPECTED at answer {} (baseline {:.2} -> recent {:.2}, cusum {:.2})",
                    d.at_answer, d.baseline, d.recent, d.cusum
                ),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "{:<8} {:>9} {:>9} {:>8} {:>8} {:>8} {:>7} {:>7}  {:<17} {:>9}  {:>11} {}",
                w.worker,
                w.dispatched,
                w.delivered,
                w.timed_out,
                w.dropped,
                w.retries,
                w.faults,
                agree,
                wilson,
                declared,
                lat,
                drift
            );
        }
        if self.consensus_ties > 0 {
            let _ = writeln!(
                out,
                "({} answers excluded from agreement: tied consensus)",
                self.consensus_ties
            );
        }
        out
    }

    /// Serialises the ledger as a deterministic [`Json`] value —
    /// `BTreeMap` ordering end to end, so equal traces produce equal
    /// bytes at any thread count.
    pub fn to_json(&self) -> Json {
        let num = |v: u64| Json::Num(v as f64);
        let workers = self
            .workers
            .values()
            .map(|w| {
                let (low, high) = w.wilson(self.config.wilson_z);
                let mut obj = BTreeMap::new();
                obj.insert("worker".into(), num(u64::from(w.worker)));
                obj.insert("dispatched".into(), num(w.dispatched));
                obj.insert("delivered".into(), num(w.delivered));
                obj.insert("timed_out".into(), num(w.timed_out));
                obj.insert("dropped".into(), num(w.dropped));
                obj.insert("retries".into(), num(w.retries));
                obj.insert("faults".into(), num(w.faults));
                obj.insert("comparable".into(), num(w.comparable));
                obj.insert("agreements".into(), num(w.agreements));
                obj.insert("agreement".into(), Json::Num(w.agreement()));
                obj.insert("wilson_low".into(), Json::Num(low));
                obj.insert("wilson_high".into(), Json::Num(high));
                obj.insert(
                    "declared_accuracy".into(),
                    w.declared_accuracy.map_or(Json::Null, Json::Num),
                );
                obj.insert(
                    "latency".into(),
                    if w.latency.count() == 0 {
                        Json::Null
                    } else {
                        let mut lat = BTreeMap::new();
                        lat.insert("count".into(), num(w.latency.count()));
                        lat.insert("mean_secs".into(), Json::Num(w.latency.mean()));
                        lat.insert("p50_secs".into(), Json::Num(w.latency.quantile(0.5)));
                        lat.insert("p95_secs".into(), Json::Num(w.latency.quantile(0.95)));
                        lat.insert("max_secs".into(), Json::Num(w.latency.max()));
                        Json::Obj(lat)
                    },
                );
                obj.insert(
                    "drift".into(),
                    match &w.drift {
                        None => Json::Null,
                        Some(d) => {
                            let mut drift = BTreeMap::new();
                            drift.insert("at_answer".into(), num(d.at_answer as u64));
                            drift.insert("baseline".into(), Json::Num(d.baseline));
                            drift.insert("recent".into(), Json::Num(d.recent));
                            drift.insert("cusum".into(), Json::Num(d.cusum));
                            Json::Obj(drift)
                        }
                    },
                );
                Json::Obj(obj)
            })
            .collect();
        let mut root = BTreeMap::new();
        root.insert("workers".into(), Json::Arr(workers));
        root.insert("consensus_ties".into(), num(self.consensus_ties));
        root.insert("drifting".into(), num(self.drifting().count() as u64));
        Json::Obj(root)
    }
}

/// Runs the one-sided downward CUSUM over one worker's agreement bits.
fn detect_drift(worker: u32, bits: &[u8], config: &CrowdConfig) -> Option<WorkerDriftSuspected> {
    let window = config.drift_window.max(1);
    if bits.len() < window.max(config.drift_min_answers) {
        return None;
    }
    let mean = |slice: &[u8]| {
        slice.iter().map(|&b| f64::from(b)).sum::<f64>() / slice.len().max(1) as f64
    };
    let baseline = mean(&bits[..window]);
    let mut cusum = 0.0f64;
    for (i, &bit) in bits.iter().enumerate().skip(window) {
        cusum = (cusum + (baseline - f64::from(bit) - config.drift_slack)).max(0.0);
        if cusum > config.drift_threshold && i + 1 >= config.drift_min_answers {
            return Some(WorkerDriftSuspected {
                worker,
                at_answer: i,
                baseline,
                recent: mean(&bits[i + 1 - window..=i]),
                cusum,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FaultKind, StopReason, TelemetryEvent as E};

    #[test]
    fn wilson_interval_brackets_the_point_estimate() {
        let (low, high) = wilson_interval(90, 100, 1.96);
        assert!(low < 0.9 && 0.9 < high, "[{low}, {high}]");
        assert!(low > 0.8 && high < 0.96, "[{low}, {high}]");
        // Tighter with more data.
        let wide = wilson_half_width(9, 10, 1.96);
        let narrow = wilson_half_width(900, 1000, 1.96);
        assert!(narrow < wide, "{narrow} vs {wide}");
        // Extremes stay inside [0, 1].
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
        let (l0, _) = wilson_interval(0, 20, 1.96);
        let (_, h1) = wilson_interval(20, 20, 1.96);
        assert_eq!(l0, 0.0);
        assert_eq!(h1, 1.0);
        // `correct > total` is clamped, not a panic or a >1 estimate.
        let (_, high) = wilson_interval(30, 20, 1.96);
        assert!(high <= 1.0);
    }

    /// A two-worker round-robin trace: worker 0's answers flip to the
    /// minority side from `flip_at` (its own comparable-answer index).
    fn trace(rounds: usize, flip_at: usize) -> Vec<E> {
        let mut events = vec![E::RunStarted {
            tasks: rounds,
            facts: rounds,
            panel: 3,
            budget: 1000,
            k: 1,
            entropy: 1.0,
            quality: -1.0,
            belief_repr: Default::default(),
        }];
        let mut qid = 0u64;
        for round in 1..=rounds {
            let task = round - 1;
            events.push(E::RoundSelected {
                round,
                k_requested: 1,
                k_effective: 1,
                queries: vec![(task, 0)],
                entropy_before: 1.0,
                predicted_entropy: 0.9,
            });
            for worker in 0..3u32 {
                qid += 1;
                // Workers 1 and 2 always vote true, fixing consensus;
                // worker 0 defects after its flip point.
                let answer = worker != 0 || task < flip_at;
                events.push(E::QueryDispatched {
                    round,
                    task,
                    fact: 0,
                    worker,
                    query_id: qid,
                });
                events.push(E::AnswerDelivered {
                    round,
                    task,
                    fact: 0,
                    worker,
                    query_id: qid,
                    answer,
                });
            }
            events.push(E::BeliefUpdated {
                round,
                entropy: 0.9,
                quality: -0.9,
                budget_spent: 3 * round as u64,
                answers_requested: 3,
                answers_received: 3,
            });
        }
        events.push(E::RunFinished {
            rounds,
            budget_spent: 3 * rounds as u64,
            entropy: 0.9,
            quality: -0.9,
            reason: StopReason::BudgetExhausted,
        });
        events
    }

    #[test]
    fn ledger_counts_match_the_stream() {
        let events = trace(6, 100);
        let ledger = CrowdLedger::from_events(&events);
        assert_eq!(ledger.workers.len(), 3);
        for w in ledger.workers.values() {
            assert_eq!(w.dispatched, 6);
            assert_eq!(w.delivered, 6);
            assert_eq!(w.comparable, 6);
            assert_eq!(w.agreements, 6, "unanimous crowd: every leave-one-out vote agrees");
            assert_eq!(w.agreement(), 1.0);
            assert_eq!(w.timed_out + w.dropped + w.retries + w.faults, 0);
        }
        assert_eq!(ledger.consensus_ties, 0);
    }

    #[test]
    fn dissent_lowers_agreement_but_not_the_majority() {
        // Worker 0 defects from the start. Its leave-one-out view is
        // the two loyal voters (2-vs-0 true): every answer disagrees.
        let ledger = CrowdLedger::from_events(&trace(8, 0));
        let w0 = &ledger.workers[&0];
        assert_eq!(w0.agreements, 0);
        assert_eq!(w0.comparable, 8);
        assert_eq!(w0.agreement(), 0.0);
        let (low, high) = w0.wilson(1.96);
        assert_eq!(low, 0.0);
        assert!(high > 0.0 && high < 0.5, "small-n upper bound {high}");
        // A loyal worker's leave-one-out view is split 1-vs-1 — a tie,
        // so its answers are excluded rather than scored.
        assert_eq!(ledger.workers[&1].comparable, 0);
        assert!(ledger.workers[&1].agreement().is_nan());
        assert_eq!(ledger.consensus_ties, 16);
    }

    #[test]
    fn lone_voters_and_split_remainders_are_ties() {
        // Fact (0,0): a single voter — no one to compare against.
        // Fact (0,1): three voters, 2-vs-1; the two majority voters
        // each see a 1-1 split without themselves, the minority voter
        // sees 2-0 against it.
        let events = vec![
            E::AnswerDelivered { round: 1, task: 0, fact: 0, worker: 0, query_id: 1, answer: true },
            E::AnswerDelivered { round: 1, task: 0, fact: 1, worker: 0, query_id: 2, answer: true },
            E::AnswerDelivered { round: 1, task: 0, fact: 1, worker: 1, query_id: 3, answer: true },
            E::AnswerDelivered { round: 1, task: 0, fact: 1, worker: 2, query_id: 4, answer: false },
        ];
        let ledger = CrowdLedger::from_events(&events);
        assert_eq!(ledger.consensus_ties, 3, "lone voter + two split-remainder voters");
        assert_eq!(ledger.workers[&0].comparable, 0);
        assert_eq!(ledger.workers[&1].comparable, 0);
        let w2 = &ledger.workers[&2];
        assert_eq!((w2.comparable, w2.agreements), (1, 0));
    }

    #[test]
    fn mid_run_defection_trips_the_detector() {
        // 30 answers, defection from answer 12: baseline window is
        // clean, then every answer disagrees.
        let ledger = CrowdLedger::from_events(&trace(30, 12));
        let drift = ledger.workers[&0].drift.as_ref().expect("drift alarm");
        assert_eq!(drift.worker, 0);
        assert_eq!(drift.baseline, 1.0);
        assert!(drift.recent < 0.8, "recent {}", drift.recent);
        // Alarm within a few answers of the change point.
        assert!(
            (12..18).contains(&drift.at_answer),
            "at_answer {}",
            drift.at_answer
        );
        assert!(drift.cusum > ledger.config.drift_threshold);
        // The loyal workers stay clean.
        assert!(ledger.workers[&1].drift.is_none());
        assert!(ledger.workers[&2].drift.is_none());
        assert_eq!(ledger.drifting().count(), 1);
    }

    #[test]
    fn steady_workers_never_alarm() {
        for flip in [100, 0] {
            // flip=100: always agrees. flip=0: always disagrees — bad,
            // but *stationary*, so no drift alarm (the audit's
            // starvation/agreement checks cover static badness).
            let ledger = CrowdLedger::from_events(&trace(40, flip));
            assert!(
                ledger.workers[&0].drift.is_none(),
                "flip={flip} must not alarm"
            );
        }
    }

    #[test]
    fn short_streams_never_alarm() {
        // Fewer comparable answers than drift_min_answers: detector off.
        let ledger = CrowdLedger::from_events(&trace(8, 4));
        assert!(ledger.workers[&0].drift.is_none());
    }

    #[test]
    fn retries_faults_and_failures_attribute_to_workers() {
        let events = vec![
            E::QueryDispatched { round: 1, task: 0, fact: 0, worker: 7, query_id: 1 },
            E::FaultInjected { task: 0, fact: 0, worker: 7, kind: FaultKind::Timeout, query_id: 1 },
            E::RetryScheduled { task: 0, fact: 0, worker: 7, attempt: 1, backoff_secs: 30.0, query_id: 1 },
            E::AnswerTimedOut { round: 1, task: 0, fact: 0, worker: 7, query_id: 1 },
            E::QueryDispatched { round: 1, task: 0, fact: 1, worker: 9, query_id: 2 },
            E::AnswerDropped { round: 1, task: 0, fact: 1, worker: 9, query_id: 2 },
        ];
        let ledger = CrowdLedger::from_events(&events);
        let w7 = &ledger.workers[&7];
        assert_eq!((w7.dispatched, w7.timed_out, w7.retries, w7.faults), (1, 1, 1, 1));
        let w9 = &ledger.workers[&9];
        assert_eq!((w9.dispatched, w9.dropped), (1, 1));
        assert_eq!(w9.delivered, 0);
    }

    #[test]
    fn latency_events_feed_per_worker_histograms() {
        let events = vec![
            E::AnswerLatency { task: 0, fact: 0, worker: 2, latency_secs: 10.0, query_id: 1 },
            E::AnswerLatency { task: 0, fact: 1, worker: 2, latency_secs: 30.0, query_id: 2 },
        ];
        let ledger = CrowdLedger::from_events(&events);
        let lat = &ledger.workers[&2].latency;
        assert_eq!(lat.count(), 2);
        assert!((lat.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn declared_accuracies_attach_and_create_rows() {
        let ledger = CrowdLedger::from_events(&trace(4, 100))
            .with_declared([(0, 0.95), (99, 0.9)]);
        assert_eq!(ledger.workers[&0].declared_accuracy, Some(0.95));
        // Hired but never asked: present with an empty row.
        let idle = &ledger.workers[&99];
        assert_eq!(idle.declared_accuracy, Some(0.9));
        assert_eq!(idle.dispatched, 0);
    }

    #[test]
    fn old_traces_without_worker_events_fold_to_an_empty_ledger() {
        // A PR-2-era trace slice: no Answer*/latency events at all.
        let events = vec![
            E::RunStarted { tasks: 1, facts: 1, panel: 1, budget: 1, k: 1, entropy: 1.0, quality: -1.0, belief_repr: Default::default() },
            E::RunFinished { rounds: 0, budget_spent: 0, entropy: 1.0, quality: -1.0, reason: StopReason::MaxRounds },
        ];
        let ledger = CrowdLedger::from_events(&events);
        assert!(ledger.workers.is_empty());
        assert!(ledger.render().contains("no worker-attributed events"));
    }

    #[test]
    fn render_and_json_are_deterministic_and_complete() {
        let ledger = CrowdLedger::from_events(&trace(30, 12)).with_declared([(0, 0.95)]);
        let text = ledger.render();
        assert!(text.contains("SUSPECTED"), "{text}");
        assert!(text.contains("0.95"), "declared accuracy rendered: {text}");
        let json = ledger.to_json().to_string();
        assert_eq!(json, ledger.to_json().to_string(), "stable bytes");
        let parsed = crate::json::parse(&json).expect("valid json");
        assert_eq!(
            parsed.get("drifting").and_then(Json::as_u64),
            Some(1),
            "{json}"
        );
        let workers = parsed.get("workers").and_then(Json::as_arr).expect("arr");
        assert_eq!(workers.len(), 3);
        assert!(workers[0].get("drift").is_some_and(|d| *d != Json::Null));
        assert_eq!(
            workers[0].get("declared_accuracy").and_then(Json::as_f64),
            Some(0.95)
        );
    }
}
