//! Audit: invariant checks and anomaly detection over an event stream.
//!
//! [`audit`] walks a recorded stream and verifies the documented
//! event-stream grammar (see [`crate::event`]): the run is framed by
//! `RunStarted`/`RunFinished`, rounds are consecutive, every dispatch
//! is closed exactly once by a delivery/timeout/drop event with the
//! same `(round, task, fact, worker, query_id)` key *before* the next
//! dispatch opens, entropy/quality fields are finite, and spend moves
//! only when answers arrive. Violations are [`Severity::Error`]
//! findings.
//!
//! On top of the hard contract it flags operational anomalies as
//! [`Severity::Warning`]s: entropy stalls (rounds that deliver answers
//! but move the belief by nothing), retry storms, starved workers,
//! runs whose crowd barely delivers, rounds whose Bayes updates were
//! numerically near collapse (vanishing pre-normalisation mass or a
//! log-domain rescue), and crowd-health anomalies from the
//! [`crate::crowd`] ledger — a worker whose agreement stream drifts
//! below its own baseline (`worker_drift_suspected`) or one that
//! agrees with the consensus suspiciously often
//! (`too_perfect_worker`). A clean reliable-crowd run yields zero
//! findings of either severity.

use crate::event::TelemetryEvent;
use std::collections::BTreeMap;
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// An operational anomaly worth a look; the log is still valid.
    Warning,
    /// A violation of the event-stream contract.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One audit finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Error (contract violation) or warning (anomaly).
    pub severity: Severity,
    /// Stable machine-readable code, e.g. `unclosed_dispatch`.
    pub code: &'static str,
    /// The round the finding points at, when attributable to one.
    pub round: Option<usize>,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.severity, self.code)?;
        if let Some(round) = self.round {
            write!(f, " (round {round})")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Thresholds for the anomaly (warning) checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditConfig {
    /// Consecutive answer-delivering rounds with an entropy move below
    /// [`Self::stall_epsilon`] before an `entropy_stall` fires.
    pub stall_rounds: usize,
    /// Absolute entropy move (nats) under which a round counts as
    /// stalled.
    pub stall_epsilon: f64,
    /// `retry_storm` fires when retries exceed this multiple of
    /// dispatches (and at least [`Self::retry_storm_min`] retries).
    pub retry_storm_ratio: f64,
    /// Minimum retries before a `retry_storm` can fire.
    pub retry_storm_min: usize,
    /// A worker with at least this many dispatches and zero deliveries
    /// is `starved_worker` (when other workers did deliver).
    pub starvation_min_dispatches: usize,
    /// `delivery_deficit` fires when the overall delivered/dispatched
    /// ratio drops below this (with at least
    /// [`Self::starvation_min_dispatches`] dispatches).
    pub min_delivery_ratio: f64,
    /// `near_collapse` fires when a round's pre-normalisation mass
    /// (`numerical_health.renorm_scale`) drops below this, or when the
    /// update engine reports a log-domain rescue. The default sits well
    /// above the subnormal range but far below any healthy likelihood.
    pub near_collapse_scale: f64,
    /// Crowd-ledger fold and drift-detector knobs behind the
    /// `worker_drift_suspected` warning (see [`crate::crowd`]).
    pub crowd: crate::crowd::CrowdConfig,
    /// Minimum comparable answers before `too_perfect_worker` can
    /// fire. Perfect agreement over a short run is unremarkable (a
    /// 0.95-accuracy worker clears 24 answers ~29% of the time); the
    /// default demands a streak a merely-good worker essentially never
    /// produces.
    pub perfect_min_answers: u64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            stall_rounds: 3,
            stall_epsilon: 1e-9,
            retry_storm_ratio: 1.0,
            retry_storm_min: 8,
            starvation_min_dispatches: 4,
            min_delivery_ratio: 0.75,
            near_collapse_scale: 1e-250,
            crowd: crate::crowd::CrowdConfig::default(),
            perfect_min_answers: 40,
        }
    }
}

/// The outcome of auditing one stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// All findings, in stream order (errors and warnings interleaved).
    pub findings: Vec<Finding>,
    /// Events examined.
    pub events: usize,
}

impl AuditReport {
    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of [`Severity::Error`] findings.
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Number of [`Severity::Warning`] findings.
    pub fn warning_count(&self) -> usize {
        self.findings.len() - self.error_count()
    }

    /// Renders the report as console text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.is_clean() {
            let _ = writeln!(out, "audit: clean ({} events checked)", self.events);
            return out;
        }
        let _ = writeln!(
            out,
            "audit: {} error(s), {} warning(s) over {} events",
            self.error_count(),
            self.warning_count(),
            self.events
        );
        for finding in &self.findings {
            let _ = writeln!(out, "  {finding}");
        }
        out
    }
}

/// Per-worker tallies for the starvation check.
#[derive(Debug, Clone, Copy, Default)]
struct WorkerTally {
    dispatched: usize,
    delivered: usize,
}

/// Audits `events` with the default thresholds.
pub fn audit(events: &[TelemetryEvent]) -> AuditReport {
    audit_with(events, &AuditConfig::default())
}

/// Audits a raw JSONL trace with the default thresholds — like
/// [`audit`] over the parsed events, plus text-level findings only the
/// raw bytes can reveal: a trailing line torn by a crash mid-write is a
/// distinct [`Severity::Warning`] `torn_tail` finding (recovery
/// tolerates it), separate from generic malformed-line skips (which
/// stay non-findings, as replay already reports them).
pub fn audit_jsonl(text: &str) -> AuditReport {
    audit_jsonl_with(text, &AuditConfig::default())
}

/// [`audit_jsonl`] with explicit anomaly thresholds.
pub fn audit_jsonl_with(text: &str, config: &AuditConfig) -> AuditReport {
    let (events, skipped) = crate::replay::parse_jsonl(text);
    let mut report = audit_with(&events, config);
    for skip in skipped.iter().filter(|s| s.torn) {
        report.findings.push(Finding {
            severity: Severity::Warning,
            code: "torn_tail",
            round: None,
            message: format!(
                "line {} was torn mid-write (crash signature); recovery drops it: {}",
                skip.line, skip.error
            ),
        });
    }
    report
}

/// Audits `events` with explicit anomaly thresholds.
pub fn audit_with(events: &[TelemetryEvent], config: &AuditConfig) -> AuditReport {
    let mut findings: Vec<Finding> = Vec::new();
    let err = |code: &'static str, round: Option<usize>, message: String| Finding {
        severity: Severity::Error,
        code,
        round,
        message,
    };

    // ── Stream frame ───────────────────────────────────────────────
    if events.is_empty() {
        return AuditReport {
            findings: vec![err("empty_log", None, "the stream has no events".into())],
            events: 0,
        };
    }
    // A corpus trace announces itself up front; its per-group
    // sub-streams are each audited with the single-run grammar below
    // after the envelope demux.
    if matches!(events.first(), Some(TelemetryEvent::CorpusStarted { .. })) {
        return corpus_audit_with(events, config);
    }
    if !matches!(events.first(), Some(TelemetryEvent::RunStarted { .. })) {
        findings.push(err(
            "missing_run_started",
            None,
            "stream does not begin with run_started".into(),
        ));
    }
    if !matches!(events.last(), Some(TelemetryEvent::RunFinished { .. })) {
        findings.push(err(
            "truncated_log",
            None,
            "stream does not end with run_finished".into(),
        ));
    }

    // ── Walk ───────────────────────────────────────────────────────
    let mut open: Option<(usize, usize, u32, u32, u64)> = None;
    let mut current_round: Option<usize> = None;
    let mut budget: Option<u64> = None;
    let mut last_spent: u64 = 0;
    let mut last_entropy: Option<f64> = None;
    let mut stall_streak = 0usize;
    let mut stall_reported = false;
    let mut rounds_selected = 0usize;
    let mut rounds_updated = 0usize;
    let mut total_dispatched = 0usize;
    let mut total_delivered = 0usize;
    let mut total_retries = 0usize;
    let mut workers: BTreeMap<u32, WorkerTally> = BTreeMap::new();
    // Dispatch/closure tallies for the current round, reset per round.
    let mut round_delivered = 0usize;

    let check_finite = |findings: &mut Vec<Finding>,
                            what: &'static str,
                            value: f64,
                            round: Option<usize>| {
        if !value.is_finite() {
            findings.push(Finding {
                severity: Severity::Error,
                code: "nonfinite_value",
                round,
                message: format!("{what} is {value}"),
            });
        }
    };

    for event in events {
        match event {
            TelemetryEvent::RunStarted {
                budget: b,
                entropy,
                quality,
                ..
            } => {
                budget = Some(*b);
                check_finite(&mut findings, "run_started.entropy", *entropy, None);
                check_finite(&mut findings, "run_started.quality", *quality, None);
            }
            TelemetryEvent::RoundSelected {
                round,
                entropy_before,
                predicted_entropy,
                ..
            } => {
                rounds_selected += 1;
                let expected = current_round.unwrap_or(0) + 1;
                if *round != expected {
                    findings.push(err(
                        "round_order",
                        Some(*round),
                        format!("round_selected {round} after round {}", expected - 1),
                    ));
                }
                current_round = Some(*round);
                round_delivered = 0;
                check_finite(
                    &mut findings,
                    "round_selected.entropy_before",
                    *entropy_before,
                    Some(*round),
                );
                check_finite(
                    &mut findings,
                    "round_selected.predicted_entropy",
                    *predicted_entropy,
                    Some(*round),
                );
            }
            TelemetryEvent::CandidateScored { round, gain, .. } => {
                if !gain.is_finite() {
                    findings.push(Finding {
                        severity: Severity::Warning,
                        code: "nonfinite_gain",
                        round: Some(*round),
                        message: format!("candidate_scored gain is {gain}"),
                    });
                }
            }
            TelemetryEvent::QuerySelected { .. } => {
                // NaN gains are legitimate here: selectors without
                // per-step gain accounting report NaN by contract.
            }
            TelemetryEvent::QueryDispatched {
                round,
                task,
                fact,
                worker,
                query_id,
            } => {
                if let Some(open_key) = open {
                    findings.push(err(
                        "unclosed_dispatch",
                        Some(open_key.0),
                        format!(
                            "dispatch (task {}, fact {}, worker {}, query {}) still open when the next one starts",
                            open_key.1, open_key.2, open_key.3, open_key.4
                        ),
                    ));
                }
                if Some(*round) != current_round {
                    findings.push(err(
                        "round_mismatch",
                        Some(*round),
                        format!(
                            "dispatch tagged round {round} inside round {:?}",
                            current_round
                        ),
                    ));
                }
                open = Some((*round, *task, *fact, *worker, *query_id));
                total_dispatched += 1;
                workers.entry(*worker).or_default().dispatched += 1;
            }
            TelemetryEvent::AnswerDelivered {
                round,
                task,
                fact,
                worker,
                query_id,
                ..
            }
            | TelemetryEvent::AnswerTimedOut {
                round,
                task,
                fact,
                worker,
                query_id,
            }
            | TelemetryEvent::AnswerDropped {
                round,
                task,
                fact,
                worker,
                query_id,
            } => {
                let key = (*round, *task, *fact, *worker, *query_id);
                match open.take() {
                    Some(open_key) if open_key == key => {}
                    Some(open_key) => {
                        findings.push(err(
                            "closure_mismatch",
                            Some(*round),
                            format!(
                                "{} closes (task {}, fact {}, worker {}, query {}) but (task {}, fact {}, worker {}, query {}) is open",
                                event.kind(), key.1, key.2, key.3, key.4,
                                open_key.1, open_key.2, open_key.3, open_key.4
                            ),
                        ));
                    }
                    None => {
                        findings.push(err(
                            "orphan_outcome",
                            Some(*round),
                            format!(
                                "{} for (task {}, fact {}, worker {}, query {}) without an open dispatch",
                                event.kind(), key.1, key.2, key.3, key.4
                            ),
                        ));
                    }
                }
                if matches!(event, TelemetryEvent::AnswerDelivered { .. }) {
                    total_delivered += 1;
                    round_delivered += 1;
                    workers.entry(*worker).or_default().delivered += 1;
                }
            }
            TelemetryEvent::AnswerLatency { latency_secs, .. } => {
                // Metering metadata: exempt from the dispatch-closure
                // grammar (like RetryScheduled), but its value must be
                // a real duration.
                check_finite(
                    &mut findings,
                    "answer_latency.latency_secs",
                    *latency_secs,
                    None,
                );
            }
            TelemetryEvent::RetryScheduled { .. } => {
                total_retries += 1;
            }
            TelemetryEvent::FaultInjected { .. } => {}
            TelemetryEvent::BeliefUpdated {
                round,
                entropy,
                quality,
                budget_spent,
                answers_requested,
                answers_received,
            } => {
                rounds_updated += 1;
                if Some(*round) != current_round {
                    findings.push(err(
                        "round_mismatch",
                        Some(*round),
                        format!(
                            "belief_updated tagged round {round} inside round {:?}",
                            current_round
                        ),
                    ));
                }
                check_finite(&mut findings, "belief_updated.entropy", *entropy, Some(*round));
                check_finite(&mut findings, "belief_updated.quality", *quality, Some(*round));
                if answers_received > answers_requested {
                    findings.push(err(
                        "over_delivery",
                        Some(*round),
                        format!("{answers_received} answers received of {answers_requested} requested"),
                    ));
                }
                if *answers_received != round_delivered {
                    findings.push(err(
                        "delivery_count_mismatch",
                        Some(*round),
                        format!(
                            "update accounts {answers_received} answers but the round streamed {round_delivered} deliveries"
                        ),
                    ));
                }
                // Spend: monotone, capped by the budget, and moving
                // only when answers arrived (delivery-only charging).
                if *budget_spent < last_spent {
                    findings.push(err(
                        "spend_decreased",
                        Some(*round),
                        format!("cumulative spend fell from {last_spent} to {budget_spent}"),
                    ));
                }
                let delta = budget_spent.saturating_sub(last_spent);
                if delta > 0 && *answers_received == 0 {
                    findings.push(err(
                        "spend_without_answers",
                        Some(*round),
                        format!("spend grew by {delta} in a round with zero delivered answers"),
                    ));
                }
                if let Some(b) = budget {
                    if *budget_spent > b {
                        findings.push(err(
                            "budget_exceeded",
                            Some(*round),
                            format!("spent {budget_spent} of a {b} budget"),
                        ));
                    }
                }
                last_spent = *budget_spent;
                // Entropy stall: rounds that deliver answers but leave
                // the belief unmoved, in a row.
                if *answers_received > 0 {
                    let moved = match last_entropy {
                        Some(prev) => (entropy - prev).abs() > config.stall_epsilon,
                        None => true,
                    };
                    if moved {
                        stall_streak = 0;
                    } else {
                        stall_streak += 1;
                        if stall_streak >= config.stall_rounds && !stall_reported {
                            stall_reported = true;
                            findings.push(Finding {
                                severity: Severity::Warning,
                                code: "entropy_stall",
                                round: Some(*round),
                                message: format!(
                                    "{stall_streak} consecutive delivering rounds moved entropy by < {:e} nats",
                                    config.stall_epsilon
                                ),
                            });
                        }
                    }
                }
                last_entropy = Some(*entropy);
            }
            TelemetryEvent::NumericalHealth {
                round,
                min_mass,
                renorm_scale,
                log_evidence,
                clamp_count,
                rescued,
            } => {
                check_finite(
                    &mut findings,
                    "numerical_health.min_mass",
                    *min_mass,
                    Some(*round),
                );
                check_finite(
                    &mut findings,
                    "numerical_health.renorm_scale",
                    *renorm_scale,
                    Some(*round),
                );
                check_finite(
                    &mut findings,
                    "numerical_health.log_evidence",
                    *log_evidence,
                    Some(*round),
                );
                // Near-collapse: the update either already needed the
                // log-domain rescue, or its linear mass is within a few
                // orders of magnitude of underflowing.
                if *rescued || (renorm_scale.is_finite() && *renorm_scale < config.near_collapse_scale)
                {
                    let how = if *rescued {
                        format!("log-domain rescue ({clamp_count} cells clamped)")
                    } else {
                        format!("pre-normalisation mass {renorm_scale:e}")
                    };
                    findings.push(Finding {
                        severity: Severity::Warning,
                        code: "near_collapse",
                        round: Some(*round),
                        message: format!(
                            "belief update ran near numerical collapse: {how}, log evidence {log_evidence:.3}"
                        ),
                    });
                }
            }
            TelemetryEvent::ProfileReport { .. } => {
                // Wall-clock profiling metadata; carries no replayable
                // state and is exempt from the stream grammar.
            }
            TelemetryEvent::RunFinished {
                rounds,
                budget_spent,
                entropy,
                quality,
                ..
            } => {
                check_finite(&mut findings, "run_finished.entropy", *entropy, None);
                check_finite(&mut findings, "run_finished.quality", *quality, None);
                if *rounds != rounds_updated {
                    findings.push(err(
                        "final_round_count_mismatch",
                        None,
                        format!("run_finished says {rounds} rounds, the stream updated {rounds_updated}"),
                    ));
                }
                if *budget_spent != last_spent {
                    findings.push(err(
                        "final_spend_mismatch",
                        None,
                        format!(
                            "run_finished says {budget_spent} spent, the last update said {last_spent}"
                        ),
                    ));
                }
            }
            TelemetryEvent::CorpusStarted { .. }
            | TelemetryEvent::GroupScheduled { .. }
            | TelemetryEvent::GroupAdvanced { .. }
            | TelemetryEvent::GroupFinished { .. }
            | TelemetryEvent::CorpusFinished { .. } => {
                // The corpus path is taken when the stream *starts* with
                // corpus_started; an envelope event anywhere else means
                // two stream kinds were mixed into one file.
                findings.push(err(
                    "corpus_event_in_run",
                    None,
                    format!("{} inside a single-run stream", event.kind()),
                ));
            }
        }
    }
    if let Some(open_key) = open {
        findings.push(err(
            "unclosed_dispatch",
            Some(open_key.0),
            format!(
                "stream ended with dispatch (task {}, fact {}, worker {}, query {}) open",
                open_key.1, open_key.2, open_key.3, open_key.4
            ),
        ));
    }
    if rounds_selected != rounds_updated {
        findings.push(err(
            "round_without_update",
            None,
            format!("{rounds_selected} rounds selected but {rounds_updated} updated"),
        ));
    }

    // ── Anomalies over stream totals ───────────────────────────────
    if total_retries >= config.retry_storm_min
        && total_dispatched > 0
        && total_retries as f64 > config.retry_storm_ratio * total_dispatched as f64
    {
        findings.push(Finding {
            severity: Severity::Warning,
            code: "retry_storm",
            round: None,
            message: format!(
                "{total_retries} retries against {total_dispatched} dispatches (> {:.1}x)",
                config.retry_storm_ratio
            ),
        });
    }
    if total_delivered > 0 {
        for (worker, tally) in &workers {
            if tally.dispatched >= config.starvation_min_dispatches && tally.delivered == 0 {
                findings.push(Finding {
                    severity: Severity::Warning,
                    code: "starved_worker",
                    round: None,
                    message: format!(
                        "worker {worker} was dispatched {} queries and delivered none while the crowd delivered {total_delivered}",
                        tally.dispatched
                    ),
                });
            }
        }
    }
    if total_dispatched >= config.starvation_min_dispatches {
        let ratio = total_delivered as f64 / total_dispatched as f64;
        if ratio < config.min_delivery_ratio {
            findings.push(Finding {
                severity: Severity::Warning,
                code: "delivery_deficit",
                round: None,
                message: format!(
                    "only {total_delivered} of {total_dispatched} dispatches delivered ({:.0}% < {:.0}%)",
                    ratio * 100.0,
                    config.min_delivery_ratio * 100.0
                ),
            });
        }
    }

    // ── Crowd health ───────────────────────────────────────────────
    let ledger = crate::crowd::CrowdLedger::from_events_with(events, &config.crowd);
    for drift in ledger.drifting() {
        findings.push(Finding {
            severity: Severity::Warning,
            code: "worker_drift_suspected",
            round: None,
            message: format!(
                "worker {} agreement drifted below its own baseline: {:.2} -> {:.2} (cusum {:.2} at answer {})",
                drift.worker, drift.baseline, drift.recent, drift.cusum, drift.at_answer
            ),
        });
    }
    for w in ledger.workers.values() {
        if w.comparable >= config.perfect_min_answers && w.agreements == w.comparable {
            findings.push(Finding {
                severity: Severity::Warning,
                code: "too_perfect_worker",
                round: None,
                message: format!(
                    "worker {} agreed with the consensus on all {} comparable answers — statistically suspicious (copying the majority?)",
                    w.worker, w.comparable
                ),
            });
        }
    }

    AuditReport {
        findings,
        events: events.len(),
    }
}

/// Audits a corpus trace (`hc-core::corpus`): validates the envelope
/// grammar — segments open with `group_scheduled` and close with a
/// matching `group_advanced`/`group_finished`, scheduler steps are
/// consecutive, every group terminates exactly once, and the
/// `corpus_finished` totals reconcile with the per-group accounting —
/// then demuxes each group's concatenated segments into its own
/// single-run stream and audits it with the full single-run grammar,
/// prefixing any findings with the group index.
fn corpus_audit_with(events: &[TelemetryEvent], config: &AuditConfig) -> AuditReport {
    let mut findings: Vec<Finding> = Vec::new();
    let err = |code: &'static str, message: String| Finding {
        severity: Severity::Error,
        code,
        round: None,
        message,
    };

    let (declared_groups, declared_budget, pooled) = match events.first() {
        Some(TelemetryEvent::CorpusStarted { groups, budget, pooled, .. }) => {
            (*groups, *budget, *pooled)
        }
        _ => unreachable!("caller checked the first event"),
    };
    if !matches!(events.last(), Some(TelemetryEvent::CorpusFinished { .. })) {
        findings.push(err(
            "truncated_log",
            "corpus stream does not end with corpus_finished".into(),
        ));
    }

    let mut substreams: Vec<Vec<TelemetryEvent>> = vec![Vec::new(); declared_groups];
    let mut group_spent: Vec<Option<u64>> = vec![None; declared_groups];
    let mut group_deltas: Vec<u64> = vec![0; declared_groups];
    let mut open_segment: Option<(usize, u64)> = None;
    let mut next_step: u64 = 0;
    let mut closer_totals: Option<(u64, u64, usize)> = None;

    for (idx, event) in events.iter().enumerate() {
        match event {
            TelemetryEvent::CorpusStarted { .. } => {
                if idx != 0 {
                    findings.push(err(
                        "duplicate_corpus_started",
                        "corpus_started appears again mid-stream".into(),
                    ));
                }
            }
            TelemetryEvent::GroupScheduled { group, step, gain } => {
                if let Some((g, s)) = open_segment {
                    findings.push(err(
                        "overlapping_segment",
                        format!("group {group} scheduled while group {g}'s step-{s} segment is open"),
                    ));
                }
                if *group >= declared_groups {
                    findings.push(err(
                        "unknown_group",
                        format!("group {group} scheduled but the corpus declared {declared_groups}"),
                    ));
                }
                if *step != next_step {
                    findings.push(err(
                        "step_order",
                        format!("group {group} scheduled at step {step}, expected {next_step}"),
                    ));
                }
                if !gain.is_finite() {
                    findings.push(err(
                        "nonfinite_value",
                        format!("group_scheduled.gain is {gain}"),
                    ));
                }
                next_step = step + 1;
                open_segment = Some((*group, *step));
            }
            TelemetryEvent::GroupAdvanced {
                group,
                step,
                spent_delta,
                entropy,
                ..
            } => {
                match open_segment.take() {
                    Some((g, s)) if g == *group && s == *step => {}
                    other => findings.push(err(
                        "segment_mismatch",
                        format!(
                            "group_advanced (group {group}, step {step}) closes segment {other:?}"
                        ),
                    )),
                }
                if !entropy.is_finite() {
                    findings.push(err(
                        "nonfinite_value",
                        format!("group_advanced.entropy is {entropy}"),
                    ));
                }
                if let Some(d) = group_deltas.get_mut(*group) {
                    *d += spent_delta;
                }
            }
            TelemetryEvent::GroupFinished {
                group,
                step,
                spent,
                entropy,
                ..
            } => {
                match open_segment.take() {
                    Some((g, s)) if g == *group && s == *step => {}
                    other => findings.push(err(
                        "segment_mismatch",
                        format!(
                            "group_finished (group {group}, step {step}) closes segment {other:?}"
                        ),
                    )),
                }
                if !entropy.is_finite() {
                    findings.push(err(
                        "nonfinite_value",
                        format!("group_finished.entropy is {entropy}"),
                    ));
                }
                match group_spent.get_mut(*group) {
                    Some(slot @ None) => *slot = Some(*spent),
                    Some(Some(_)) => findings.push(err(
                        "duplicate_group_finished",
                        format!("group {group} finished twice"),
                    )),
                    None => {} // unknown_group already reported
                }
                if let Some(d) = group_deltas.get(*group) {
                    if spent < d {
                        findings.push(err(
                            "corpus_spend_mismatch",
                            format!(
                                "group {group} finished with spent {spent} below its {d} of streamed round deltas"
                            ),
                        ));
                    }
                }
            }
            TelemetryEvent::CorpusFinished {
                steps,
                spent,
                finished,
                entropy,
            } => {
                if idx + 1 != events.len() {
                    findings.push(err(
                        "corpus_event_in_run",
                        "corpus_finished appears before the end of the stream".into(),
                    ));
                }
                if !entropy.is_finite() {
                    findings.push(err(
                        "nonfinite_value",
                        format!("corpus_finished.entropy is {entropy}"),
                    ));
                }
                closer_totals = Some((*steps, *spent, *finished));
            }
            other => match open_segment {
                Some((g, _)) => {
                    if let Some(sub) = substreams.get_mut(g) {
                        sub.push(other.clone());
                    }
                }
                None => findings.push(err(
                    "event_outside_segment",
                    format!("{} outside any group segment", other.kind()),
                )),
            },
        }
    }
    if let Some((g, s)) = open_segment {
        findings.push(err(
            "unclosed_segment",
            format!("stream ended with group {g}'s step-{s} segment open"),
        ));
    }

    // ── Envelope accounting ────────────────────────────────────────
    if let Some((steps, spent, finished)) = closer_totals {
        if steps != next_step {
            findings.push(err(
                "corpus_accounting",
                format!("corpus_finished says {steps} steps, the stream scheduled {next_step}"),
            ));
        }
        let finished_seen = group_spent.iter().filter(|s| s.is_some()).count();
        if finished != finished_seen {
            findings.push(err(
                "corpus_accounting",
                format!(
                    "corpus_finished says {finished} groups finished, the stream finished {finished_seen}"
                ),
            ));
        }
        let spent_seen: u64 = group_spent.iter().flatten().sum();
        if spent != spent_seen {
            findings.push(err(
                "corpus_spend_mismatch",
                format!(
                    "corpus_finished says {spent} spent, the groups account for {spent_seen}"
                ),
            ));
        }
        if spent > declared_budget {
            findings.push(err(
                "budget_exceeded",
                format!(
                    "corpus spent {spent} of a {declared_budget} {} budget",
                    if pooled { "pooled" } else { "summed per-group" }
                ),
            ));
        }
        for (g, s) in group_spent.iter().enumerate() {
            if s.is_none() {
                findings.push(err(
                    "group_never_finished",
                    format!("group {g} never reached group_finished"),
                ));
            }
        }
    }

    // ── Per-group single-run audits ────────────────────────────────
    for (g, sub) in substreams.iter().enumerate() {
        if sub.is_empty() {
            continue;
        }
        let report = audit_with(sub, config);
        for f in report.findings {
            findings.push(Finding {
                severity: f.severity,
                code: f.code,
                round: f.round,
                message: format!("group {g}: {}", f.message),
            });
        }
    }

    AuditReport {
        findings,
        events: events.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{StopReason, TelemetryEvent as E};

    /// A minimal clean run: one round, two dispatches, both delivered.
    fn clean_run() -> Vec<E> {
        vec![
            E::RunStarted {
                tasks: 1,
                facts: 2,
                panel: 1,
                budget: 10,
                k: 2,
                entropy: 1.4,
                quality: -1.4,
                belief_repr: Default::default(),
            },
            E::RoundSelected {
                round: 1,
                k_requested: 2,
                k_effective: 2,
                queries: vec![(0, 0), (0, 1)],
                entropy_before: 1.4,
                predicted_entropy: 0.9,
            },
            E::QueryDispatched { round: 1, task: 0, fact: 0, worker: 0, query_id: 1 },
            E::AnswerDelivered { round: 1, task: 0, fact: 0, worker: 0, query_id: 1, answer: true },
            E::QueryDispatched { round: 1, task: 0, fact: 1, worker: 0, query_id: 2 },
            E::AnswerDelivered { round: 1, task: 0, fact: 1, worker: 0, query_id: 2, answer: false },
            E::BeliefUpdated {
                round: 1,
                entropy: 0.8,
                quality: -0.8,
                budget_spent: 2,
                answers_requested: 2,
                answers_received: 2,
            },
            E::RunFinished {
                rounds: 1,
                budget_spent: 2,
                entropy: 0.8,
                quality: -0.8,
                reason: StopReason::BudgetExhausted,
            },
        ]
    }

    #[test]
    fn clean_run_has_zero_findings() {
        let report = audit(&clean_run());
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.render().contains("clean"));
    }

    #[test]
    fn profile_report_is_exempt_from_the_grammar() {
        let mut events = clean_run();
        let end = events.pop().expect("run_finished");
        events.push(E::ProfileReport {
            spans: Vec::new(),
            phases: Vec::new(),
            counters: vec![("candidate_evals".to_string(), 4)],
        });
        events.push(end);
        let report = audit(&events);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn empty_log_is_flagged() {
        let report = audit(&[]);
        assert_eq!(report.findings[0].code, "empty_log");
    }

    #[test]
    fn truncated_log_is_flagged() {
        let mut events = clean_run();
        events.pop();
        let report = audit(&events);
        assert!(report.findings.iter().any(|f| f.code == "truncated_log"));
    }

    #[test]
    fn interleaved_dispatch_is_flagged() {
        let mut events = clean_run();
        // Swap a closure ahead of its dispatch: (d1, d2, a1, a2).
        events.swap(3, 4);
        let report = audit(&events);
        assert!(
            report.findings.iter().any(|f| f.code == "unclosed_dispatch"),
            "{}",
            report.render()
        );
        assert!(report.error_count() > 0);
    }

    #[test]
    fn mismatched_query_id_is_flagged() {
        let mut events = clean_run();
        events[3] = E::AnswerDelivered {
            round: 1,
            task: 0,
            fact: 0,
            worker: 0,
            query_id: 99,
            answer: true,
        };
        let report = audit(&events);
        assert!(
            report.findings.iter().any(|f| f.code == "closure_mismatch"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn orphan_outcome_is_flagged() {
        let mut events = clean_run();
        events.remove(2); // delivery without its dispatch
        let report = audit(&events);
        assert!(report.findings.iter().any(|f| f.code == "orphan_outcome"));
    }

    #[test]
    fn non_monotone_rounds_are_flagged() {
        let mut events = clean_run();
        if let E::RoundSelected { round, .. } = &mut events[1] {
            *round = 5;
        }
        let report = audit(&events);
        assert!(report.findings.iter().any(|f| f.code == "round_order"));
    }

    #[test]
    fn nonfinite_entropy_is_flagged() {
        let mut events = clean_run();
        if let E::BeliefUpdated { entropy, .. } = &mut events[6] {
            *entropy = f64::NAN;
        }
        let report = audit(&events);
        assert!(report.findings.iter().any(|f| f.code == "nonfinite_value"));
    }

    #[test]
    fn spend_without_answers_is_flagged() {
        let mut events = clean_run();
        if let E::BeliefUpdated {
            answers_received, ..
        } = &mut events[6]
        {
            *answers_received = 0;
        }
        let report = audit(&events);
        assert!(
            report.findings.iter().any(|f| f.code == "spend_without_answers"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn budget_overrun_and_final_mismatch_are_flagged() {
        let mut events = clean_run();
        if let E::BeliefUpdated { budget_spent, .. } = &mut events[6] {
            *budget_spent = 50; // budget is 10
        }
        let report = audit(&events);
        assert!(report.findings.iter().any(|f| f.code == "budget_exceeded"));
        assert!(report.findings.iter().any(|f| f.code == "final_spend_mismatch"));
    }

    #[test]
    fn entropy_stall_is_a_warning() {
        let mut events = vec![events_start()];
        for round in 1..=4 {
            events.extend(delivering_round(round, 1.0)); // entropy never moves
        }
        events.push(E::RunFinished {
            rounds: 4,
            budget_spent: 4,
            entropy: 1.0,
            quality: -1.0,
            reason: StopReason::MaxRounds,
        });
        let report = audit(&events);
        let stall = report
            .findings
            .iter()
            .find(|f| f.code == "entropy_stall")
            .expect("stall flagged");
        assert_eq!(stall.severity, Severity::Warning);
        assert_eq!(report.error_count(), 0, "{}", report.render());
    }

    #[test]
    fn starved_worker_and_deficit_are_warnings() {
        let mut events = vec![events_start()];
        // Worker 0 delivers, worker 1 never does, across one round of
        // eight dispatches.
        events.push(E::RoundSelected {
            round: 1,
            k_requested: 4,
            k_effective: 4,
            queries: vec![(0, 0), (0, 1)],
            entropy_before: 2.0,
            predicted_entropy: 1.5,
        });
        let mut qid = 0u64;
        for fact in 0..4u32 {
            for worker in 0..2u32 {
                qid += 1;
                events.push(E::QueryDispatched { round: 1, task: 0, fact, worker, query_id: qid });
                if worker == 0 {
                    events.push(E::AnswerDelivered { round: 1, task: 0, fact, worker, query_id: qid, answer: true });
                } else {
                    events.push(E::AnswerDropped { round: 1, task: 0, fact, worker, query_id: qid });
                }
            }
        }
        events.push(E::BeliefUpdated {
            round: 1,
            entropy: 1.4,
            quality: -1.4,
            budget_spent: 4,
            answers_requested: 8,
            answers_received: 4,
        });
        events.push(E::RunFinished {
            rounds: 1,
            budget_spent: 4,
            entropy: 1.4,
            quality: -1.4,
            reason: StopReason::BudgetExhausted,
        });
        let report = audit(&events);
        assert!(report.findings.iter().any(|f| f.code == "starved_worker"));
        assert!(report.findings.iter().any(|f| f.code == "delivery_deficit"));
        assert_eq!(report.error_count(), 0, "{}", report.render());
    }

    #[test]
    fn healthy_numerical_report_stays_clean() {
        let mut events = clean_run();
        // A comfortable update: mass near 1, no rescue, no clamps.
        events.insert(
            7,
            E::NumericalHealth {
                round: 1,
                min_mass: 0.01,
                renorm_scale: 0.45,
                log_evidence: -0.8,
                clamp_count: 0,
                rescued: false,
            },
        );
        let report = audit(&events);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn rescued_update_is_a_near_collapse_warning() {
        let mut events = clean_run();
        events.insert(
            7,
            E::NumericalHealth {
                round: 1,
                min_mass: 1e-12,
                renorm_scale: 0.3,
                log_evidence: -710.0,
                clamp_count: 2,
                rescued: true,
            },
        );
        let report = audit(&events);
        let finding = report
            .findings
            .iter()
            .find(|f| f.code == "near_collapse")
            .expect("near_collapse flagged");
        assert_eq!(finding.severity, Severity::Warning);
        assert_eq!(finding.round, Some(1));
        assert!(finding.message.contains("rescue"), "{}", finding.message);
        assert_eq!(report.error_count(), 0, "{}", report.render());
    }

    #[test]
    fn vanishing_renorm_scale_is_a_near_collapse_warning() {
        let mut events = clean_run();
        events.insert(
            7,
            E::NumericalHealth {
                round: 1,
                min_mass: 1e-280,
                renorm_scale: 1e-260,
                log_evidence: -598.6,
                clamp_count: 0,
                rescued: false,
            },
        );
        let report = audit(&events);
        assert!(
            report.findings.iter().any(|f| f.code == "near_collapse"),
            "{}",
            report.render()
        );
        assert_eq!(report.error_count(), 0, "{}", report.render());
    }

    #[test]
    fn nonfinite_health_fields_are_errors() {
        let mut events = clean_run();
        events.insert(
            7,
            E::NumericalHealth {
                round: 1,
                min_mass: f64::NAN,
                renorm_scale: 0.4,
                log_evidence: f64::NEG_INFINITY,
                clamp_count: 0,
                rescued: false,
            },
        );
        let report = audit(&events);
        let nonfinite: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.code == "nonfinite_value")
            .collect();
        assert_eq!(nonfinite.len(), 2, "{}", report.render());
    }

    #[test]
    fn retry_storm_is_a_warning() {
        let mut events = vec![events_start()];
        events.push(E::RoundSelected {
            round: 1,
            k_requested: 1,
            k_effective: 1,
            queries: vec![(0, 0)],
            entropy_before: 2.0,
            predicted_entropy: 1.5,
        });
        events.push(E::QueryDispatched { round: 1, task: 0, fact: 0, worker: 0, query_id: 1 });
        for attempt in 1..=10u32 {
            events.push(E::RetryScheduled {
                task: 0,
                fact: 0,
                worker: 0,
                attempt,
                backoff_secs: 30.0,
                query_id: 1,
            });
        }
        events.push(E::AnswerDelivered { round: 1, task: 0, fact: 0, worker: 0, query_id: 1, answer: true });
        events.push(E::BeliefUpdated {
            round: 1,
            entropy: 1.5,
            quality: -1.5,
            budget_spent: 1,
            answers_requested: 1,
            answers_received: 1,
        });
        events.push(E::RunFinished {
            rounds: 1,
            budget_spent: 1,
            entropy: 1.5,
            quality: -1.5,
            reason: StopReason::BudgetExhausted,
        });
        let report = audit(&events);
        let storm = report
            .findings
            .iter()
            .find(|f| f.code == "retry_storm")
            .expect("storm flagged");
        assert_eq!(storm.severity, Severity::Warning);
        assert_eq!(report.error_count(), 0, "{}", report.render());
    }

    #[test]
    fn torn_tail_is_a_distinct_warning() {
        let mut text = String::new();
        for event in clean_run() {
            text.push_str(&event.to_json_line());
            text.push('\n');
        }
        // The intact trace has no torn_tail.
        assert!(
            !audit_jsonl(&text).findings.iter().any(|f| f.code == "torn_tail"),
            "intact trace must not report torn_tail"
        );
        // Crash signature: trailing half-line, no newline.
        let extra = clean_run()[2].to_json_line();
        let torn = format!("{text}{}", &extra[..extra.len() / 2]);
        let report = audit_jsonl(&torn);
        let finding = report
            .findings
            .iter()
            .find(|f| f.code == "torn_tail")
            .expect("torn_tail reported");
        assert_eq!(finding.severity, Severity::Warning);
        assert_eq!(report.error_count(), 0, "{}", report.render());
        // Newline-terminated garbage is generic corruption, not a torn
        // tail — and not a finding at all (replay reports the skip).
        let garbage = format!("{text}not json at all\n");
        let report = audit_jsonl(&garbage);
        assert!(
            !report.findings.iter().any(|f| f.code == "torn_tail"),
            "{}",
            report.render()
        );
        assert_eq!(report.error_count(), 0, "{}", report.render());
    }

    /// A grammar-clean multi-voter trace: three workers answer every
    /// round's fact; worker 0 votes with the crowd until `flip_round`
    /// (1-based), against it afterwards. Entropy moves every round so
    /// no stall warning muddies the crowd-health assertions.
    fn voting_trace(rounds: usize, flip_round: usize) -> Vec<E> {
        let mut events = vec![E::RunStarted {
            tasks: rounds,
            facts: rounds,
            panel: 3,
            budget: 1000,
            k: 1,
            entropy: 2.0,
            quality: -2.0,
            belief_repr: Default::default(),
        }];
        let mut qid = 0u64;
        let mut entropy = 2.0;
        for round in 1..=rounds {
            let task = round - 1;
            let next_entropy = 2.0 - 0.01 * round as f64;
            events.push(E::RoundSelected {
                round,
                k_requested: 1,
                k_effective: 1,
                queries: vec![(task, 0)],
                entropy_before: entropy,
                predicted_entropy: next_entropy,
            });
            for worker in 0..3u32 {
                qid += 1;
                let answer = worker != 0 || round < flip_round;
                events.push(E::QueryDispatched { round, task, fact: 0, worker, query_id: qid });
                events.push(E::AnswerDelivered { round, task, fact: 0, worker, query_id: qid, answer });
            }
            entropy = next_entropy;
            events.push(E::BeliefUpdated {
                round,
                entropy,
                quality: -entropy,
                budget_spent: 3 * round as u64,
                answers_requested: 3,
                answers_received: 3,
            });
        }
        events.push(E::RunFinished {
            rounds,
            budget_spent: 3 * rounds as u64,
            entropy,
            quality: -entropy,
            reason: StopReason::BudgetExhausted,
        });
        events
    }

    #[test]
    fn drifting_worker_is_a_warning() {
        // Clean baseline for 12 rounds, defection afterwards.
        let report = audit(&voting_trace(30, 13));
        let drift = report
            .findings
            .iter()
            .find(|f| f.code == "worker_drift_suspected")
            .expect("drift flagged");
        assert_eq!(drift.severity, Severity::Warning);
        assert!(drift.message.contains("worker 0"), "{}", drift.message);
        assert_eq!(report.error_count(), 0, "{}", report.render());
        // Only the defector is flagged.
        assert_eq!(
            report.findings.iter().filter(|f| f.code == "worker_drift_suspected").count(),
            1
        );
    }

    #[test]
    fn steady_crowds_raise_no_drift_warning() {
        let report = audit(&voting_trace(30, 100));
        assert!(
            !report.findings.iter().any(|f| f.code == "worker_drift_suspected"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn suspiciously_perfect_worker_is_a_warning() {
        // 45 unanimous rounds: every worker clears perfect_min_answers
        // with 100% leave-one-out agreement.
        let report = audit(&voting_trace(45, 100));
        let perfect: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.code == "too_perfect_worker")
            .collect();
        assert_eq!(perfect.len(), 3, "{}", report.render());
        assert!(perfect.iter().all(|f| f.severity == Severity::Warning));
        assert_eq!(report.error_count(), 0, "{}", report.render());
        // Shorter perfect streaks are unremarkable.
        let short = audit(&voting_trace(30, 100));
        assert!(
            !short.findings.iter().any(|f| f.code == "too_perfect_worker"),
            "{}",
            short.render()
        );
    }

    #[test]
    fn nonfinite_answer_latency_is_an_error() {
        let mut events = clean_run();
        events.insert(
            3,
            E::AnswerLatency {
                task: 0,
                fact: 0,
                worker: 0,
                latency_secs: f64::NAN,
                query_id: 1,
            },
        );
        let report = audit(&events);
        assert!(
            report.findings.iter().any(|f| f.code == "nonfinite_value"),
            "{}",
            report.render()
        );
        // A finite latency between dispatch and delivery is exempt
        // from the closure grammar.
        let mut ok = clean_run();
        ok.insert(
            3,
            E::AnswerLatency {
                task: 0,
                fact: 0,
                worker: 0,
                latency_secs: 21.5,
                query_id: 1,
            },
        );
        assert!(audit(&ok).is_clean(), "{}", audit(&ok).render());
    }

    fn events_start() -> E {
        E::RunStarted {
            tasks: 1,
            facts: 4,
            panel: 2,
            budget: 100,
            k: 4,
            entropy: 2.0,
            quality: -2.0,
            belief_repr: Default::default(),
        }
    }

    /// One round that delivers an answer but realises `entropy`.
    fn delivering_round(round: usize, entropy: f64) -> Vec<E> {
        vec![
            E::RoundSelected {
                round,
                k_requested: 1,
                k_effective: 1,
                queries: vec![(0, 0)],
                entropy_before: entropy,
                predicted_entropy: entropy,
            },
            E::QueryDispatched { round, task: 0, fact: 0, worker: 0, query_id: round as u64 },
            E::AnswerDelivered { round, task: 0, fact: 0, worker: 0, query_id: round as u64, answer: true },
            E::BeliefUpdated {
                round,
                entropy,
                quality: -entropy,
                budget_spent: round as u64,
                answers_requested: 1,
                answers_received: 1,
            },
        ]
    }

    /// Two clean single-group runs woven into a corpus envelope: each
    /// group runs its delivering round in an early segment and its
    /// finishing step in a later drain segment, so the per-group
    /// substreams reassemble to exactly `clean_run()`.
    fn clean_corpus() -> Vec<E> {
        let runs = [clean_run(), clean_run()];
        let mut events = vec![E::CorpusStarted { groups: 2, facts: 4, budget: 20, pooled: true }];
        for (g, run) in runs.iter().enumerate() {
            events.push(E::GroupScheduled { group: g, step: g as u64, gain: 0.6 });
            events.extend(run[..run.len() - 1].iter().cloned());
            events.push(E::GroupAdvanced {
                group: g,
                step: g as u64,
                round: 1,
                spent_delta: 2,
                entropy: 0.8,
            });
        }
        for (g, run) in runs.iter().enumerate() {
            let step = (2 + g) as u64;
            events.push(E::GroupScheduled { group: g, step, gain: 0.0 });
            events.push(run[run.len() - 1].clone());
            events.push(E::GroupFinished {
                group: g,
                step,
                reason: StopReason::BudgetExhausted,
                spent: 2,
                entropy: 0.8,
            });
        }
        events.push(E::CorpusFinished { steps: 4, spent: 4, finished: 2, entropy: 1.6 });
        events
    }

    #[test]
    fn clean_corpus_has_zero_findings() {
        let report = audit(&clean_corpus());
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn corpus_event_inside_single_run_is_flagged() {
        let mut events = clean_run();
        events.insert(2, E::GroupScheduled { group: 0, step: 0, gain: 0.5 });
        let report = audit(&events);
        assert!(
            report.findings.iter().any(|f| f.code == "corpus_event_in_run"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn corpus_step_gap_is_flagged() {
        let mut events = clean_corpus();
        for e in &mut events {
            if let E::GroupScheduled { group: 1, step, .. } = e {
                *step += 5;
            }
        }
        let report = audit(&events);
        assert!(
            report.findings.iter().any(|f| f.code == "step_order"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn corpus_spend_mismatch_is_flagged() {
        let mut events = clean_corpus();
        let last = events.len() - 1;
        events[last] = E::CorpusFinished { steps: 4, spent: 5, finished: 2, entropy: 1.6 };
        let report = audit(&events);
        assert!(
            report.findings.iter().any(|f| f.code == "corpus_spend_mismatch"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn truncated_corpus_is_flagged() {
        let mut events = clean_corpus();
        events.pop();
        let report = audit(&events);
        assert!(
            report.findings.iter().any(|f| f.code == "truncated_log"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn unfinished_group_is_flagged() {
        let events: Vec<E> = clean_corpus()
            .into_iter()
            .filter(|e| !matches!(e, E::GroupFinished { group: 1, .. }))
            .collect();
        let report = audit(&events);
        assert!(
            report.findings.iter().any(|f| f.code == "unclosed_segment"),
            "{}",
            report.render()
        );
        assert!(
            report.findings.iter().any(|f| f.code == "group_never_finished"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn group_findings_carry_the_group_prefix() {
        let mut events = clean_corpus();
        // Swap group 0's second dispatch ahead of its first answer so the
        // inner single-run grammar sees an interleaved dispatch.
        events.swap(4, 5);
        let report = audit(&events);
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.code == "unclosed_dispatch" && f.message.starts_with("group 0: ")),
            "{}",
            report.render()
        );
    }

    #[test]
    fn stray_event_between_segments_is_flagged() {
        let mut events = clean_corpus();
        // Right after group 0's GroupAdvanced (index 9) no segment is open.
        events.insert(
            10,
            E::BeliefUpdated {
                round: 1,
                entropy: 0.8,
                quality: -0.8,
                budget_spent: 2,
                answers_requested: 2,
                answers_received: 2,
            },
        );
        let report = audit(&events);
        assert!(
            report.findings.iter().any(|f| f.code == "event_outside_segment"),
            "{}",
            report.render()
        );
    }
}
