//! Monotonic timing spans and work counters around the HC hot paths.
//!
//! Free functions like `conditional_entropy` can't thread a sink
//! through their signatures without churning every caller, so timing
//! uses thread-local state instead: a run turns collection on with
//! [`set_enabled`], instrumented code opens a [`span`] (a drop guard),
//! and the elapsed nanoseconds land in two places at once:
//!
//! - a flat per-phase log-scale histogram (count/total/min/max plus
//!   bucket counts — the shape `telemetry_bench` has always reported);
//! - a **hierarchical span tree**: each open span becomes the parent
//!   of spans opened while it is on the stack, aggregated by
//!   `(parent, phase)`, so `select_queries → selection → scoring →
//!   entropy` shows up as one path with an inclusive time (the span's
//!   own wall clock) and a *self* time (inclusive minus the inclusive
//!   time of its direct children). Self times telescope: summed over
//!   every node they equal the inclusive time summed over the roots.
//!
//! Instrumented kernels also tally deterministic work [`Counter`]s
//! (candidate evaluations, belief patterns touched, chunks dispatched,
//! rescued updates) via [`add`]. Counters are incremented on the
//! coordinating thread only — worker threads spawned by
//! `hc_core::parallel` keep their own thread-local state disabled, so
//! nothing is double-counted and disabled runs pay one boolean load.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::time::Instant;

/// Which hot path a span covers.
///
/// The first five variants are the session state-machine steps (one
/// span per step execution); the rest are the kernels that run inside
/// them. Nesting is recorded by the span tree, not by the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Greedy query selection (the per-round selector call).
    Selection,
    /// A conditional-entropy evaluation (with or without dropout).
    Entropy,
    /// A partial-family Bayes update.
    BayesUpdate,
    /// A candidate-gain scoring pass inside the greedy selector (the
    /// fan-out parallelised by `hc_core::parallel`).
    Scoring,
    /// The `SelectQueries` session step (wraps [`Phase::Selection`]).
    SelectQueries,
    /// The `Dispatch` session step (oracle fan-out).
    Dispatch,
    /// The `CollectAnswers` session step (outcome ingestion).
    CollectAnswers,
    /// The `UpdateBeliefs` session step (wraps [`Phase::BayesUpdate`]).
    UpdateBeliefs,
    /// The `CloseRound` session step (records, stop checks).
    CloseRound,
}

/// All phases, in display order: session steps first, kernels after.
pub const PHASES: [Phase; 9] = [
    Phase::SelectQueries,
    Phase::Dispatch,
    Phase::CollectAnswers,
    Phase::UpdateBeliefs,
    Phase::CloseRound,
    Phase::Selection,
    Phase::Scoring,
    Phase::Entropy,
    Phase::BayesUpdate,
];

impl Phase {
    /// Stable snake_case name used in reports and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Selection => "selection",
            Phase::Entropy => "entropy",
            Phase::BayesUpdate => "bayes_update",
            Phase::Scoring => "scoring",
            Phase::SelectQueries => "select_queries",
            Phase::Dispatch => "dispatch",
            Phase::CollectAnswers => "collect_answers",
            Phase::UpdateBeliefs => "update_beliefs",
            Phase::CloseRound => "close_round",
        }
    }

    /// Parses a [`Phase::name`] back; `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Self> {
        PHASES.into_iter().find(|p| p.name() == name)
    }

    fn index(self) -> usize {
        match self {
            Phase::Selection => 0,
            Phase::Entropy => 1,
            Phase::BayesUpdate => 2,
            Phase::Scoring => 3,
            Phase::SelectQueries => 4,
            Phase::Dispatch => 5,
            Phase::CollectAnswers => 6,
            Phase::UpdateBeliefs => 7,
            Phase::CloseRound => 8,
        }
    }
}

/// A deterministic work counter tallied by the instrumented kernels.
///
/// Unlike span durations, counter values are pure functions of the
/// input and configuration: two runs of the same seeded config report
/// identical `candidate_evals` / `patterns_touched` / `rescued_updates`
/// at any thread count (`chunks_dispatched` reflects the parallel
/// engine's actual fan-out, so it varies with the thread policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Candidate marginal-gain evaluations the greedy selector ran.
    CandidateEvals,
    /// Belief patterns (posterior cells) written by Bayes updates.
    PatternsTouched,
    /// Work chunks handed to the parallel engine (0 in serial runs).
    ChunksDispatched,
    /// Bayes updates that needed the log-domain rescue path.
    RescuedUpdates,
}

/// All counters, in display order.
pub const COUNTERS: [Counter; 4] = [
    Counter::CandidateEvals,
    Counter::PatternsTouched,
    Counter::ChunksDispatched,
    Counter::RescuedUpdates,
];

impl Counter {
    /// Stable snake_case name used in reports and the profile event.
    pub fn name(self) -> &'static str {
        match self {
            Counter::CandidateEvals => "candidate_evals",
            Counter::PatternsTouched => "patterns_touched",
            Counter::ChunksDispatched => "chunks_dispatched",
            Counter::RescuedUpdates => "rescued_updates",
        }
    }

    /// Parses a [`Counter::name`] back; `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Self> {
        COUNTERS.into_iter().find(|c| c.name() == name)
    }

    fn index(self) -> usize {
        match self {
            Counter::CandidateEvals => 0,
            Counter::PatternsTouched => 1,
            Counter::ChunksDispatched => 2,
            Counter::RescuedUpdates => 3,
        }
    }
}

/// Log-scale (powers of 4) nanosecond buckets: 256ns, 1µs, 4µs, …,
/// ~17s, plus overflow. Wide enough that one array fits every phase.
const NANO_BOUNDS: [u64; 13] = [
    1 << 8,
    1 << 10,
    1 << 12,
    1 << 14,
    1 << 16,
    1 << 18,
    1 << 20,
    1 << 22,
    1 << 24,
    1 << 26,
    1 << 28,
    1 << 30,
    1 << 32,
];

#[derive(Debug, Clone, Copy)]
struct PhaseStats {
    counts: [u64; NANO_BOUNDS.len() + 1],
    count: u64,
    total_nanos: u64,
    min_nanos: u64,
    max_nanos: u64,
}

impl PhaseStats {
    const EMPTY: PhaseStats = PhaseStats {
        counts: [0; NANO_BOUNDS.len() + 1],
        count: 0,
        total_nanos: 0,
        min_nanos: u64::MAX,
        max_nanos: 0,
    };

    fn observe(&mut self, nanos: u64) {
        self.count += 1;
        self.total_nanos += nanos;
        self.min_nanos = self.min_nanos.min(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
        let idx = NANO_BOUNDS
            .iter()
            .position(|&b| nanos <= b)
            .unwrap_or(NANO_BOUNDS.len());
        self.counts[idx] += 1;
    }
}

/// One aggregation node in the span tree: all spans of `phase` whose
/// parent span aggregated into `parent`.
#[derive(Debug, Clone)]
struct TreeNode {
    phase: Phase,
    parent: Option<usize>,
    children: Vec<usize>,
    count: u64,
    total_nanos: u64,
    child_nanos: u64,
}

struct TimingState {
    enabled: bool,
    phases: [PhaseStats; PHASES.len()],
    nodes: Vec<TreeNode>,
    stack: Vec<usize>,
    counters: [u64; COUNTERS.len()],
}

impl TimingState {
    fn clear(&mut self) {
        self.phases = [PhaseStats::EMPTY; PHASES.len()];
        self.nodes.clear();
        self.stack.clear();
        self.counters = [0; COUNTERS.len()];
    }

    /// Finds the `(parent-of-stack-top, phase)` aggregation node, or
    /// creates it, and returns its index.
    fn open(&mut self, phase: Phase) -> usize {
        let parent = self.stack.last().copied();
        let existing = match parent {
            Some(p) => self.nodes[p]
                .children
                .iter()
                .copied()
                .find(|&c| self.nodes[c].phase == phase),
            None => self
                .nodes
                .iter()
                .position(|n| n.parent.is_none() && n.phase == phase),
        };
        let idx = existing.unwrap_or_else(|| {
            let idx = self.nodes.len();
            self.nodes.push(TreeNode {
                phase,
                parent,
                children: Vec::new(),
                count: 0,
                total_nanos: 0,
                child_nanos: 0,
            });
            if let Some(p) = parent {
                self.nodes[p].children.push(idx);
            }
            idx
        });
        self.stack.push(idx);
        idx
    }

    fn close(&mut self, idx: usize, nanos: u64) {
        self.phases[self.nodes[idx].phase.index()].observe(nanos);
        let node = &mut self.nodes[idx];
        node.count += 1;
        node.total_nanos += nanos;
        let parent = node.parent;
        if let Some(pos) = self.stack.iter().rposition(|&i| i == idx) {
            self.stack.truncate(pos);
        }
        if let Some(p) = parent {
            self.nodes[p].child_nanos += nanos;
        }
    }
}

thread_local! {
    static TIMING: RefCell<TimingState> = const {
        RefCell::new(TimingState {
            enabled: false,
            phases: [PhaseStats::EMPTY; PHASES.len()],
            nodes: Vec::new(),
            stack: Vec::new(),
            counters: [0; COUNTERS.len()],
        })
    };
}

/// Turns span collection on or off for this thread.
pub fn set_enabled(enabled: bool) {
    TIMING.with(|t| t.borrow_mut().enabled = enabled);
}

/// Whether span collection is on for this thread.
pub fn is_enabled() -> bool {
    TIMING.with(|t| t.borrow().enabled)
}

/// Clears all recorded samples, the span tree, and the counters on
/// this thread (leaves `enabled` as-is).
pub fn reset() {
    TIMING.with(|t| t.borrow_mut().clear());
}

/// Adds `n` to a work counter on this thread. No-op when disabled.
pub fn add(counter: Counter, n: u64) {
    TIMING.with(|t| {
        let mut t = t.borrow_mut();
        if t.enabled {
            t.counters[counter.index()] += n;
        }
    });
}

/// Opens a timing span for `phase`; the elapsed time is recorded when
/// the returned guard drops, both in the flat per-phase histogram and
/// as a node of the span tree under the innermost still-open span.
/// Costs one boolean load when disabled.
#[must_use = "the span measures until this guard is dropped"]
pub fn span(phase: Phase) -> SpanGuard {
    let node = TIMING.with(|t| {
        let mut t = t.borrow_mut();
        if t.enabled {
            Some(t.open(phase))
        } else {
            None
        }
    });
    SpanGuard {
        open: node.map(|idx| (idx, Instant::now())),
    }
}

/// Drop guard returned by [`span`].
pub struct SpanGuard {
    open: Option<(usize, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((idx, start)) = self.open {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            TIMING.with(|t| t.borrow_mut().close(idx, nanos));
        }
    }
}

/// One flattened span-tree node in a [`TimingSnapshot`], in
/// depth-first order (children in first-opened order).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// The phase the aggregated spans belong to.
    pub phase: Phase,
    /// Nesting depth (0 for roots).
    pub depth: usize,
    /// `/`-joined phase names from the root, e.g.
    /// `select_queries/selection/scoring`.
    pub path: String,
    /// Number of spans aggregated into this node.
    pub count: u64,
    /// Inclusive wall-clock nanoseconds (the spans' own elapsed time).
    pub total_nanos: u64,
    /// Self nanoseconds: inclusive minus direct children's inclusive.
    pub self_nanos: u64,
}

/// Point-in-time copy of this thread's timing state: flat per-phase
/// histograms, the hierarchical span tree, and the work counters.
#[derive(Debug, Clone)]
pub struct TimingSnapshot {
    phases: [PhaseStats; PHASES.len()],
    tree: Vec<SpanNode>,
    counters: [u64; COUNTERS.len()],
}

/// Captures this thread's timing state.
pub fn snapshot() -> TimingSnapshot {
    TIMING.with(|t| {
        let t = t.borrow();
        let mut tree = Vec::with_capacity(t.nodes.len());
        // DFS over roots in first-opened order.
        let mut stack: Vec<(usize, usize, String)> = Vec::new();
        for root in (0..t.nodes.len()).rev() {
            if t.nodes[root].parent.is_none() {
                stack.push((root, 0, String::new()));
            }
        }
        while let Some((idx, depth, prefix)) = stack.pop() {
            let node = &t.nodes[idx];
            let path = if prefix.is_empty() {
                node.phase.name().to_string()
            } else {
                format!("{prefix}/{}", node.phase.name())
            };
            tree.push(SpanNode {
                phase: node.phase,
                depth,
                path: path.clone(),
                count: node.count,
                total_nanos: node.total_nanos,
                self_nanos: node.total_nanos.saturating_sub(node.child_nanos),
            });
            for &child in node.children.iter().rev() {
                stack.push((child, depth + 1, path.clone()));
            }
        }
        TimingSnapshot {
            phases: t.phases,
            tree,
            counters: t.counters,
        }
    })
}

impl TimingSnapshot {
    /// Number of spans recorded for `phase`.
    pub fn count(&self, phase: Phase) -> u64 {
        self.phases[phase.index()].count
    }

    /// Total nanoseconds across all spans of `phase`.
    pub fn total_nanos(&self, phase: Phase) -> u64 {
        self.phases[phase.index()].total_nanos
    }

    /// Mean span duration in nanoseconds, or `None` when unsampled.
    pub fn mean_nanos(&self, phase: Phase) -> Option<f64> {
        let p = &self.phases[phase.index()];
        if p.count == 0 {
            None
        } else {
            Some(p.total_nanos as f64 / p.count as f64)
        }
    }

    /// `(min, max)` span duration in nanoseconds, when sampled.
    pub fn min_max_nanos(&self, phase: Phase) -> Option<(u64, u64)> {
        let p = &self.phases[phase.index()];
        if p.count == 0 {
            None
        } else {
            Some((p.min_nanos, p.max_nanos))
        }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) span duration for
    /// `phase` in nanoseconds by linear interpolation inside the
    /// log-scale bucket holding the target rank, clamped to the
    /// observed `[min, max]` (the overflow bucket interpolates toward
    /// the observed max rather than inventing an upper bound).
    /// `None` when unsampled or `q` is out of range.
    pub fn quantile_nanos(&self, phase: Phase, q: f64) -> Option<f64> {
        let p = &self.phases[phase.index()];
        if p.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = q * p.count as f64;
        let mut cum = 0u64;
        for (i, &c) in p.counts.iter().enumerate() {
            cum += c;
            if c > 0 && cum as f64 >= target {
                let lower = if i == 0 { 0 } else { NANO_BOUNDS[i - 1] };
                let upper = if i < NANO_BOUNDS.len() {
                    NANO_BOUNDS[i]
                } else {
                    p.max_nanos
                };
                let before = (cum - c) as f64;
                let frac = ((target - before) / c as f64).clamp(0.0, 1.0);
                let est = lower as f64 + (upper.max(lower) - lower) as f64 * frac;
                return Some(est.clamp(p.min_nanos as f64, p.max_nanos as f64));
            }
        }
        Some(p.max_nanos as f64)
    }

    /// Log-scale bucket counts for `phase` (last entry is overflow).
    pub fn bucket_counts(&self, phase: Phase) -> &[u64] {
        &self.phases[phase.index()].counts
    }

    /// The shared upper bucket bounds, in nanoseconds.
    pub fn bucket_bounds() -> &'static [u64] {
        &NANO_BOUNDS
    }

    /// The flattened span tree in depth-first order.
    pub fn tree_nodes(&self) -> &[SpanNode] {
        &self.tree
    }

    /// The value of a work counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()]
    }

    /// Total inclusive nanoseconds across the span-tree roots.
    pub fn roots_total_nanos(&self) -> u64 {
        self.tree
            .iter()
            .filter(|n| n.depth == 0)
            .map(|n| n.total_nanos)
            .sum()
    }

    /// Total self nanoseconds across every span-tree node. By the
    /// telescoping identity this equals [`Self::roots_total_nanos`]
    /// whenever all spans closed before the snapshot (saturating
    /// subtraction can only lose time if clocks misbehave).
    pub fn self_total_nanos(&self) -> u64 {
        self.tree.iter().map(|n| n.self_nanos).sum()
    }

    /// Renders an aligned plain-text per-phase latency table.
    pub fn render_table(&self) -> String {
        let mut out = String::from("phase             count      mean_us       min_us       max_us     total_ms\n");
        for phase in PHASES {
            let p = &self.phases[phase.index()];
            if p.count == 0 {
                let _ = writeln!(out, "{:<16} {:>6}            -            -            -            -", phase.name(), 0);
            } else {
                let _ = writeln!(
                    out,
                    "{:<16} {:>6} {:>12.2} {:>12.2} {:>12.2} {:>12.3}",
                    phase.name(),
                    p.count,
                    p.total_nanos as f64 / p.count as f64 / 1e3,
                    p.min_nanos as f64 / 1e3,
                    p.max_nanos as f64 / 1e3,
                    p.total_nanos as f64 / 1e6,
                );
            }
        }
        out
    }

    /// Renders the span tree as an indented inclusive/self table.
    pub fn render_tree(&self) -> String {
        let mut out =
            String::from("span                                count incl_ms   self_ms\n");
        if self.tree.is_empty() {
            out.push_str("(no spans recorded)\n");
            return out;
        }
        for node in &self.tree {
            let label = format!("{}{}", "  ".repeat(node.depth), node.phase.name());
            let _ = writeln!(
                out,
                "{:<34} {:>7} {:>9.3} {:>9.3}",
                label,
                node.count,
                node.total_nanos as f64 / 1e6,
                node.self_nanos as f64 / 1e6,
            );
        }
        out
    }

    /// Serialises the snapshot in the repo's `BENCH_*.json` shape: one
    /// entry per phase with count, nanosecond stats, and estimated
    /// p50/p95/p99 quantiles.
    pub fn to_bench_json(&self) -> String {
        let mut s = String::from("{");
        for (i, phase) in PHASES.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let p = &self.phases[phase.index()];
            let _ = write!(
                s,
                "\"{}\":{{\"count\":{},\"total_nanos\":{},\"mean_nanos\":",
                phase.name(),
                p.count,
                p.total_nanos
            );
            crate::json::write_f64(&mut s, self.mean_nanos(*phase).unwrap_or(f64::NAN));
            let (min, max) = self.min_max_nanos(*phase).unwrap_or((0, 0));
            let _ = write!(s, ",\"min_nanos\":{min},\"max_nanos\":{max}");
            for (label, q) in [("p50_nanos", 0.50), ("p95_nanos", 0.95), ("p99_nanos", 0.99)] {
                let _ = write!(s, ",\"{label}\":");
                crate::json::write_f64(&mut s, self.quantile_nanos(*phase, q).unwrap_or(f64::NAN));
            }
            s.push('}');
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_clean_state(f: impl FnOnce()) {
        set_enabled(false);
        reset();
        f();
        set_enabled(false);
        reset();
    }

    #[test]
    fn disabled_spans_record_nothing() {
        with_clean_state(|| {
            {
                let _g = span(Phase::Selection);
            }
            add(Counter::CandidateEvals, 5);
            let snap = snapshot();
            assert_eq!(snap.count(Phase::Selection), 0);
            assert!(snap.tree_nodes().is_empty());
            assert_eq!(snap.counter(Counter::CandidateEvals), 0);
        });
    }

    #[test]
    fn enabled_spans_record_per_phase() {
        with_clean_state(|| {
            set_enabled(true);
            assert!(is_enabled());
            {
                let _g = span(Phase::Entropy);
                std::hint::black_box(0u64);
            }
            {
                let _g = span(Phase::Entropy);
            }
            {
                let _g = span(Phase::BayesUpdate);
            }
            let snap = snapshot();
            assert_eq!(snap.count(Phase::Entropy), 2);
            assert_eq!(snap.count(Phase::BayesUpdate), 1);
            assert_eq!(snap.count(Phase::Selection), 0);
            assert!(snap.mean_nanos(Phase::Entropy).is_some());
            assert_eq!(snap.mean_nanos(Phase::Selection), None);
            let (min, max) = snap.min_max_nanos(Phase::Entropy).unwrap();
            assert!(min <= max);
            let bucket_total: u64 = snap.bucket_counts(Phase::Entropy).iter().sum();
            assert_eq!(bucket_total, 2);
        });
    }

    #[test]
    fn reset_clears_samples_but_not_enabled() {
        with_clean_state(|| {
            set_enabled(true);
            {
                let _g = span(Phase::Selection);
            }
            add(Counter::PatternsTouched, 3);
            reset();
            assert!(is_enabled());
            let snap = snapshot();
            assert_eq!(snap.count(Phase::Selection), 0);
            assert!(snap.tree_nodes().is_empty());
            assert_eq!(snap.counter(Counter::PatternsTouched), 0);
        });
    }

    #[test]
    fn nested_spans_build_a_tree_with_telescoping_self_times() {
        with_clean_state(|| {
            set_enabled(true);
            for _ in 0..3 {
                let _outer = span(Phase::SelectQueries);
                {
                    let _mid = span(Phase::Selection);
                    {
                        let _inner = span(Phase::Entropy);
                        std::hint::black_box(0u64);
                    }
                    {
                        let _inner = span(Phase::Entropy);
                    }
                }
            }
            {
                let _other_root = span(Phase::UpdateBeliefs);
            }
            let snap = snapshot();
            let tree = snap.tree_nodes();
            // Aggregation: three identical outer spans share one node.
            let paths: Vec<&str> = tree.iter().map(|n| n.path.as_str()).collect();
            assert_eq!(
                paths,
                vec![
                    "select_queries",
                    "select_queries/selection",
                    "select_queries/selection/entropy",
                    "update_beliefs",
                ]
            );
            let outer = &tree[0];
            let mid = &tree[1];
            let inner = &tree[2];
            assert_eq!(outer.count, 3);
            assert_eq!(mid.count, 3);
            assert_eq!(inner.count, 6);
            assert_eq!(outer.depth, 0);
            assert_eq!(inner.depth, 2);
            // Inclusive times nest; self times telescope exactly.
            assert!(outer.total_nanos >= mid.total_nanos);
            assert!(mid.total_nanos >= inner.total_nanos);
            assert_eq!(snap.self_total_nanos(), snap.roots_total_nanos());
        });
    }

    #[test]
    fn recursive_same_phase_spans_nest_rather_than_cycle() {
        with_clean_state(|| {
            set_enabled(true);
            {
                let _a = span(Phase::Entropy);
                {
                    let _b = span(Phase::Entropy);
                }
            }
            let snap = snapshot();
            let paths: Vec<&str> = snap.tree_nodes().iter().map(|n| n.path.as_str()).collect();
            assert_eq!(paths, vec!["entropy", "entropy/entropy"]);
            assert_eq!(snap.count(Phase::Entropy), 2);
        });
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        with_clean_state(|| {
            set_enabled(true);
            add(Counter::CandidateEvals, 10);
            add(Counter::CandidateEvals, 5);
            add(Counter::ChunksDispatched, 2);
            let snap = snapshot();
            assert_eq!(snap.counter(Counter::CandidateEvals), 15);
            assert_eq!(snap.counter(Counter::ChunksDispatched), 2);
            assert_eq!(snap.counter(Counter::RescuedUpdates), 0);
        });
    }

    #[test]
    fn phase_and_counter_names_round_trip() {
        for phase in PHASES {
            assert_eq!(Phase::from_name(phase.name()), Some(phase));
        }
        for counter in COUNTERS {
            assert_eq!(Counter::from_name(counter.name()), Some(counter));
        }
        assert_eq!(Phase::from_name("nope"), None);
        assert_eq!(Counter::from_name("nope"), None);
    }

    #[test]
    fn quantiles_are_ordered_and_clamped() {
        with_clean_state(|| {
            set_enabled(true);
            for _ in 0..100 {
                let _g = span(Phase::Scoring);
            }
            let snap = snapshot();
            let (min, max) = snap.min_max_nanos(Phase::Scoring).unwrap();
            let p50 = snap.quantile_nanos(Phase::Scoring, 0.50).unwrap();
            let p95 = snap.quantile_nanos(Phase::Scoring, 0.95).unwrap();
            let p99 = snap.quantile_nanos(Phase::Scoring, 0.99).unwrap();
            assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
            assert!(p50 >= min as f64 && p99 <= max as f64);
            assert_eq!(snap.quantile_nanos(Phase::Selection, 0.5), None);
            assert_eq!(snap.quantile_nanos(Phase::Scoring, 1.5), None);
        });
    }

    #[test]
    fn render_and_bench_json_cover_all_phases() {
        with_clean_state(|| {
            set_enabled(true);
            {
                let _g = span(Phase::Selection);
            }
            let snap = snapshot();
            let table = snap.render_table();
            for phase in PHASES {
                assert!(table.contains(phase.name()));
            }
            let tree = snap.render_tree();
            assert!(tree.contains("selection"));
            let text = snap.to_bench_json();
            let v = crate::json::parse(&text).expect("valid json");
            assert_eq!(
                v.get("selection").and_then(|p| p.get("count")).and_then(|c| c.as_u64()),
                Some(1)
            );
            assert_eq!(
                v.get("bayes_update").and_then(|p| p.get("count")).and_then(|c| c.as_u64()),
                Some(0)
            );
            assert!(v.get("selection").and_then(|p| p.get("p95_nanos")).is_some());
        });
    }
}
