//! Monotonic timing spans around the HC hot paths.
//!
//! Free functions like `conditional_entropy` can't thread a sink
//! through their signatures without churning every caller, so timing
//! uses thread-local state instead: a run turns collection on with
//! [`set_enabled`], instrumented code opens a [`span`] (a drop guard),
//! and the elapsed nanoseconds land in a per-phase log-scale histogram.
//! When disabled, a span is a single thread-local boolean load.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::time::Instant;

/// Which hot path a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Greedy query selection (the per-round selector call).
    Selection,
    /// A conditional-entropy evaluation (with or without dropout).
    Entropy,
    /// A partial-family Bayes update.
    BayesUpdate,
    /// A candidate-gain scoring pass inside the greedy selector (the
    /// fan-out parallelised by `hc_core::parallel`).
    Scoring,
}

/// All phases, in display order.
pub const PHASES: [Phase; 4] = [
    Phase::Selection,
    Phase::Entropy,
    Phase::BayesUpdate,
    Phase::Scoring,
];

impl Phase {
    /// Stable snake_case name used in reports and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Selection => "selection",
            Phase::Entropy => "entropy",
            Phase::BayesUpdate => "bayes_update",
            Phase::Scoring => "scoring",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Selection => 0,
            Phase::Entropy => 1,
            Phase::BayesUpdate => 2,
            Phase::Scoring => 3,
        }
    }
}

/// Log-scale (powers of 4) nanosecond buckets: 256ns, 1µs, 4µs, …,
/// ~17s, plus overflow. Wide enough that one array fits every phase.
const NANO_BOUNDS: [u64; 13] = [
    1 << 8,
    1 << 10,
    1 << 12,
    1 << 14,
    1 << 16,
    1 << 18,
    1 << 20,
    1 << 22,
    1 << 24,
    1 << 26,
    1 << 28,
    1 << 30,
    1 << 32,
];

#[derive(Debug, Clone, Copy)]
struct PhaseStats {
    counts: [u64; NANO_BOUNDS.len() + 1],
    count: u64,
    total_nanos: u64,
    min_nanos: u64,
    max_nanos: u64,
}

impl PhaseStats {
    const EMPTY: PhaseStats = PhaseStats {
        counts: [0; NANO_BOUNDS.len() + 1],
        count: 0,
        total_nanos: 0,
        min_nanos: u64::MAX,
        max_nanos: 0,
    };

    fn observe(&mut self, nanos: u64) {
        self.count += 1;
        self.total_nanos += nanos;
        self.min_nanos = self.min_nanos.min(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
        let idx = NANO_BOUNDS
            .iter()
            .position(|&b| nanos <= b)
            .unwrap_or(NANO_BOUNDS.len());
        self.counts[idx] += 1;
    }
}

struct TimingState {
    enabled: bool,
    phases: [PhaseStats; PHASES.len()],
}

thread_local! {
    static TIMING: RefCell<TimingState> = const {
        RefCell::new(TimingState {
            enabled: false,
            phases: [PhaseStats::EMPTY; PHASES.len()],
        })
    };
}

/// Turns span collection on or off for this thread.
pub fn set_enabled(enabled: bool) {
    TIMING.with(|t| t.borrow_mut().enabled = enabled);
}

/// Whether span collection is on for this thread.
pub fn is_enabled() -> bool {
    TIMING.with(|t| t.borrow().enabled)
}

/// Clears all recorded samples on this thread (leaves `enabled` as-is).
pub fn reset() {
    TIMING.with(|t| t.borrow_mut().phases = [PhaseStats::EMPTY; PHASES.len()]);
}

/// Opens a timing span for `phase`; the elapsed time is recorded when
/// the returned guard drops. Costs one boolean load when disabled.
#[must_use = "the span measures until this guard is dropped"]
pub fn span(phase: Phase) -> SpanGuard {
    let start = if is_enabled() { Some(Instant::now()) } else { None };
    SpanGuard { phase, start }
}

/// Drop guard returned by [`span`].
pub struct SpanGuard {
    phase: Phase,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            TIMING.with(|t| {
                t.borrow_mut().phases[self.phase.index()].observe(nanos);
            });
        }
    }
}

/// Point-in-time copy of this thread's per-phase timing histograms.
#[derive(Debug, Clone)]
pub struct TimingSnapshot {
    phases: [PhaseStats; PHASES.len()],
}

/// Captures this thread's per-phase timing histograms.
pub fn snapshot() -> TimingSnapshot {
    TIMING.with(|t| TimingSnapshot {
        phases: t.borrow().phases,
    })
}

impl TimingSnapshot {
    /// Number of spans recorded for `phase`.
    pub fn count(&self, phase: Phase) -> u64 {
        self.phases[phase.index()].count
    }

    /// Total nanoseconds across all spans of `phase`.
    pub fn total_nanos(&self, phase: Phase) -> u64 {
        self.phases[phase.index()].total_nanos
    }

    /// Mean span duration in nanoseconds, or `None` when unsampled.
    pub fn mean_nanos(&self, phase: Phase) -> Option<f64> {
        let p = &self.phases[phase.index()];
        if p.count == 0 {
            None
        } else {
            Some(p.total_nanos as f64 / p.count as f64)
        }
    }

    /// `(min, max)` span duration in nanoseconds, when sampled.
    pub fn min_max_nanos(&self, phase: Phase) -> Option<(u64, u64)> {
        let p = &self.phases[phase.index()];
        if p.count == 0 {
            None
        } else {
            Some((p.min_nanos, p.max_nanos))
        }
    }

    /// Log-scale bucket counts for `phase` (last entry is overflow).
    pub fn bucket_counts(&self, phase: Phase) -> &[u64] {
        &self.phases[phase.index()].counts
    }

    /// The shared upper bucket bounds, in nanoseconds.
    pub fn bucket_bounds() -> &'static [u64] {
        &NANO_BOUNDS
    }

    /// Renders an aligned plain-text per-phase latency table.
    pub fn render_table(&self) -> String {
        let mut out = String::from("phase         count      mean_us       min_us       max_us     total_ms\n");
        for phase in PHASES {
            let p = &self.phases[phase.index()];
            if p.count == 0 {
                let _ = writeln!(out, "{:<12} {:>6}            -            -            -            -", phase.name(), 0);
            } else {
                let _ = writeln!(
                    out,
                    "{:<12} {:>6} {:>12.2} {:>12.2} {:>12.2} {:>12.3}",
                    phase.name(),
                    p.count,
                    p.total_nanos as f64 / p.count as f64 / 1e3,
                    p.min_nanos as f64 / 1e3,
                    p.max_nanos as f64 / 1e3,
                    p.total_nanos as f64 / 1e6,
                );
            }
        }
        out
    }

    /// Serialises the snapshot in the repo's `BENCH_*.json` shape: one
    /// entry per phase with count and nanosecond stats.
    pub fn to_bench_json(&self) -> String {
        let mut s = String::from("{");
        for (i, phase) in PHASES.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let p = &self.phases[phase.index()];
            let _ = write!(
                s,
                "\"{}\":{{\"count\":{},\"total_nanos\":{},\"mean_nanos\":",
                phase.name(),
                p.count,
                p.total_nanos
            );
            crate::json::write_f64(&mut s, self.mean_nanos(*phase).unwrap_or(f64::NAN));
            let (min, max) = self.min_max_nanos(*phase).unwrap_or((0, 0));
            let _ = write!(s, ",\"min_nanos\":{min},\"max_nanos\":{max}}}");
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_clean_state(f: impl FnOnce()) {
        set_enabled(false);
        reset();
        f();
        set_enabled(false);
        reset();
    }

    #[test]
    fn disabled_spans_record_nothing() {
        with_clean_state(|| {
            {
                let _g = span(Phase::Selection);
            }
            assert_eq!(snapshot().count(Phase::Selection), 0);
        });
    }

    #[test]
    fn enabled_spans_record_per_phase() {
        with_clean_state(|| {
            set_enabled(true);
            assert!(is_enabled());
            {
                let _g = span(Phase::Entropy);
                std::hint::black_box(0u64);
            }
            {
                let _g = span(Phase::Entropy);
            }
            {
                let _g = span(Phase::BayesUpdate);
            }
            let snap = snapshot();
            assert_eq!(snap.count(Phase::Entropy), 2);
            assert_eq!(snap.count(Phase::BayesUpdate), 1);
            assert_eq!(snap.count(Phase::Selection), 0);
            assert!(snap.mean_nanos(Phase::Entropy).is_some());
            assert_eq!(snap.mean_nanos(Phase::Selection), None);
            let (min, max) = snap.min_max_nanos(Phase::Entropy).unwrap();
            assert!(min <= max);
            let bucket_total: u64 = snap.bucket_counts(Phase::Entropy).iter().sum();
            assert_eq!(bucket_total, 2);
        });
    }

    #[test]
    fn reset_clears_samples_but_not_enabled() {
        with_clean_state(|| {
            set_enabled(true);
            {
                let _g = span(Phase::Selection);
            }
            reset();
            assert!(is_enabled());
            assert_eq!(snapshot().count(Phase::Selection), 0);
        });
    }

    #[test]
    fn render_and_bench_json_cover_all_phases() {
        with_clean_state(|| {
            set_enabled(true);
            {
                let _g = span(Phase::Selection);
            }
            let snap = snapshot();
            let table = snap.render_table();
            for phase in PHASES {
                assert!(table.contains(phase.name()));
            }
            let text = snap.to_bench_json();
            let v = crate::json::parse(&text).expect("valid json");
            assert_eq!(
                v.get("selection").and_then(|p| p.get("count")).and_then(|c| c.as_u64()),
                Some(1)
            );
            assert_eq!(
                v.get("bayes_update").and_then(|p| p.get("count")).and_then(|c| c.as_u64()),
                Some(0)
            );
        });
    }
}
