//! A minimal JSON value, writer and parser — just enough for the JSONL
//! event log and metric snapshots, with zero dependencies.
//!
//! Floats are written with Rust's shortest-round-trip formatting, so an
//! encode → parse cycle reproduces every finite `f64` bit for bit.
//! Non-finite floats (which JSON cannot represent) are written as
//! `null` and parsed back as `NaN`.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Object keys are kept sorted (`BTreeMap`) so
/// encoding is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64` (`null` reads as `NaN` to mirror encoding).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as a `u64`, when it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// The value as a `u32`.
    pub fn as_u32(&self) -> Option<u32> {
        self.as_u64().and_then(|v| u32::try_from(v).ok())
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                let mut buf = String::new();
                write_f64(&mut buf, *n);
                f.write_str(&buf)
            }
            Json::Str(s) => {
                let mut buf = String::new();
                write_str(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::new();
                    write_str(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Appends `v` to `out` as a JSON number (`null` when non-finite).
///
/// Uses `{:?}` formatting, which Rust guarantees to be the shortest
/// decimal string that round-trips to the same `f64`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing characters", pos));
    }
    Ok(value)
}

fn err(message: &str, offset: usize) -> ParseError {
    ParseError {
        message: message.to_string(),
        offset,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), ParseError> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(err(&format!("expected `{token}`"), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err("expected `,` or `]`", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(err("expected `:`", *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(err("expected `,` or `}`", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err("expected string", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err("truncated \\u escape", *pos))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err("invalid \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err("invalid \\u escape", *pos))?;
                        // Surrogates are not produced by our writer;
                        // map unpaired ones to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err("invalid escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so byte
                // boundaries are valid).
                let rest = &bytes[*pos..];
                let s = unsafe { std::str::from_utf8_unchecked(rest) };
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    if *pos == start {
        return Err(err("expected value", start));
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number slice");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err("invalid number", start))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for src in ["null", "true", "false", "0.5", "-3.25", "\"hi\""] {
            let v = parse(src).unwrap();
            assert_eq!(v.to_string(), src);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e-12, 123456.789, -0.0, f64::MIN_POSITIVE] {
            let mut s = String::new();
            write_f64(&mut s, x);
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {s}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut s = String::new();
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
        assert!(parse("null").unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "a \"b\"\n\t\\ ü ❄";
        let mut s = String::new();
        write_str(&mut s, original);
        assert_eq!(parse(&s).unwrap().as_str().unwrap(), original);
        // Control characters go through \u escapes.
        let mut s = String::new();
        write_str(&mut s, "\u{1}");
        assert_eq!(s, "\"\\u0001\"");
        assert_eq!(parse(&s).unwrap().as_str().unwrap(), "\u{1}");
    }

    #[test]
    fn nested_structures_parse() {
        let v = parse(r#"{"a":[1,2,{"b":true}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].as_u64(), Some(2));
        assert_eq!(arr[2].get("b").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn integer_accessors_reject_fractions_and_negatives() {
        assert_eq!(parse("2.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("7").unwrap().as_u32(), Some(7));
    }

    #[test]
    fn errors_carry_offsets() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
        let e = parse("  x").unwrap_err();
        assert_eq!(e.offset, 2);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = parse(" { \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }
}
