//! Versioned, checksummed checkpoint frames and crash-safe snapshot I/O.
//!
//! A checkpoint is one JSON line wrapping an opaque payload string:
//!
//! ```json
//! {"crc32":3632233996,"kind":"hc-session","payload":"...","seq":3,"type":"checkpoint","version":1}
//! ```
//!
//! The payload is whatever the producer serialized (the HC session
//! state, an evaluation runner's wrapper, …) — this module only
//! guarantees its *integrity*: the CRC-32 covers the payload bytes, the
//! `version` field gates format evolution, and the `kind` field lets a
//! reader reject a frame written by a different producer. All three
//! failures surface as distinct [`CheckpointError`] variants so callers
//! can refuse to apply partial or foreign state.
//!
//! Two placements are supported:
//!
//! - **Embedded**: a checkpoint line inside a JSONL event trace
//!   ([`is_checkpoint_line`], [`latest_in_jsonl`]). The replay parser
//!   ignores these lines, so an instrumented trace with embedded
//!   checkpoints is still a valid event stream.
//! - **Snapshot file**: a single-frame file written atomically
//!   ([`write_snapshot`]) — temp file, `fsync`, rename, directory
//!   `fsync` — so a crash mid-write can never leave a half-new
//!   snapshot; readers see either the old frame or the new one. A torn
//!   write that does slip through (e.g. a truncated temp file read
//!   directly) is reported as [`CheckpointError::Truncated`].

use crate::json::{self, Json};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Current checkpoint frame format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// One checkpoint: a versioned, checksummed, kind-tagged payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointFrame {
    /// Frame format version (see [`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Producer tag; readers reject frames of the wrong kind.
    pub kind: String,
    /// Monotone sequence number assigned by the producer.
    pub seq: u64,
    /// The producer's serialized state, opaque to this module.
    pub payload: String,
}

impl CheckpointFrame {
    /// A frame of the current version wrapping `payload`.
    pub fn new(kind: &str, seq: u64, payload: String) -> Self {
        CheckpointFrame {
            version: CHECKPOINT_VERSION,
            kind: kind.to_string(),
            seq,
            payload,
        }
    }

    /// Serializes the frame as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut map = BTreeMap::new();
        map.insert("type".to_string(), Json::Str("checkpoint".to_string()));
        map.insert("version".to_string(), Json::Num(self.version as f64));
        map.insert("kind".to_string(), Json::Str(self.kind.clone()));
        map.insert("seq".to_string(), Json::Num(self.seq as f64));
        map.insert(
            "crc32".to_string(),
            Json::Num(crc32(self.payload.as_bytes()) as f64),
        );
        map.insert("payload".to_string(), Json::Str(self.payload.clone()));
        Json::Obj(map).to_string()
    }

    /// Parses and *verifies* a frame: JSON shape, `version`, CRC-32.
    pub fn from_json_line(line: &str) -> Result<Self, CheckpointError> {
        let value = json::parse(line.trim())
            .map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        if value.get("type").and_then(Json::as_str) != Some("checkpoint") {
            return Err(CheckpointError::Malformed(
                "not a checkpoint line (missing type=checkpoint)".to_string(),
            ));
        }
        let version = value
            .get("version")
            .and_then(Json::as_u32)
            .ok_or_else(|| CheckpointError::Malformed("missing version".to_string()))?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::VersionMismatch {
                expected: CHECKPOINT_VERSION,
                found: version,
            });
        }
        let kind = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| CheckpointError::Malformed("missing kind".to_string()))?
            .to_string();
        let seq = value
            .get("seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| CheckpointError::Malformed("missing seq".to_string()))?;
        let payload = value
            .get("payload")
            .and_then(Json::as_str)
            .ok_or_else(|| CheckpointError::Malformed("missing payload".to_string()))?
            .to_string();
        let stored = value
            .get("crc32")
            .and_then(Json::as_u64)
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| CheckpointError::Malformed("missing crc32".to_string()))?;
        let actual = crc32(payload.as_bytes());
        if stored != actual {
            return Err(CheckpointError::ChecksumMismatch {
                expected: stored,
                found: actual,
            });
        }
        Ok(CheckpointFrame {
            version,
            kind,
            seq,
            payload,
        })
    }

    /// Verifies the producer tag, for readers that only accept one kind.
    pub fn expect_kind(&self, kind: &str) -> Result<(), CheckpointError> {
        if self.kind == kind {
            Ok(())
        } else {
            Err(CheckpointError::KindMismatch {
                expected: kind.to_string(),
                found: self.kind.clone(),
            })
        }
    }
}

/// Why a checkpoint could not be read or verified. No variant ever
/// leaves partial state applied: verification happens before any
/// payload is handed to the caller.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The snapshot file is empty or its single line was torn mid-write.
    Truncated,
    /// The line is not valid checkpoint JSON.
    Malformed(String),
    /// The payload bytes do not match the stored CRC-32.
    ChecksumMismatch {
        /// CRC stored in the frame.
        expected: u32,
        /// CRC computed over the payload actually read.
        found: u32,
    },
    /// The frame was written by an incompatible format version.
    VersionMismatch {
        /// The version this reader understands.
        expected: u32,
        /// The version found in the frame.
        found: u32,
    },
    /// The frame was written by a different producer.
    KindMismatch {
        /// The kind the reader requires.
        expected: String,
        /// The kind found in the frame.
        found: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Truncated => {
                write!(f, "checkpoint is truncated (torn write)")
            }
            CheckpointError::Malformed(msg) => write!(f, "malformed checkpoint: {msg}"),
            CheckpointError::ChecksumMismatch { expected, found } => write!(
                f,
                "checkpoint checksum mismatch: stored {expected:#010x}, payload hashes to {found:#010x}"
            ),
            CheckpointError::VersionMismatch { expected, found } => write!(
                f,
                "checkpoint version mismatch: reader supports {expected}, frame is {found}"
            ),
            CheckpointError::KindMismatch { expected, found } => write!(
                f,
                "checkpoint kind mismatch: expected `{expected}`, frame is `{found}`"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Cheap test for an (intact) embedded checkpoint line.
///
/// A line torn *inside* the `"type"` field fails this test and falls
/// through to the replay parser's skip path, which is the correct
/// recovery behaviour for a torn tail.
pub fn is_checkpoint_line(line: &str) -> bool {
    line.contains("\"type\":\"checkpoint\"")
}

/// The last *valid* checkpoint frame embedded in a JSONL trace, if any.
/// Lines that fail verification (torn, corrupt) are ignored.
pub fn latest_in_jsonl(text: &str) -> Option<CheckpointFrame> {
    let mut latest = None;
    for line in text.lines() {
        if is_checkpoint_line(line) {
            if let Ok(frame) = CheckpointFrame::from_json_line(line) {
                latest = Some(frame);
            }
        }
    }
    latest
}

/// Atomically replaces the snapshot at `path` with `frame`.
///
/// Durability contract: the frame is written to a sibling temp file,
/// `fsync`ed, renamed over `path`, and the parent directory is
/// `fsync`ed — after this returns, a crash at any point leaves either
/// the previous snapshot or the new one, never a torn mix.
pub fn write_snapshot(path: &Path, frame: &CheckpointFrame) -> Result<(), CheckpointError> {
    let file_name = path
        .file_name()
        .ok_or_else(|| CheckpointError::Malformed("snapshot path has no file name".to_string()))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(frame.to_json_line().as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        // Root-less relative paths have an empty parent; skip those.
        if !parent.as_os_str().is_empty() {
            fs::File::open(parent)?.sync_all()?;
        }
    }
    Ok(())
}

/// Reads and verifies the snapshot at `path`.
///
/// An empty file or a line torn mid-write (no terminating newline and
/// unparseable) is [`CheckpointError::Truncated`]; corruption inside a
/// complete line surfaces as the precise verification failure.
pub fn read_snapshot(path: &Path) -> Result<CheckpointFrame, CheckpointError> {
    let text = fs::read_to_string(path)?;
    let line = match text.lines().find(|l| !l.trim().is_empty()) {
        Some(line) => line,
        None => return Err(CheckpointError::Truncated),
    };
    match CheckpointFrame::from_json_line(line) {
        Ok(frame) => Ok(frame),
        // A malformed single line that was never newline-terminated is
        // a torn write, not corruption of a complete frame.
        Err(CheckpointError::Malformed(_)) if !text.ends_with('\n') => {
            Err(CheckpointError::Truncated)
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("hc_ckpt_{tag}_{}.ckpt", std::process::id()))
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trips_through_its_json_line() {
        let frame = CheckpointFrame::new("hc-session", 7, "{\"spent\":12,\"nl\":\"a\\nb\"}".to_string());
        let line = frame.to_json_line();
        assert!(is_checkpoint_line(&line));
        assert!(!line.contains('\n'), "a frame is a single line");
        let back = CheckpointFrame::from_json_line(&line).expect("round trip");
        assert_eq!(back, frame);
    }

    #[test]
    fn corrupted_payload_is_a_checksum_mismatch() {
        let frame = CheckpointFrame::new("hc-session", 1, "payload-bytes".to_string());
        let line = frame.to_json_line().replace("payload-bytes", "payload-bytez");
        match CheckpointFrame::from_json_line(&line) {
            Err(CheckpointError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn foreign_version_is_a_version_mismatch() {
        let frame = CheckpointFrame::new("hc-session", 1, "x".to_string());
        let line = frame.to_json_line().replace("\"version\":1", "\"version\":99");
        match CheckpointFrame::from_json_line(&line) {
            Err(CheckpointError::VersionMismatch { expected, found }) => {
                assert_eq!(expected, CHECKPOINT_VERSION);
                assert_eq!(found, 99);
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn wrong_kind_is_rejected_on_demand() {
        let frame = CheckpointFrame::new("something-else", 1, "x".to_string());
        assert!(frame.expect_kind("something-else").is_ok());
        match frame.expect_kind("hc-session") {
            Err(CheckpointError::KindMismatch { expected, found }) => {
                assert_eq!(expected, "hc-session");
                assert_eq!(found, "something-else");
            }
            other => panic!("expected kind mismatch, got {other:?}"),
        }
    }

    #[test]
    fn garbage_lines_are_malformed_not_panics() {
        for line in ["", "{", "{\"type\":\"event\"}", "not json"] {
            match CheckpointFrame::from_json_line(line) {
                Err(CheckpointError::Malformed(_)) => {}
                other => panic!("line {line:?}: expected malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn snapshot_write_read_round_trips() {
        let path = temp_path("roundtrip");
        let frame = CheckpointFrame::new("hc-session", 3, "state".to_string());
        write_snapshot(&path, &frame).expect("write");
        let back = read_snapshot(&path).expect("read");
        assert_eq!(back, frame);
        // Overwrite is atomic-replace, not append.
        let frame2 = CheckpointFrame::new("hc-session", 4, "state2".to_string());
        write_snapshot(&path, &frame2).expect("rewrite");
        assert_eq!(read_snapshot(&path).expect("reread"), frame2);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_snapshot_is_truncated_with_no_state_leaked() {
        let path = temp_path("torn");
        let frame = CheckpointFrame::new("hc-session", 9, "abcdefgh".to_string());
        let full = frame.to_json_line();
        // Simulate a crash mid-write: half the line, no newline.
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        match read_snapshot(&path) {
            Err(CheckpointError::Truncated) => {}
            other => panic!("expected truncated, got {other:?}"),
        }
        // Empty file too.
        std::fs::write(&path, "").unwrap();
        assert!(matches!(read_snapshot(&path), Err(CheckpointError::Truncated)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_snapshot_is_an_io_error() {
        let path = temp_path("missing_never_written");
        let _ = std::fs::remove_file(&path);
        assert!(matches!(read_snapshot(&path), Err(CheckpointError::Io(_))));
    }

    #[test]
    fn latest_embedded_frame_wins_and_torn_ones_are_ignored() {
        let f1 = CheckpointFrame::new("hc-session", 1, "one".to_string());
        let f2 = CheckpointFrame::new("hc-session", 2, "two".to_string());
        let torn = &f2.to_json_line()[..20];
        let text = format!(
            "{{\"type\":\"run_started\"}}\n{}\n{}\n{torn}",
            f1.to_json_line(),
            f2.to_json_line()
        );
        let latest = latest_in_jsonl(&text).expect("found");
        assert_eq!(latest.seq, 2);
        assert_eq!(latest.payload, "two");
        assert!(latest_in_jsonl("plain\nlines\n").is_none());
    }
}
