//! Cross-run comparison: diff two traces or two `BENCH_*.json` files.
//!
//! The perf observatory's question is always the same — *did anything
//! move?* — asked of two artifacts:
//!
//! - **Two JSONL traces** (replayed via [`crate::replay`]): the
//!   per-round entropy/spend trajectories are compared bit-exactly
//!   (two runs of the same seeded config must not diverge at all; a
//!   serial and an 8-thread run of the same config must diverge in
//!   *timings only*), phase latencies come from each trace's
//!   [`TelemetryEvent::ProfileReport`], and work counters are reported
//!   as ratios.
//! - **Two stamped bench files** (see `hc-bench`'s harness): every
//!   numeric leaf under `results` is flattened to a dotted key and
//!   diffed.
//!
//! Latency keys are *gated* — eligible to fail a regression check —
//! when they are p95 estimates or point measurements (the
//! min-of-repeats and per-step numbers the micro-benches emit).
//! Distribution companions (`min`/`max`/`mean`/`total`/`p50`/`p99`)
//! and non-latency leaves (counts, speedups, byte sizes) never gate:
//! they either duplicate the gated signal or move legitimately.
//!
//! `hc-eval compare <a> <b> [--json] [--fail-on-regress PCT]` is the
//! CLI surface; CI runs it against the committed baselines.

use crate::json::{self, Json};
use crate::replay::ReplayedRun;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One parsed comparison input.
#[derive(Debug, Clone)]
pub enum Side {
    /// A JSONL event trace, replayed.
    Trace(Box<ReplayedRun>),
    /// A single-object bench JSON document.
    Bench(Json),
}

/// Classifies and parses one input text: a single JSON object without
/// a `type` field is a bench document; anything else is treated as a
/// JSONL trace (replay skips unparseable lines and reports them).
pub fn load(text: &str) -> Side {
    if let Ok(v @ Json::Obj(_)) = json::parse(text.trim()) {
        if v.get("type").is_none() {
            return Side::Bench(v);
        }
    }
    Side::Trace(Box::new(ReplayedRun::from_jsonl(text)))
}

/// How far two runs' per-round trajectories drift apart.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryDiff {
    /// Completed rounds in each run.
    pub rounds_a: usize,
    /// Completed rounds in the other run.
    pub rounds_b: usize,
    /// First 1-based round where the entropy (bit-compared) or spend
    /// differs, or where one trajectory ends; `None` when identical.
    pub first_divergent_round: Option<usize>,
    /// Largest `|entropy_a − entropy_b|` over the common prefix.
    pub max_abs_entropy_diff: f64,
    /// Largest `|spend_a − spend_b|` over the common prefix.
    pub max_abs_spend_diff: u64,
}

impl TrajectoryDiff {
    /// Whether the two trajectories are identical to the bit.
    pub fn is_identical(&self) -> bool {
        self.first_divergent_round.is_none()
    }

    fn of(a: &ReplayedRun, b: &ReplayedRun) -> TrajectoryDiff {
        let (ea, eb) = (a.entropy_trajectory(), b.entropy_trajectory());
        let (sa, sb) = (a.spend_trajectory(), b.spend_trajectory());
        let rounds = ea.len().min(eb.len()).min(sa.len()).min(sb.len());
        let mut first = None;
        let mut max_e = 0.0f64;
        let mut max_s = 0u64;
        for i in 0..rounds {
            let diverged = ea[i].to_bits() != eb[i].to_bits() || sa[i] != sb[i];
            if diverged && first.is_none() {
                first = Some(i + 1);
            }
            max_e = max_e.max((ea[i] - eb[i]).abs());
            max_s = max_s.max(sa[i].abs_diff(sb[i]));
        }
        if first.is_none() && (ea.len() != eb.len() || sa.len() != sb.len()) {
            first = Some(rounds + 1);
        }
        TrajectoryDiff {
            rounds_a: ea.len(),
            rounds_b: eb.len(),
            first_divergent_round: first,
            max_abs_entropy_diff: max_e,
            max_abs_spend_diff: max_s,
        }
    }
}

/// One diffed numeric metric (a dotted key into either artifact).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Dotted key, e.g. `phase.selection.p95_nanos` or
    /// `points.2.parallel_nanos`.
    pub key: String,
    /// Value in the first artifact (`NaN` when absent there).
    pub a: f64,
    /// Value in the second artifact (`NaN` when absent there).
    pub b: f64,
    /// Whether the key is eligible to fail a regression check.
    pub gated: bool,
}

impl MetricDelta {
    /// `b / a`, or `NaN` when undefined.
    pub fn ratio(&self) -> f64 {
        if self.a > 0.0 {
            self.b / self.a
        } else {
            f64::NAN
        }
    }

    /// `(b − a) / a` in percent, or `NaN` when undefined.
    pub fn delta_pct(&self) -> f64 {
        (self.ratio() - 1.0) * 100.0
    }

    /// Whether this metric regressed by more than `pct` percent.
    pub fn regressed_by(&self, pct: f64) -> bool {
        self.gated && self.a > 0.0 && self.b.is_finite() && self.b > self.a * (1.0 + pct / 100.0)
    }
}

/// A work counter's value in both runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterDelta {
    /// The counter's stable name.
    pub name: String,
    /// Value in the first run (0 when absent).
    pub a: u64,
    /// Value in the second run (0 when absent).
    pub b: u64,
}

impl CounterDelta {
    /// `b / a`, or `NaN` when `a` is zero.
    pub fn ratio(&self) -> f64 {
        if self.a > 0 {
            self.b as f64 / self.a as f64
        } else {
            f64::NAN
        }
    }
}

/// The outcome of comparing two artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    /// `"trace"` or `"bench"`.
    pub mode: &'static str,
    /// Trajectory divergence (trace mode only).
    pub trajectory: Option<TrajectoryDiff>,
    /// Diffed numeric metrics, sorted by key.
    pub metrics: Vec<MetricDelta>,
    /// Work-counter ratios (trace mode only), sorted by name.
    pub counters: Vec<CounterDelta>,
    /// Human-readable observations (metadata mismatches, one-sided
    /// phases, missing profiles).
    pub notes: Vec<String>,
}

/// Compares two artifacts given their raw texts. Returns an error when
/// the inputs are of different kinds (a trace cannot be diffed against
/// a bench document).
pub fn compare_str(a: &str, b: &str) -> Result<CompareReport, String> {
    match (load(a), load(b)) {
        (Side::Trace(a), Side::Trace(b)) => Ok(compare_traces(&a, &b)),
        (Side::Bench(a), Side::Bench(b)) => Ok(compare_bench(&a, &b)),
        (Side::Trace(_), Side::Bench(_)) => {
            Err("first input is a trace, second is a bench document".to_string())
        }
        (Side::Bench(_), Side::Trace(_)) => {
            Err("first input is a bench document, second is a trace".to_string())
        }
    }
}

/// Diffs two replayed runs: trajectories bit-exactly, phase latencies
/// from their `ProfileReport`s, counters as ratios.
pub fn compare_traces(a: &ReplayedRun, b: &ReplayedRun) -> CompareReport {
    let mut notes = Vec::new();
    for (run, label) in [(a, "first"), (b, "second")] {
        if !run.skipped.is_empty() {
            notes.push(format!(
                "{label} trace: {} unparseable line(s) skipped",
                run.skipped.len()
            ));
        }
        if run.profile.is_none() {
            notes.push(format!(
                "{label} trace has no profile_report (run without HcConfig::profile?); \
                 phase latencies unavailable"
            ));
        }
    }

    let mut metrics = Vec::new();
    let mut counters = Vec::new();
    let empty = crate::replay::RunProfile::default();
    let pa = a.profile.as_ref().unwrap_or(&empty);
    let pb = b.profile.as_ref().unwrap_or(&empty);

    let mut phase_names: Vec<&str> = pa
        .phases
        .iter()
        .chain(pb.phases.iter())
        .map(|p| p.phase.as_str())
        .collect();
    phase_names.sort_unstable();
    phase_names.dedup();
    for name in phase_names {
        let (xa, xb) = (pa.phase(name), pb.phase(name));
        if xa.is_none() || xb.is_none() {
            notes.push(format!(
                "phase `{name}` sampled in only one run ({} vs {} spans)",
                xa.map_or(0, |p| p.count),
                xb.map_or(0, |p| p.count)
            ));
        }
        let field = |p: Option<&crate::event::PhaseProfile>, f: fn(&crate::event::PhaseProfile) -> f64| {
            p.map_or(f64::NAN, f)
        };
        for (metric, fa) in [
            ("total_nanos", (|p| p.total_nanos as f64) as fn(&crate::event::PhaseProfile) -> f64),
            ("p50_nanos", |p| p.p50_nanos),
            ("p95_nanos", |p| p.p95_nanos),
            ("p99_nanos", |p| p.p99_nanos),
        ] {
            metrics.push(MetricDelta {
                key: format!("phase.{name}.{metric}"),
                a: field(xa, fa),
                b: field(xb, fa),
                gated: metric == "p95_nanos",
            });
        }
    }

    let mut counter_names: Vec<&str> = pa
        .counters
        .iter()
        .chain(pb.counters.iter())
        .map(|(n, _)| n.as_str())
        .collect();
    counter_names.sort_unstable();
    counter_names.dedup();
    for name in counter_names {
        counters.push(CounterDelta {
            name: name.to_string(),
            a: pa.counter(name).unwrap_or(0),
            b: pb.counter(name).unwrap_or(0),
        });
    }

    CompareReport {
        mode: "trace",
        trajectory: Some(TrajectoryDiff::of(a, b)),
        metrics,
        counters,
        notes,
    }
}

/// Diffs two bench documents: every numeric leaf under `results`
/// (falling back to the whole object for unstamped legacy files) is
/// flattened to a dotted key and compared.
pub fn compare_bench(a: &Json, b: &Json) -> CompareReport {
    let mut notes = Vec::new();
    for key in ["bench", "threads", "commit", "schema_version"] {
        let (xa, xb) = (render_meta(a.get(key)), render_meta(b.get(key)));
        if xa != xb {
            notes.push(format!("metadata `{key}` differs: {xa} vs {xb}"));
        }
    }
    let results = |v: &Json| -> BTreeMap<String, f64> {
        let mut leaves = BTreeMap::new();
        flatten(v.get("results").unwrap_or(v), String::new(), &mut leaves);
        leaves
    };
    let (la, lb) = (results(a), results(b));
    let mut keys: Vec<&String> = la.keys().chain(lb.keys()).collect();
    keys.sort_unstable();
    keys.dedup();
    let metrics = keys
        .into_iter()
        .map(|key| MetricDelta {
            key: key.clone(),
            a: la.get(key).copied().unwrap_or(f64::NAN),
            b: lb.get(key).copied().unwrap_or(f64::NAN),
            gated: gated_key(key),
        })
        .collect();
    CompareReport {
        mode: "bench",
        trajectory: None,
        metrics,
        counters: Vec::new(),
        notes,
    }
}

fn render_meta(v: Option<&Json>) -> String {
    match v {
        None => "(absent)".to_string(),
        Some(v) => v.to_string(),
    }
}

/// Flattens numeric leaves into dotted keys (`points.1.serial_nanos`).
fn flatten(v: &Json, prefix: String, out: &mut BTreeMap<String, f64>) {
    match v {
        Json::Num(n) => {
            out.insert(prefix, *n);
        }
        Json::Bool(b) => {
            out.insert(prefix, if *b { 1.0 } else { 0.0 });
        }
        Json::Obj(map) => {
            for (k, x) in map {
                let key = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(x, key, out);
            }
        }
        Json::Arr(items) => {
            for (i, x) in items.iter().enumerate() {
                flatten(x, format!("{prefix}.{i}"), out);
            }
        }
        Json::Null | Json::Str(_) => {}
    }
}

/// Whether a dotted key is eligible to fail a regression check: p95
/// estimates and point latency measurements gate; distribution
/// companions and non-latency leaves never do.
fn gated_key(key: &str) -> bool {
    let last = key.rsplit('.').next().unwrap_or(key);
    if !last.contains("nanos") {
        return false;
    }
    !matches!(
        last,
        "min_nanos" | "max_nanos" | "mean_nanos" | "total_nanos" | "p50_nanos" | "p99_nanos"
    )
}

impl CompareReport {
    /// The gated metrics that regressed by more than `pct` percent.
    pub fn regressions(&self, pct: f64) -> Vec<&MetricDelta> {
        self.metrics.iter().filter(|m| m.regressed_by(pct)).collect()
    }

    /// Renders the report as console text; when `fail_on_regress` is
    /// set, a regression section (and only then) lists the offenders.
    pub fn render(&self, fail_on_regress: Option<f64>) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "compare: {} vs {}", self.mode, self.mode);
        if let Some(t) = &self.trajectory {
            let _ = writeln!(
                out,
                "-- trajectory --\nrounds {} vs {}; {}; max |Δentropy| {:e}, max |Δspend| {}",
                t.rounds_a,
                t.rounds_b,
                match t.first_divergent_round {
                    None => "identical to the bit".to_string(),
                    Some(r) => format!("first divergence at round {r}"),
                },
                t.max_abs_entropy_diff,
                t.max_abs_spend_diff,
            );
        }
        if !self.metrics.is_empty() {
            let _ = writeln!(out, "-- latency --");
            let width = self.metrics.iter().map(|m| m.key.len()).max().unwrap_or(3).max(3);
            let _ = writeln!(
                out,
                "{:<width$} {:>14} {:>14} {:>8} {:>9}  gated",
                "key", "a", "b", "ratio", "delta_pct"
            );
            for m in &self.metrics {
                let _ = writeln!(
                    out,
                    "{:<width$} {:>14.1} {:>14.1} {:>8.3} {:>8.1}%  {}",
                    m.key,
                    m.a,
                    m.b,
                    m.ratio(),
                    m.delta_pct(),
                    if m.gated { "yes" } else { "-" },
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "-- counters --");
            let width = self.counters.iter().map(|c| c.name.len()).max().unwrap_or(4).max(4);
            for c in &self.counters {
                let _ = writeln!(
                    out,
                    "{:<width$} {:>14} {:>14} {:>8.3}",
                    c.name,
                    c.a,
                    c.b,
                    c.ratio()
                );
            }
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        if let Some(pct) = fail_on_regress {
            let offenders = self.regressions(pct);
            if offenders.is_empty() {
                let _ = writeln!(out, "regression gate ({pct}%): clean");
            } else {
                let _ = writeln!(out, "regression gate ({pct}%): {} offender(s)", offenders.len());
                for m in offenders {
                    let _ = writeln!(out, "  {} +{:.1}% ({:.0} -> {:.0})", m.key, m.delta_pct(), m.a, m.b);
                }
            }
        }
        out
    }

    /// Serialises the report as a JSON document.
    pub fn to_json(&self, fail_on_regress: Option<f64>) -> Json {
        let mut root = BTreeMap::new();
        root.insert("mode".to_string(), Json::Str(self.mode.to_string()));
        if let Some(t) = &self.trajectory {
            let mut obj = BTreeMap::new();
            obj.insert("rounds_a".to_string(), Json::Num(t.rounds_a as f64));
            obj.insert("rounds_b".to_string(), Json::Num(t.rounds_b as f64));
            obj.insert(
                "first_divergent_round".to_string(),
                match t.first_divergent_round {
                    None => Json::Null,
                    Some(r) => Json::Num(r as f64),
                },
            );
            obj.insert("identical".to_string(), Json::Bool(t.is_identical()));
            obj.insert(
                "max_abs_entropy_diff".to_string(),
                Json::Num(t.max_abs_entropy_diff),
            );
            obj.insert(
                "max_abs_spend_diff".to_string(),
                Json::Num(t.max_abs_spend_diff as f64),
            );
            root.insert("trajectory".to_string(), Json::Obj(obj));
        }
        root.insert(
            "metrics".to_string(),
            Json::Arr(
                self.metrics
                    .iter()
                    .map(|m| {
                        let mut obj = BTreeMap::new();
                        obj.insert("key".to_string(), Json::Str(m.key.clone()));
                        obj.insert("a".to_string(), Json::Num(m.a));
                        obj.insert("b".to_string(), Json::Num(m.b));
                        obj.insert("ratio".to_string(), Json::Num(m.ratio()));
                        obj.insert("delta_pct".to_string(), Json::Num(m.delta_pct()));
                        obj.insert("gated".to_string(), Json::Bool(m.gated));
                        Json::Obj(obj)
                    })
                    .collect(),
            ),
        );
        root.insert(
            "counters".to_string(),
            Json::Arr(
                self.counters
                    .iter()
                    .map(|c| {
                        let mut obj = BTreeMap::new();
                        obj.insert("name".to_string(), Json::Str(c.name.clone()));
                        obj.insert("a".to_string(), Json::Num(c.a as f64));
                        obj.insert("b".to_string(), Json::Num(c.b as f64));
                        obj.insert("ratio".to_string(), Json::Num(c.ratio()));
                        Json::Obj(obj)
                    })
                    .collect(),
            ),
        );
        root.insert(
            "notes".to_string(),
            Json::Arr(self.notes.iter().map(|n| Json::Str(n.clone())).collect()),
        );
        if let Some(pct) = fail_on_regress {
            root.insert("fail_on_regress_pct".to_string(), Json::Num(pct));
            root.insert(
                "regressions".to_string(),
                Json::Arr(
                    self.regressions(pct)
                        .iter()
                        .map(|m| Json::Str(m.key.clone()))
                        .collect(),
                ),
            );
        }
        Json::Obj(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::tests::sample_events;
    use crate::event::TelemetryEvent;

    fn trace_text(scale: u64) -> String {
        // The shared sample stream with its profile timings scaled, so
        // two texts share trajectories but differ in latency.
        let mut text = String::new();
        for event in sample_events() {
            let event = match event {
                TelemetryEvent::ProfileReport {
                    mut spans,
                    mut phases,
                    counters,
                } => {
                    for s in &mut spans {
                        s.total_nanos *= scale;
                        s.self_nanos *= scale;
                    }
                    for p in &mut phases {
                        p.total_nanos *= scale;
                        p.p50_nanos *= scale as f64;
                        p.p95_nanos *= scale as f64;
                        p.p99_nanos *= scale as f64;
                    }
                    TelemetryEvent::ProfileReport {
                        spans,
                        phases,
                        counters,
                    }
                }
                e => e,
            };
            text.push_str(&event.to_json_line());
            text.push('\n');
        }
        text
    }

    #[test]
    fn identical_traces_report_zero_divergence() {
        let text = trace_text(1);
        let report = compare_str(&text, &text).expect("same kind");
        assert_eq!(report.mode, "trace");
        let t = report.trajectory.as_ref().expect("trace mode");
        assert!(t.is_identical());
        assert_eq!(t.max_abs_entropy_diff, 0.0);
        assert_eq!(t.max_abs_spend_diff, 0);
        assert!(report.regressions(0.0).is_empty());
        // Counters ratio 1.0 for non-zero counters.
        let evals = report
            .counters
            .iter()
            .find(|c| c.name == "candidate_evals")
            .expect("counter diffed");
        assert_eq!(evals.ratio(), 1.0);
    }

    #[test]
    fn same_trajectory_different_timings_gates_only_latency() {
        let report = compare_str(&trace_text(1), &trace_text(10)).expect("same kind");
        let t = report.trajectory.as_ref().expect("trace mode");
        assert!(t.is_identical(), "timings must not affect the trajectory");
        let p95 = report
            .metrics
            .iter()
            .find(|m| m.key == "phase.selection.p95_nanos")
            .expect("phase diffed");
        assert!(p95.gated);
        assert!((p95.ratio() - 10.0).abs() < 1e-9);
        let offenders = report.regressions(25.0);
        assert!(!offenders.is_empty());
        assert!(offenders.iter().all(|m| m.key.ends_with("p95_nanos")));
        // The reverse direction is an improvement, not a regression.
        let reverse = compare_str(&trace_text(10), &trace_text(1)).expect("same kind");
        assert!(reverse.regressions(25.0).is_empty());
    }

    #[test]
    fn diverging_trajectories_are_located() {
        let a = trace_text(1);
        // Perturb the entropy of the round's update in the second run.
        let b = a.replace("\"entropy\":2.75", "\"entropy\":2.745");
        assert_ne!(a, b);
        let report = compare_str(&a, &b).expect("same kind");
        let t = report.trajectory.as_ref().expect("trace mode");
        assert_eq!(t.first_divergent_round, Some(1));
        assert!((t.max_abs_entropy_diff - 0.005).abs() < 1e-12);
    }

    #[test]
    fn bench_documents_flatten_and_gate_point_latencies() {
        let a = r#"{"schema_version":1,"bench":"parallel_bench","threads":8,"commit":"aaa",
                    "results":{"points":[{"n":256,"serial_nanos":1000,"parallel_nanos":400,"speedup":2.5}],
                               "identical":true}}"#;
        let b = r#"{"schema_version":1,"bench":"parallel_bench","threads":8,"commit":"bbb",
                    "results":{"points":[{"n":256,"serial_nanos":1000,"parallel_nanos":900,"speedup":1.1}],
                               "identical":true}}"#;
        let report = compare_str(a, b).expect("same kind");
        assert_eq!(report.mode, "bench");
        assert!(report.notes.iter().any(|n| n.contains("commit")));
        let m = report
            .metrics
            .iter()
            .find(|m| m.key == "points.0.parallel_nanos")
            .expect("flattened");
        assert!(m.gated);
        assert!(m.regressed_by(25.0));
        let speedup = report
            .metrics
            .iter()
            .find(|m| m.key == "points.0.speedup")
            .expect("flattened");
        assert!(!speedup.gated, "speedups never gate");
        assert_eq!(report.regressions(25.0).len(), 1);
        // Within tolerance passes.
        assert!(report.regressions(200.0).is_empty());
    }

    #[test]
    fn mixed_kinds_are_an_error() {
        let bench = r#"{"schema_version":1,"results":{"x_nanos":1}}"#;
        let trace = trace_text(1);
        assert!(compare_str(bench, &trace).is_err());
        assert!(compare_str(&trace, bench).is_err());
    }

    #[test]
    fn distribution_companions_never_gate() {
        for key in [
            "phase.selection.min_nanos",
            "phase.selection.max_nanos",
            "phase.selection.mean_nanos",
            "phase.selection.total_nanos",
            "phase.selection.p50_nanos",
            "phase.selection.p99_nanos",
            "frame_bytes",
            "points.0.n",
        ] {
            assert!(!gated_key(key), "{key}");
        }
        for key in [
            "phase.selection.p95_nanos",
            "encode_nanos_per_step",
            "trace_scan_nanos",
            "points.0.serial_nanos",
        ] {
            assert!(gated_key(key), "{key}");
        }
    }

    #[test]
    fn render_and_json_carry_the_verdict() {
        let report = compare_str(&trace_text(1), &trace_text(10)).expect("same kind");
        let text = report.render(Some(25.0));
        assert!(text.contains("identical to the bit"));
        assert!(text.contains("regression gate (25%)"));
        assert!(text.contains("offender"));
        let v = report.to_json(Some(25.0));
        let parsed = json::parse(&v.to_string()).expect("valid json");
        assert_eq!(
            parsed
                .get("trajectory")
                .and_then(|t| t.get("identical"))
                .and_then(Json::as_bool),
            Some(true)
        );
        assert!(!parsed.get("regressions").unwrap().as_arr().unwrap().is_empty());
        // Clean gate renders clean.
        let clean = compare_str(&trace_text(1), &trace_text(1)).expect("same kind");
        assert!(clean.render(Some(25.0)).contains("clean"));
    }

    #[test]
    fn missing_profiles_are_noted_not_fatal() {
        let mut text = String::new();
        for event in sample_events() {
            if !matches!(event, TelemetryEvent::ProfileReport { .. }) {
                text.push_str(&event.to_json_line());
                text.push('\n');
            }
        }
        let report = compare_str(&text, &text).expect("same kind");
        assert!(report.metrics.is_empty());
        assert!(report.notes.iter().any(|n| n.contains("no profile_report")));
        assert!(report.trajectory.as_ref().unwrap().is_identical());
    }
}
